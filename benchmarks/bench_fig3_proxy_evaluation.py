"""Figure 3 — proxy-evaluation analysis.

For dataset A and the Cora analogue, sweeps the three proxy knobs
(``D_proxy`` dataset fraction, ``B_proxy`` bagging rounds, ``M_proxy`` hidden
fraction) and reports the Kendall rank correlation against the accurate
evaluation together with the speed-up, reproducing the three sub-figures per
dataset of Figure 3.
"""

from benchmarks.harness import format_table
from repro.core import ProxyEvaluator
from repro.core.config import ProxyConfig

#: A reduced candidate set keeps the sweep fast while spanning aggregator families.
CANDIDATES = ("gcn", "gat", "sgc", "tagcn", "appnp", "mlp", "gin")

DATASET_FRACTIONS = (0.1, 0.3, 1.0)
BAGGING_ROUNDS = (1, 2)
HIDDEN_FRACTIONS = (0.1, 0.5, 1.0)


def _sweep(graph):
    evaluator = ProxyEvaluator(
        ProxyConfig(max_epochs=30, patience=8, val_fraction=0.25), candidates=list(CANDIDATES))
    accurate = evaluator.evaluate_with(graph, dataset_fraction=1.0, hidden_fraction=1.0,
                                       bagging_rounds=3, seed=0)
    rows = []
    for fraction in DATASET_FRACTIONS:
        report = evaluator.evaluate_with(graph, dataset_fraction=fraction,
                                         hidden_fraction=1.0, bagging_rounds=2, seed=0)
        rows.append(("D_proxy", f"{fraction:.0%}", report.kendall_tau_against(accurate),
                     accurate.total_time / report.total_time))
    for rounds in BAGGING_ROUNDS:
        report = evaluator.evaluate_with(graph, dataset_fraction=0.3, hidden_fraction=1.0,
                                         bagging_rounds=rounds, seed=0)
        rows.append(("B_proxy", str(rounds), report.kendall_tau_against(accurate),
                     accurate.total_time / report.total_time))
    for fraction in HIDDEN_FRACTIONS:
        report = evaluator.evaluate_with(graph, dataset_fraction=0.3, hidden_fraction=fraction,
                                         bagging_rounds=2, seed=0)
        rows.append(("M_proxy", f"{fraction:.0%}", report.kendall_tau_against(accurate),
                     accurate.total_time / report.total_time))
    return rows


def _report(name, rows):
    print()
    print(format_table(
        f"Figure 3 — proxy evaluation on {name}",
        ["Knob", "Value", "Kendall tau", "Speed-up (x)"],
        [[knob, value, f"{tau:.3f}", f"{speedup:.1f}"] for knob, value, tau, speedup in rows]))


def bench_fig3_proxy_evaluation_dataset_a(benchmark, kddcup_graphs):
    rows = benchmark.pedantic(lambda: _sweep(kddcup_graphs["A"]), rounds=1, iterations=1)
    _report("dataset A", rows)
    # The paper's qualitative claims: D_proxy=30% keeps a solid rank correlation,
    # and smaller proxies are faster than the accurate evaluation.
    d30 = [row for row in rows if row[0] == "D_proxy" and row[1] == "30%"][0]
    assert d30[2] > 0.1
    assert d30[3] > 1.0


def bench_fig3_proxy_evaluation_cora(benchmark, cora_graph):
    rows = benchmark.pedantic(lambda: _sweep(cora_graph), rounds=1, iterations=1)
    _report("Cora analogue", rows)
    d30 = [row for row in rows if row[0] == "D_proxy" and row[1] == "30%"][0]
    assert d30[2] > 0.1
