"""Figure 4 — variance across weight initialisations, with and without GSE.

Repeats GAT training on a fixed split with different initialisation seeds and
compares the spread of the resulting test accuracies against the spread of a
graph self-ensemble (K members).  The expected shape: GSE shrinks the
min-to-max band and raises the mean.
"""

import numpy as np

from benchmarks.harness import format_table, prepare_node_dataset, settings
from repro.core import GraphSelfEnsemble
from repro.nn.data import GraphTensors
from repro.tasks.trainer import TrainConfig

NUM_REPEATS = 4  # the paper uses 100 repeats; the shape is visible with a handful


def _variance_study(graph, spec_name="gat"):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    train_idx = prepared.mask_indices("train")
    val_idx = prepared.mask_indices("val")
    test_idx = prepared.mask_indices("test")
    train_config = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15)

    single_scores, gse_scores = [], []
    for repeat in range(NUM_REPEATS):
        single = GraphSelfEnsemble(spec_name=spec_name, num_members=1, hidden=cfg.hidden,
                                   num_layers=2, base_seed=1000 + repeat * 37)
        single.fit(data, labels, train_idx, val_idx, train_config=train_config,
                   num_classes=prepared.num_classes)
        single_scores.append(single.evaluate(data, labels, test_idx))

        gse = GraphSelfEnsemble(spec_name=spec_name, num_members=cfg.ensemble_size + 1,
                                hidden=cfg.hidden, num_layers=2,
                                base_seed=1000 + repeat * 37)
        gse.fit(data, labels, train_idx, val_idx, train_config=train_config,
                num_classes=prepared.num_classes)
        gse_scores.append(gse.evaluate(data, labels, test_idx))
    return single_scores, gse_scores


def bench_fig4_initialization_variance(benchmark, kddcup_graphs):
    single, gse = benchmark.pedantic(lambda: _variance_study(kddcup_graphs["A"]),
                                     rounds=1, iterations=1)
    rows = [
        ["GAT", f"{np.mean(single) * 100:.1f}", f"{np.min(single) * 100:.1f}",
         f"{np.max(single) * 100:.1f}", f"{(np.max(single) - np.min(single)) * 100:.1f}"],
        ["GAT + GSE", f"{np.mean(gse) * 100:.1f}", f"{np.min(gse) * 100:.1f}",
         f"{np.max(gse) * 100:.1f}", f"{(np.max(gse) - np.min(gse)) * 100:.1f}"],
    ]
    print()
    print(format_table(
        "Figure 4 — initialisation variance on dataset A (GAT vs GAT+GSE)",
        ["Model", "Mean", "Min", "Max", "Range"], rows))

    # GSE must not be worse on average and should not widen the band.
    assert np.mean(gse) >= np.mean(single) - 0.02
    assert (np.max(gse) - np.min(gse)) <= (np.max(single) - np.min(single)) + 0.02
