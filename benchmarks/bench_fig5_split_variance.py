"""Figure 5 — variance across train/validation splits and the effect of bagging.

Trains GCN and GAT on several random splits of dataset B, then the same with
bagging over splits, and finally AutoHEnsGNN with bagging; the expected shape
is a shrinking spread and a rising mean from left to right.
"""

import numpy as np

from benchmarks.harness import format_table, pipeline_config, prepare_node_dataset, settings
from repro.core import AutoHEnsGNN, BaggingEnsemble, SearchMethod
from repro.graph.splits import random_split
from repro.nn import build_model
from repro.nn.data import GraphTensors
from repro.tasks.trainer import NodeClassificationTrainer, TrainConfig

NUM_REPEATS = 3
NUM_BAGS = 2


def _train_once(model_name, split_graph, data, cfg, seed):
    model = build_model(model_name, data.num_features, split_graph.num_classes,
                        hidden=cfg.hidden, seed=seed)
    trainer = NodeClassificationTrainer(TrainConfig(lr=0.02, max_epochs=cfg.max_epochs,
                                                    patience=15, seed=seed))
    trainer.train(model, data, split_graph.labels, split_graph.mask_indices("train"),
                  split_graph.mask_indices("val"))
    return model.predict_proba(data)


def _split_variance(graph):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    test_idx = prepared.mask_indices("test")
    pool = prepared.metadata.get("labelled_pool")
    from repro.tasks.metrics import accuracy

    scores = {}
    for model_name in ("gcn", "gat"):
        # Plain training on different splits.
        plain = []
        for repeat in range(NUM_REPEATS):
            split = random_split(prepared, val_fraction=0.25, seed=100 + repeat,
                                 labelled_pool=pool)
            proba = _train_once(model_name, split, data, cfg, seed=repeat)
            plain.append(accuracy(proba[test_idx], labels[test_idx]))
        scores[model_name.upper()] = plain

        # Bagging over splits.
        bagged = []
        for repeat in range(NUM_REPEATS):
            bagging = BaggingEnsemble(num_splits=NUM_BAGS, val_fraction=0.25,
                                      seed=500 + repeat * 31)
            bagging.fit(prepared, data,
                        lambda split_graph, split_data, split_index:
                        _train_once(model_name, split_graph, split_data, cfg,
                                    seed=repeat * 10 + split_index),
                        labelled_pool=pool)
            bagged.append(bagging.evaluate(labels, test_idx))
        scores[f"{model_name.upper()}-B"] = bagged

    # AutoHEnsGNN (adaptive, with the GCN/GAT pool) across repeats.
    auto = []
    for repeat in range(NUM_REPEATS):
        config = pipeline_config(cfg, SearchMethod.ADAPTIVE, seed=repeat)
        pipeline = AutoHEnsGNN(config)
        outcome = pipeline.fit_predict(prepared, pool=["gcn", "gat"])
        auto.append(outcome.test_accuracy(labels, test_idx))
    scores["AutoHEnsGNN-Ada"] = auto
    return scores


def bench_fig5_split_variance(benchmark, kddcup_graphs):
    scores = benchmark.pedantic(lambda: _split_variance(kddcup_graphs["B"]),
                                rounds=1, iterations=1)
    rows = []
    for name, values in scores.items():
        rows.append([name, f"{np.mean(values) * 100:.1f}", f"{np.min(values) * 100:.1f}",
                     f"{np.max(values) * 100:.1f}",
                     f"{(np.max(values) - np.min(values)) * 100:.1f}"])
    print()
    print(format_table("Figure 5 — split variance on dataset B ('-B' = with bagging)",
                       ["Method", "Mean", "Min", "Max", "Range"], rows))

    for model_name in ("GCN", "GAT"):
        plain_range = np.max(scores[model_name]) - np.min(scores[model_name])
        bagged_range = np.max(scores[f"{model_name}-B"]) - np.min(scores[f"{model_name}-B"])
        assert bagged_range <= plain_range + 0.03
    assert np.mean(scores["AutoHEnsGNN-Ada"]) >= \
        max(np.mean(scores["GCN"]), np.mean(scores["GAT"])) - 0.02
