"""Figures 6 and 7 — hyper-parameter studies on the Cora analogue.

Figure 6 sweeps the pool size ``N`` and the self-ensemble size ``K``;
Figure 7 sweeps the adaptive-β temperature hyper-parameters ε, γ and λ.
"""

import numpy as np

from benchmarks.harness import format_table, prepare_node_dataset, settings
from repro.core import GraphSelfEnsemble, HierarchicalEnsemble, adaptive_beta
from repro.core.config import AdaptiveConfig
from repro.nn.data import GraphTensors
from repro.tasks.trainer import TrainConfig

POOL_RANKING = ("gcn", "gat", "tagcn", "sgc", "mlp")
N_VALUES = (1, 2, 3)
K_VALUES = (1, 2, 3)


def _fit_hierarchical(prepared, data, pool, k, cfg, seed=0):
    hierarchical = HierarchicalEnsemble()
    for index, name in enumerate(pool):
        hierarchical.add(GraphSelfEnsemble(spec_name=name, num_members=k, hidden=cfg.hidden,
                                           num_layers=2, base_seed=seed + 61 * index))
    hierarchical.fit(data, prepared.labels, prepared.mask_indices("train"),
                     prepared.mask_indices("val"),
                     train_config=TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15),
                     num_classes=prepared.num_classes)
    return hierarchical


def _figure6(graph):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    test_idx = prepared.mask_indices("test")

    n_scores = {}
    for n in N_VALUES:
        hierarchical = _fit_hierarchical(prepared, data, POOL_RANKING[:n], k=2, cfg=cfg)
        n_scores[n] = hierarchical.evaluate(data, prepared.labels, test_idx)
    k_scores = {}
    for k in K_VALUES:
        hierarchical = _fit_hierarchical(prepared, data, POOL_RANKING[:2], k=k, cfg=cfg)
        k_scores[k] = hierarchical.evaluate(data, prepared.labels, test_idx)
    return n_scores, k_scores


def bench_fig6_pool_and_gse_size(benchmark, cora_graph):
    n_scores, k_scores = benchmark.pedantic(lambda: _figure6(cora_graph), rounds=1, iterations=1)
    rows = [[f"N={n}", f"{score * 100:.1f}"] for n, score in n_scores.items()]
    rows += [[f"K={k}", f"{score * 100:.1f}"] for k, score in k_scores.items()]
    print()
    print(format_table("Figure 6 — pool size N and self-ensemble size K on Cora analogue",
                       ["Setting", "Accuracy"], rows))

    # Shape: performance is relatively stable and K>1 does not hurt.
    assert max(k_scores.values()) - min(k_scores.values()) < 0.15
    assert k_scores[max(K_VALUES)] >= k_scores[1] - 0.03


def bench_fig7_adaptive_temperature(benchmark):
    """Figure 7 — the effect of ε, γ, λ on the adaptive ensemble weight β."""

    accuracies = [0.92, 0.88, 0.80]
    num_edges, num_nodes = 4000, 1000

    def sweep():
        rows = []
        for epsilon in (0.5, 3.0, 10.0):
            beta = adaptive_beta(accuracies, num_edges, num_nodes,
                                 AdaptiveConfig(epsilon=epsilon))
            rows.append(("epsilon", epsilon, beta))
        for gamma in (100.0, 8000.0, 100000.0):
            beta = adaptive_beta(accuracies, num_edges, num_nodes,
                                 AdaptiveConfig(gamma=gamma))
            rows.append(("gamma", gamma, beta))
        for lam in (0.5, 5.0, 500.0):
            beta = adaptive_beta(accuracies, num_edges, num_nodes, AdaptiveConfig(lam=lam))
            rows.append(("lambda", lam, beta))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        "Figure 7 — adaptive beta vs its temperature hyper-parameters "
        "(model accuracies 0.92/0.88/0.80)",
        ["Hyper-parameter", "Value", "beta"],
        [[name, f"{value:g}", np.array2string(beta, precision=3)] for name, value, beta in rows]))

    # Shape: small lambda (or large gamma) sharpens the distribution towards
    # the most accurate model; large lambda flattens it.
    lam_rows = {value: beta for name, value, beta in rows if name == "lambda"}
    assert lam_rows[0.5][0] >= lam_rows[500.0][0]
    for _, _, beta in rows:
        assert abs(beta.sum() - 1.0) < 1e-9
