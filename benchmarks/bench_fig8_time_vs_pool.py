"""Figure 8 — search time as a function of the pool size N.

The adaptive search optimises each architecture independently, so its search
time grows roughly linearly with N; the gradient search trains everything
jointly, so adding architectures increases the cost of each epoch but not the
number of training runs, giving a flatter curve.
"""

import time

from benchmarks.harness import format_table, prepare_node_dataset, settings
from repro.core import AdaptiveSearch, GradientSearch
from repro.nn.data import GraphTensors
from repro.tasks.trainer import TrainConfig

POOL_RANKING = ("gcn", "sgc", "tagcn", "graphsage-mean")
N_VALUES = (1, 2, 3)


def _time_study(graph):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    train_idx = prepared.mask_indices("train")
    val_idx = prepared.mask_indices("val")
    train_config = TrainConfig(lr=0.05, max_epochs=15, patience=15)

    rows = []
    for n in N_VALUES:
        pool = list(POOL_RANKING[:n])
        start = time.time()
        AdaptiveSearch(pool=pool, ensemble_size=2, max_layers=2, hidden=cfg.hidden,
                       train_config=train_config, seed=0).search(
            prepared, data, labels, train_idx, val_idx,
            num_classes=prepared.num_classes, hidden_fraction=0.5)
        adaptive_time = time.time() - start

        start = time.time()
        GradientSearch(pool=pool, ensemble_size=2, max_layers=2, hidden=cfg.hidden,
                       hidden_fraction=0.5, lr=0.05, epochs=15, patience=15, seed=0).search(
            data, labels, train_idx, val_idx, num_classes=prepared.num_classes)
        gradient_time = time.time() - start
        rows.append((n, adaptive_time, gradient_time))
    return rows


def bench_fig8_search_time_vs_pool_size(benchmark, cora_graph):
    rows = benchmark.pedantic(lambda: _time_study(cora_graph), rounds=1, iterations=1)
    print()
    print(format_table("Figure 8 — search time (s) vs pool size N on the Cora analogue",
                       ["N", "Adaptive", "Gradient"],
                       [[str(n), f"{a:.2f}", f"{g:.2f}"] for n, a, g in rows]))

    # Shape: the adaptive search time grows faster with N than the gradient search time.
    adaptive_growth = rows[-1][1] / max(rows[0][1], 1e-9)
    gradient_growth = rows[-1][2] / max(rows[0][2], 1e-9)
    assert adaptive_growth >= gradient_growth * 0.8
