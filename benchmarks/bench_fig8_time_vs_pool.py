"""Figure 8 — search time as a function of the pool size N.

The adaptive search optimises each architecture independently, so its search
time grows roughly linearly with N; the gradient search trains everything
jointly, so adding architectures increases the cost of each epoch but not the
number of training runs, giving a flatter curve.

The table also reports the adaptive search on the thread backend of
:mod:`repro.parallel`: its ``N x L`` grid points are independent training
runs, so on multi-core hardware the parallel curve flattens the linear growth
the paper attributes to the adaptive variant (on a single-core runner the
column tracks the serial one; the chosen depths are asserted identical
either way).
"""

import time

from benchmarks.harness import format_table, prepare_node_dataset, settings
from repro.core import AdaptiveSearch, GradientSearch
from repro.nn.data import GraphTensors
from repro.tasks.trainer import TrainConfig

POOL_RANKING = ("gcn", "sgc", "tagcn", "graphsage-mean")
N_VALUES = (1, 2, 3)


def _time_study(graph):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    train_idx = prepared.mask_indices("train")
    val_idx = prepared.mask_indices("val")
    train_config = TrainConfig(lr=0.05, max_epochs=15, patience=15)

    def adaptive_search(pool, backend):
        search = AdaptiveSearch(pool=pool, ensemble_size=2, max_layers=2,
                                hidden=cfg.hidden, train_config=train_config,
                                seed=0, backend=backend)
        start = time.time()
        result = search.search(prepared, data, labels, train_idx, val_idx,
                               num_classes=prepared.num_classes, hidden_fraction=0.5)
        return result, time.time() - start

    rows = []
    for n in N_VALUES:
        pool = list(POOL_RANKING[:n])
        serial_result, adaptive_time = adaptive_search(pool, "serial")
        thread_result, adaptive_thread_time = adaptive_search(pool, "thread")
        assert thread_result.chosen_layers == serial_result.chosen_layers, \
            "parallel adaptive search must choose the same depths as serial"

        start = time.time()
        GradientSearch(pool=pool, ensemble_size=2, max_layers=2, hidden=cfg.hidden,
                       hidden_fraction=0.5, lr=0.05, epochs=15, patience=15, seed=0).search(
            data, labels, train_idx, val_idx, num_classes=prepared.num_classes)
        gradient_time = time.time() - start
        rows.append((n, adaptive_time, adaptive_thread_time, gradient_time))
    return rows


def bench_fig8_search_time_vs_pool_size(benchmark, cora_graph):
    rows = benchmark.pedantic(lambda: _time_study(cora_graph), rounds=1, iterations=1)
    print()
    print(format_table("Figure 8 — search time (s) vs pool size N on the Cora analogue",
                       ["N", "Adaptive", "Adaptive (threads)", "Gradient"],
                       [[str(n), f"{a:.2f}", f"{at:.2f}", f"{g:.2f}"]
                        for n, a, at, g in rows]))

    # Shape: the adaptive search time grows faster with N than the gradient search time.
    adaptive_growth = rows[-1][1] / max(rows[0][1], 1e-9)
    gradient_growth = rows[-1][3] / max(rows[0][3], 1e-9)
    assert adaptive_growth >= gradient_growth * 0.8
