"""Minibatch vs full-batch scaling: peak memory and wall clock by graph size.

The minibatch engine exists to change how *peak training memory* scales: a
full-batch step materialises layer activations and gradients for every node
of the graph, while a neighbour-sampled step touches only its fanout-bounded
sub-graph.  This benchmark measures both regimes on the same training
workload across growing ``sbm-large`` graphs and reports:

* wall clock of the training run (untraced pass),
* peak traced memory of the training run (``tracemalloc`` pass, which
  excludes the dataset/GraphTensors construction both modes share),

then finishes with the acceptance run: an end-to-end AutoHEnsGNN pipeline in
minibatch mode on the 200k-node graph.

Run it like every other benchmark::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_minibatch_scaling.py -q \
        -o python_files='bench_*.py' -o python_functions='bench_*'

``REPRO_BENCH_SCALE=full`` adds intermediate sizes.
"""

import os
import time
import tracemalloc

import numpy as np

from benchmarks.harness import format_table
from repro.core import AutoHEnsGNN, AutoHEnsGNNConfig
from repro.datasets.generators import make_large_sbm
from repro.graph.splits import holdout_test_split, random_split
from repro.nn.data import GraphTensors
from repro.nn.model_zoo import get_model_spec
from repro.parallel import compute_cache
from repro.tasks.trainer import NodeClassificationTrainer, TrainConfig

MODELS = ("graphsage-mean", "gcn")
HIDDEN = 64
EPOCHS = 2
BATCH_SIZE = 2048
# On the sbm-large degree-8 graphs, (5, 3) genuinely subsamples: a first
# hop of 10 would keep nearly every neighbour and the "sub-graph" would
# approach the full graph.
FANOUTS = (5, 3)
PIPELINE_NODES = 200_000


def _sizes():
    if os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full":
        return (20_000, 50_000, 100_000, 200_000)
    return (20_000, 200_000)


def _train_workload(graph, data, batch_size):
    """Train the representative two-model pool once; returns predictions."""
    config = TrainConfig(lr=0.02, max_epochs=EPOCHS, patience=EPOCHS,
                         batch_size=batch_size, fanouts=FANOUTS, seed=0)
    trainer = NodeClassificationTrainer(config)
    outputs = []
    for name in MODELS:
        model = get_model_spec(name).build(
            in_features=graph.num_features, num_classes=graph.num_classes,
            hidden=HIDDEN, seed=0)
        trainer.train(model, data, graph.labels,
                      graph.mask_indices("train"), graph.mask_indices("val"))
        outputs.append(model.predict_proba(data))
    return outputs


def _measure(graph, data, batch_size):
    """(wall_clock_s, peak_mb) of the training workload in one regime."""
    start = time.time()
    _train_workload(graph, data, batch_size)
    wall = time.time() - start
    tracemalloc.start()
    _train_workload(graph, data, batch_size)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return wall, peak / 1e6


def _pipeline_run(graph):
    """End-to-end minibatch AutoHEnsGNN on the largest graph (acceptance run)."""
    config = AutoHEnsGNNConfig(
        pool_size=2, ensemble_size=1, max_layers=2,
        batch_size=BATCH_SIZE, fanouts=FANOUTS,
        search_epochs=2, bagging_splits=1, hidden=HIDDEN, seed=0,
    )
    config.train = config.train.with_overrides(max_epochs=EPOCHS, patience=EPOCHS)
    start = time.time()
    tracemalloc.start()
    # The pool is pre-specified: proxy evaluation quality is benchmarked
    # elsewhere, and skipping it keeps this run about the minibatch engine.
    result = AutoHEnsGNN(config).fit_predict(graph, pool=list(MODELS))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    wall = time.time() - start
    accuracy = result.test_accuracy(graph.labels, graph.mask_indices("test"))
    return wall, peak / 1e6, accuracy


def _scaling_study():
    rows = []
    peaks = {}
    for num_nodes in _sizes():
        compute_cache().clear()
        graph = make_large_sbm(num_nodes=num_nodes, seed=1)
        graph = random_split(graph, val_fraction=0.1, seed=0)
        data = GraphTensors.from_graph(graph)
        full_wall, full_peak = _measure(graph, data, batch_size=None)
        mini_wall, mini_peak = _measure(graph, data, batch_size=BATCH_SIZE)
        peaks[num_nodes] = (full_peak, mini_peak)
        rows.append([f"{num_nodes:,}",
                     f"{full_wall:.1f}", f"{full_peak:.0f}",
                     f"{mini_wall:.1f}", f"{mini_peak:.0f}",
                     f"{full_peak / max(mini_peak, 1e-9):.2f}x"])

    compute_cache().clear()
    large = make_large_sbm(num_nodes=PIPELINE_NODES, seed=1)
    large = holdout_test_split(large, test_fraction=0.2, seed=0)
    pipe_wall, pipe_peak, pipe_accuracy = _pipeline_run(large)
    return rows, peaks, (pipe_wall, pipe_peak, pipe_accuracy)


def bench_minibatch_scaling(benchmark):
    rows, peaks, (pipe_wall, pipe_peak, pipe_accuracy) = benchmark.pedantic(
        _scaling_study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Minibatch vs full-batch scaling (2-model pool, "
        f"hidden {HIDDEN}, {EPOCHS} epochs, batch {BATCH_SIZE}, "
        f"fanouts {FANOUTS})",
        ["Nodes", "Full s", "Full peak MB", "Mini s", "Mini peak MB",
         "Peak ratio"],
        rows))
    print(format_table(
        f"End-to-end minibatch AutoHEnsGNN on {PIPELINE_NODES:,} nodes",
        ["Quantity", "Value"],
        [["Wall clock (s)", f"{pipe_wall:.1f}"],
         ["Peak traced MB", f"{pipe_peak:.0f}"],
         ["Test accuracy", f"{pipe_accuracy:.3f}"]]))

    # The acceptance contract: at the largest size the minibatch training
    # peak sits measurably below the full-batch peak, and the end-to-end
    # pipeline completes with a sane prediction (better than chance).
    largest = max(peaks)
    full_peak, mini_peak = peaks[largest]
    assert mini_peak < 0.8 * full_peak, (
        f"minibatch peak {mini_peak:.0f}MB should be well below "
        f"full-batch {full_peak:.0f}MB at {largest:,} nodes")
    assert pipe_accuracy > 0.5
