"""Table I — statistics of the AutoGraph challenge datasets A–E.

Prints the paper's reported statistics next to the statistics of the
generated synthetic analogues, so the scaling of every analogue is explicit.
"""

from benchmarks.harness import format_table
from repro.datasets import kddcup_dataset_statistics


def bench_table1_dataset_statistics(benchmark, bench_settings):
    rows_data = benchmark.pedantic(
        lambda: kddcup_dataset_statistics(scale=bench_settings.dataset_scale * 0.6, seed=0),
        rounds=1, iterations=1)

    rows = []
    for entry in rows_data:
        paper = entry["paper"]
        generated = entry["generated"]
        rows.append([
            entry["dataset"],
            f"{paper['nodes_train']}/{paper['nodes_test']}",
            f"{generated['nodes_train']}/{generated['nodes_test']}",
            f"{paper['edges']}",
            f"{generated['edges']}",
            f"{paper['classes']}",
            f"{generated['classes']}",
            "yes" if paper["directed"] else "no",
            "yes" if generated["directed"] else "no",
            "yes" if paper["node_feat"] else "no",
            "yes" if generated["node_feat"] else "no",
        ])
    print()
    print(format_table(
        "Table I — dataset statistics (paper vs generated analogue)",
        ["Dataset", "Train/Test (paper)", "Train/Test (ours)", "Edges (paper)",
         "Edges (ours)", "Classes (paper)", "Classes (ours)", "Directed (paper)",
         "Directed (ours)", "Node feat (paper)", "Node feat (ours)"],
        rows))

    # Sanity: the regime flags (directionality, featurelessness) must match the paper.
    for entry in rows_data:
        assert entry["paper"]["directed"] == entry["generated"]["directed"]
        assert entry["paper"]["node_feat"] == entry["generated"]["node_feat"]
