"""Table II — node classification on the challenge datasets A–E.

Reproduces the method comparison on every anonymous-dataset analogue: the
individual pool models, D-ensemble, L-ensemble, Goyal et al.'s greedy
ensemble and both AutoHEnsGNN variants.  The expected *shape* is the paper's:
ensembles beat single models, and the two AutoHEnsGNN variants (Adaptive ≤
Gradient) sit at the top with the smallest spread.
"""

import numpy as np
import pytest

from benchmarks.harness import comparison_rows, ensemble_comparison, format_table, settings

POOL = ("gcn", "gat", "tagcn")


def _run(graph):
    cfg = settings()
    return ensemble_comparison(graph, POOL, cfg)


@pytest.mark.parametrize("dataset", ["A", "B", "C", "D", "E"])
def bench_table2_kddcup(benchmark, kddcup_graphs, dataset):
    results = benchmark.pedantic(lambda: _run(kddcup_graphs[dataset]), rounds=1, iterations=1)
    print()
    print(format_table(
        f"Table II — dataset {dataset} (accuracy %, mean±std; * = best)",
        ["Method", "Accuracy"], comparison_rows(results)))

    single_best = max(np.mean(results[name]) for name in POOL)
    auto_best = max(np.mean(results["AutoHEnsGNN-Adaptive"]),
                    np.mean(results["AutoHEnsGNN-Gradient"]))
    # AutoHEnsGNN should not lose to the best single model by a visible margin.
    assert auto_best >= single_best - 0.02
    # Ensembling should not lose to direct averaging by a visible margin.
    assert auto_best >= np.mean(results["D-ensemble"]) - 0.02
