"""Table III — node classification on the Cora / Citeseer / Pubmed analogues.

The citation analogues use the fixed planetoid-style split of the paper; the
comparison rows are the same as Table II.
"""

import numpy as np
import pytest

from benchmarks.harness import comparison_rows, ensemble_comparison, format_table, settings

POOL = ("gcn", "gat", "gcnii")


@pytest.mark.parametrize("dataset", ["cora", "citeseer", "pubmed"])
def bench_table3_citation(benchmark, citation_graphs, dataset):
    cfg = settings()
    results = benchmark.pedantic(
        lambda: ensemble_comparison(citation_graphs[dataset], POOL, cfg),
        rounds=1, iterations=1)
    print()
    print(format_table(
        f"Table III — {dataset} (accuracy %, mean±std; * = best)",
        ["Method", "Accuracy"], comparison_rows(results)))

    single_best = max(np.mean(results[name]) for name in POOL)
    auto_best = max(np.mean(results["AutoHEnsGNN-Adaptive"]),
                    np.mean(results["AutoHEnsGNN-Gradient"]))
    assert auto_best >= single_best - 0.02
