"""Table IV — ablation study.

Successively adds each component of AutoHEnsGNN on dataset A and B analogues:
single models (range), a random ensemble of candidates, an ensemble of
proxy-selected models (+PE), adding graph self-ensemble (+GSE), and the two
search algorithms (+Adaptive / +Gradient).
"""

import numpy as np
import pytest

from benchmarks.harness import (
    format_mean_std,
    format_table,
    pipeline_config,
    prepare_node_dataset,
    settings,
)
from repro.core import (
    AutoHEnsGNN,
    DEnsemble,
    ProxyEvaluator,
    RandomEnsemble,
    SearchMethod,
    GraphSelfEnsemble,
    HierarchicalEnsemble,
    select_top_models,
    train_single_models,
)
from repro.core.config import ProxyConfig
from repro.nn.data import GraphTensors
from repro.tasks.metrics import accuracy
from repro.tasks.trainer import TrainConfig

CANDIDATES = ("gcn", "gat", "tagcn", "sgc", "mlp", "gin")


def _ablation(graph, seed=0):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=seed)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    train_idx = prepared.mask_indices("train")
    val_idx = prepared.mask_indices("val")
    test_idx = prepared.mask_indices("test")
    train_config = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15, seed=seed)

    rows = {}
    # Single models over the whole candidate set: report min..max range.
    outcome = train_single_models(CANDIDATES, data, labels, train_idx, val_idx,
                                  num_classes=prepared.num_classes, hidden=cfg.hidden,
                                  train_config=train_config, replicas=1, seed=seed)
    single_scores = [accuracy(entry["probas"][0][test_idx], labels[test_idx])
                     for entry in outcome.values()]
    rows["Single model (range)"] = (min(single_scores), max(single_scores))

    # Random ensemble of candidates.
    random_scores = []
    for repeat in range(2):
        ensemble = RandomEnsemble.from_pool(outcome, size=2, seed=repeat)
        random_scores.append(ensemble.evaluate(labels, test_idx))
    rows["Random ensemble"] = random_scores

    # + proxy evaluation (ensemble of the selected pool).
    evaluator = ProxyEvaluator(ProxyConfig(dataset_fraction=0.3, bagging_rounds=cfg.proxy_bagging,
                                           hidden_fraction=0.5, max_epochs=30, seed=seed),
                               candidates=list(CANDIDATES))
    report = evaluator.evaluate(prepared, seed=seed)
    pool = select_top_models(report, cfg.pool_size)
    pe_ensemble = DEnsemble()
    for name in pool:
        pe_ensemble.add(name, outcome[name]["probas"][0])
    rows["Ensemble + PE"] = [pe_ensemble.evaluate(labels, test_idx)]

    # + GSE (uniform beta, default depths).
    hierarchical = HierarchicalEnsemble()
    for index, name in enumerate(pool):
        hierarchical.add(GraphSelfEnsemble(spec_name=name, num_members=cfg.ensemble_size,
                                           hidden=cfg.hidden, num_layers=2,
                                           base_seed=seed + index * 97))
    hierarchical.fit(data, labels, train_idx, val_idx, train_config=train_config,
                     num_classes=prepared.num_classes)
    rows["Ensemble + PE + GSE"] = [hierarchical.evaluate(data, labels, test_idx)]

    # + search algorithms (full pipeline on the selected pool).
    for method, label in ((SearchMethod.ADAPTIVE, "+ Adaptive"),
                          (SearchMethod.GRADIENT, "+ Gradient")):
        pipeline = AutoHEnsGNN(pipeline_config(cfg, method, seed))
        result = pipeline.fit_predict(prepared, pool=pool)
        rows[f"Ensemble + PE + GSE {label}"] = [result.test_accuracy(labels, test_idx)]
    return rows


@pytest.mark.parametrize("dataset", ["A", "B"])
def bench_table4_ablation(benchmark, kddcup_graphs, dataset):
    rows = benchmark.pedantic(lambda: _ablation(kddcup_graphs[dataset]), rounds=1, iterations=1)
    formatted = []
    for name, values in rows.items():
        if name.startswith("Single"):
            low, high = values
            formatted.append([name, f"{low * 100:.1f} ~ {high * 100:.1f}"])
        else:
            formatted.append([name, format_mean_std(list(values))])
    print()
    print(format_table(f"Table IV — ablation study on dataset {dataset}",
                       ["Configuration", "Accuracy"], formatted))

    # Shape checks: PE-selected ensemble >= random ensemble, and the full
    # pipeline >= the bare PE ensemble (within noise).
    assert np.mean(rows["Ensemble + PE"]) >= np.mean(rows["Random ensemble"]) - 0.03
    full = max(np.mean(rows["Ensemble + PE + GSE + Adaptive"]),
               np.mean(rows["Ensemble + PE + GSE + Gradient"]))
    assert full >= np.mean(rows["Ensemble + PE"]) - 0.03
