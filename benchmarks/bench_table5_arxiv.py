"""Table V — scalability study on the ogbn-arxiv analogue.

Compares single models (including the graph-agnostic MLP and the strongest
individual GNNs) against the ensemble baselines and both AutoHEnsGNN variants
on the largest dataset of the suite.
"""

import numpy as np

from benchmarks.harness import comparison_rows, ensemble_comparison, format_table, settings

POOL = ("gcn", "gat", "sgc")
SINGLES = ("mlp",)


def bench_table5_arxiv(benchmark, arxiv_graph):
    cfg = settings()

    def run():
        results = ensemble_comparison(arxiv_graph, POOL, cfg, seeds=[0])
        extra = ensemble_comparison(arxiv_graph, SINGLES, cfg, seeds=[0],
                                    include_methods=SINGLES)
        results.update(extra)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table("Table V — ogbn-arxiv analogue (accuracy %, * = best)",
                       ["Method", "Accuracy"], comparison_rows(results)))

    # Shape: the MLP trails the GNNs; AutoHEnsGNN is at least as good as the
    # best single GNN of the pool.
    assert np.mean(results["mlp"]) < max(np.mean(results[name]) for name in POOL)
    auto_best = max(np.mean(results["AutoHEnsGNN-Adaptive"]),
                    np.mean(results["AutoHEnsGNN-Gradient"]))
    assert auto_best >= max(np.mean(results[name]) for name in POOL) - 0.02
