"""Table VI — runtime statistics on the ogbn-arxiv analogue.

Measures model-selection time (proxy vs full evaluation), search time and
training time, plus the approximate parameter memory of the joint
gradient-search network, reproducing the structure of Table VI:

* proxy evaluation is markedly cheaper than evaluating every candidate fully;
* ``Ensemble+PE`` (no repeated initialisations) is the cheapest training
  scheme;
* the Gradient search uses more memory than the Adaptive one at search time.

On top of the paper's rows, the benchmark reports the engine headline
numbers: serial vs thread-backend wall clock for proxy selection and
hierarchical training (identical results — asserted), the capture-replay
vs dynamic-engine wall clock on the six-model training workload (bit-identical
predictions — asserted), the float64-vs-float32 study and the shared
compute-cache statistics.  Wall-clock speedup targets apply on quiet
multi-core hardware; on loaded single-core runners the ratios degrade and
only the determinism and cache assertions are enforced.
"""

import os
import time

import numpy as np

from benchmarks.harness import (
    TABLE6_POOL,
    capture_engine_microbenchmark,
    capture_speedup_study,
    format_table,
    prepare_node_dataset,
    settings,
)
from repro.autograd.dtype import compute_dtype_scope
from repro.core import (
    AdaptiveSearch,
    GradientSearch,
    GraphSelfEnsemble,
    HierarchicalEnsemble,
    ProxyEvaluator,
    select_top_models,
    train_single_models,
)
from repro.core.config import ProxyConfig
from repro.nn.data import GraphTensors
from repro.nn.model_zoo import get_model_spec
from repro.parallel import compute_cache
from repro.tasks.trainer import TrainConfig

CANDIDATES = TABLE6_POOL


def _parallel_study(prepared, serial_report, proxy_config, pool, data, labels,
                    train_idx, val_idx, train_config, cfg):
    """Serial vs thread-backend wall clock (the repro.parallel headline rows).

    Both selection runs below execute against the already-warm compute cache,
    so the reported ratio measures the backend alone rather than conflating
    it with cache hits from the earlier cold run.
    """
    workers = os.cpu_count() or 1
    rows = {}

    start = time.time()
    warm_serial_report = ProxyEvaluator(proxy_config, candidates=list(CANDIDATES),
                                        backend="serial").evaluate(prepared, seed=0)
    warm_serial_selection = time.time() - start
    start = time.time()
    thread_report = ProxyEvaluator(proxy_config, candidates=list(CANDIDATES),
                                   backend="thread").evaluate(prepared, seed=0)
    thread_selection = time.time() - start
    assert thread_report.ranking() == serial_report.ranking() \
        == warm_serial_report.ranking(), \
        "thread backend must rank candidates identically to serial"
    rows[f"Proxy evaluation (thread x{workers}): selection"] = thread_selection
    rows["Thread speedup: selection"] = warm_serial_selection / max(thread_selection, 1e-9)

    def train_hierarchical(backend):
        hierarchical = HierarchicalEnsemble()
        for index, name in enumerate(pool):
            hierarchical.add(GraphSelfEnsemble(
                spec_name=name, num_members=cfg.ensemble_size, hidden=cfg.hidden,
                num_layers=2, base_seed=7 * index))
        start = time.time()
        hierarchical.fit(data, labels, train_idx, val_idx, train_config=train_config,
                         num_classes=prepared.num_classes, backend=backend)
        return hierarchical.predict_proba(data), time.time() - start

    serial_probs, serial_time = train_hierarchical("serial")
    thread_probs, thread_time = train_hierarchical("thread")
    assert np.array_equal(serial_probs, thread_probs), \
        "thread backend must train to bit-identical predictions"
    rows["Hierarchical training (serial)"] = serial_time
    rows[f"Hierarchical training (thread x{workers})"] = thread_time
    rows["Thread speedup: training"] = serial_time / max(thread_time, 1e-9)
    return rows


def _dtype_study(prepared, train_config, cfg):
    """float64-vs-float32 wall clock of the same fixed-seed training workload.

    Each dtype rebuilds its own ``GraphTensors`` under the scoped policy (the
    compute cache keys operators per dtype), trains a fixed representative
    pool — fused spectral (gcn), attention/scatter (gat) and decoupled
    propagation (sgc) — serially, and reports the end-to-end ratio: the
    headline number of the allocation-lean compute core.
    """
    dtype_pool = ["gcn", "gat", "sgc"]
    # Fixed width: the dtype comparison targets the memory-bandwidth-bound
    # regime, independent of the benchmark's quick/full scaling knob.
    hidden = max(cfg.hidden, 64)
    rows = {}
    elapsed = {}
    for dtype in ("float64", "float32"):
        with compute_dtype_scope(dtype):
            data = GraphTensors.from_graph(prepared)
            start = time.time()
            train_single_models(dtype_pool, data, prepared.labels,
                                prepared.mask_indices("train"),
                                prepared.mask_indices("val"),
                                num_classes=prepared.num_classes, hidden=hidden,
                                train_config=train_config, replicas=2, seed=0)
            elapsed[dtype] = time.time() - start
        rows[f"Training ({dtype})"] = elapsed[dtype]
    rows["float32 speedup over float64"] = elapsed["float64"] / max(elapsed["float32"], 1e-9)
    return rows


def _runtime_study(graph):
    cfg = settings()
    compute_cache().clear()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    train_idx = prepared.mask_indices("train")
    val_idx = prepared.mask_indices("val")
    train_config = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs // 2, patience=10)

    rows = {}

    # Model selection: full evaluation of every candidate vs proxy evaluation.
    evaluator = ProxyEvaluator(ProxyConfig(dataset_fraction=0.3, bagging_rounds=1,
                                           hidden_fraction=0.5, max_epochs=20),
                               candidates=list(CANDIDATES))
    start = time.time()
    full_report = evaluator.evaluate_with(prepared, dataset_fraction=1.0, hidden_fraction=1.0,
                                          bagging_rounds=1, seed=0)
    rows["Ensemble (no PE): selection"] = time.time() - start
    start = time.time()
    proxy_report = evaluator.evaluate(prepared, seed=0)
    rows["Proxy evaluation: selection"] = time.time() - start
    pool = select_top_models(proxy_report, cfg.pool_size)

    # Training: Ensemble+PE (one model per pool entry, single init).
    start = time.time()
    train_single_models(pool, data, labels, train_idx, val_idx,
                        num_classes=prepared.num_classes, hidden=cfg.hidden,
                        train_config=train_config, replicas=1, seed=0)
    rows["Ensemble+PE: training"] = time.time() - start

    # Adaptive search + its per-model parameter memory.
    adaptive = AdaptiveSearch(pool=pool, ensemble_size=cfg.ensemble_size, max_layers=2,
                              hidden=cfg.hidden, train_config=train_config, seed=0)
    start = time.time()
    adaptive.search(prepared, data, labels, train_idx, val_idx,
                    num_classes=prepared.num_classes, hidden_fraction=0.5)
    rows["AutoHEnsGNN-Adaptive: search"] = time.time() - start
    rows.update(_parallel_study(prepared, proxy_report, evaluator.config, pool,
                                data, labels, train_idx, val_idx, train_config, cfg))
    rows.update(_dtype_study(prepared, train_config, cfg))
    # Capture-replay study: the six-candidate training workload on the
    # dynamic engine vs the capture engine (bit-identical predictions are
    # asserted inside the study), plus the steady-state per-epoch engine
    # throughput (interleaved timing, no validation/setup in the window).
    capture = capture_speedup_study()
    rows["Training (dynamic engine)"] = capture["capture_dynamic_seconds"]
    rows["Training (capture replay)"] = capture["capture_replay_seconds"]
    rows["Capture speedup: training"] = capture["capture_speedup"]
    engine = capture_engine_microbenchmark()
    rows["Capture speedup: engine epochs"] = engine["engine_speedup"]
    single_model_bytes = sum(
        parameter.data.nbytes for parameter in get_model_spec(pool[0]).build(
            data.num_features, prepared.num_classes, hidden=cfg.hidden).parameters())

    # Gradient search + the joint network's parameter memory.
    gradient = GradientSearch(pool=pool, ensemble_size=cfg.ensemble_size, max_layers=2,
                              hidden=cfg.hidden, hidden_fraction=0.5, lr=0.02,
                              epochs=cfg.search_epochs, seed=0)
    start = time.time()
    gradient.search(data, labels, train_idx, val_idx, num_classes=prepared.num_classes)
    rows["AutoHEnsGNN-Gradient: search"] = time.time() - start
    rows["Adaptive peak parameter MB"] = single_model_bytes / 1e6
    rows["Gradient peak parameter MB"] = gradient.parameter_bytes() / 1e6

    stats = compute_cache().stats()
    rows["Compute cache: hits"] = float(stats["hits"])
    rows["Compute cache: misses"] = float(stats["misses"])
    rows["Compute cache: evictions"] = float(stats["evictions"])
    rows["Compute cache: hit rate"] = stats["hit_rate"]
    rows["Compute cache: entries"] = float(stats["entries"])
    rows["Compute cache: resident MB"] = stats["resident_bytes"] / 1e6
    return rows


def bench_table6_runtime(benchmark, arxiv_graph):
    rows = benchmark.pedantic(lambda: _runtime_study(arxiv_graph), rounds=1, iterations=1)
    formatted = [[name, f"{value:.2f}"] for name, value in rows.items()]
    print()
    print(format_table("Table VI — runtime statistics on the arxiv analogue "
                       "(seconds / MB)", ["Quantity", "Value"], formatted))

    # Shape checks from the paper: proxy selection is faster than full
    # evaluation and the gradient search holds more parameters in memory than
    # a single adaptive-search model.
    assert rows["Proxy evaluation: selection"] < rows["Ensemble (no PE): selection"]
    assert rows["Gradient peak parameter MB"] > rows["Adaptive peak parameter MB"]

    # repro.parallel headline checks: the shared cache is exercised, and the
    # thread backend ran to identical results (asserted in _parallel_study).
    # Wall-clock ratios are reported but only asserted on demand: the training
    # loop interleaves pure-Python autograd with BLAS, so thread speedup on
    # small, loaded CI runners is too noisy for an unconditional gate.
    assert rows["Compute cache: hits"] > 0
    # Capture-vs-dynamic *determinism* is asserted inside the study itself;
    # wall-clock ratios (capture, like thread) are only gated on demand —
    # loaded CI runners make timing asserts flaky.
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP"):
        assert rows["Thread speedup: training"] >= 1.2
        assert rows["Capture speedup: training"] > 1.0
        assert rows["Capture speedup: engine epochs"] >= 1.5
