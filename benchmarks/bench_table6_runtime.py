"""Table VI — runtime statistics on the ogbn-arxiv analogue.

Measures model-selection time (proxy vs full evaluation), search time and
training time, plus the approximate parameter memory of the joint
gradient-search network, reproducing the structure of Table VI:

* proxy evaluation is markedly cheaper than evaluating every candidate fully;
* ``Ensemble+PE`` (no repeated initialisations) is the cheapest training
  scheme;
* the Gradient search uses more memory than the Adaptive one at search time.
"""

import time

import numpy as np

from benchmarks.harness import format_table, prepare_node_dataset, settings
from repro.core import (
    AdaptiveSearch,
    GradientSearch,
    ProxyEvaluator,
    select_top_models,
    train_single_models,
)
from repro.core.config import ProxyConfig
from repro.nn.data import GraphTensors
from repro.nn.model_zoo import get_model_spec
from repro.tasks.trainer import TrainConfig

CANDIDATES = ("gcn", "gat", "sgc", "tagcn", "mlp", "graphsage-mean")


def _runtime_study(graph):
    cfg = settings()
    prepared = prepare_node_dataset(graph, seed=0)
    data = GraphTensors.from_graph(prepared)
    labels = prepared.labels
    train_idx = prepared.mask_indices("train")
    val_idx = prepared.mask_indices("val")
    train_config = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs // 2, patience=10)

    rows = {}

    # Model selection: full evaluation of every candidate vs proxy evaluation.
    evaluator = ProxyEvaluator(ProxyConfig(dataset_fraction=0.3, bagging_rounds=1,
                                           hidden_fraction=0.5, max_epochs=20),
                               candidates=list(CANDIDATES))
    start = time.time()
    full_report = evaluator.evaluate_with(prepared, dataset_fraction=1.0, hidden_fraction=1.0,
                                          bagging_rounds=1, seed=0)
    rows["Ensemble (no PE): selection"] = time.time() - start
    start = time.time()
    proxy_report = evaluator.evaluate(prepared, seed=0)
    rows["Proxy evaluation: selection"] = time.time() - start
    pool = select_top_models(proxy_report, cfg.pool_size)

    # Training: Ensemble+PE (one model per pool entry, single init).
    start = time.time()
    train_single_models(pool, data, labels, train_idx, val_idx,
                        num_classes=prepared.num_classes, hidden=cfg.hidden,
                        train_config=train_config, replicas=1, seed=0)
    rows["Ensemble+PE: training"] = time.time() - start

    # Adaptive search + its per-model parameter memory.
    adaptive = AdaptiveSearch(pool=pool, ensemble_size=cfg.ensemble_size, max_layers=2,
                              hidden=cfg.hidden, train_config=train_config, seed=0)
    start = time.time()
    adaptive.search(prepared, data, labels, train_idx, val_idx,
                    num_classes=prepared.num_classes, hidden_fraction=0.5)
    rows["AutoHEnsGNN-Adaptive: search"] = time.time() - start
    single_model_bytes = sum(
        parameter.data.nbytes for parameter in get_model_spec(pool[0]).build(
            data.num_features, prepared.num_classes, hidden=cfg.hidden).parameters())

    # Gradient search + the joint network's parameter memory.
    gradient = GradientSearch(pool=pool, ensemble_size=cfg.ensemble_size, max_layers=2,
                              hidden=cfg.hidden, hidden_fraction=0.5, lr=0.02,
                              epochs=cfg.search_epochs, seed=0)
    start = time.time()
    gradient.search(data, labels, train_idx, val_idx, num_classes=prepared.num_classes)
    rows["AutoHEnsGNN-Gradient: search"] = time.time() - start
    rows["Adaptive peak parameter MB"] = single_model_bytes / 1e6
    rows["Gradient peak parameter MB"] = gradient.parameter_bytes() / 1e6
    return rows


def bench_table6_runtime(benchmark, arxiv_graph):
    rows = benchmark.pedantic(lambda: _runtime_study(arxiv_graph), rounds=1, iterations=1)
    formatted = [[name, f"{value:.2f}"] for name, value in rows.items()]
    print()
    print(format_table("Table VI — runtime statistics on the arxiv analogue "
                       "(seconds / MB)", ["Quantity", "Value"], formatted))

    # Shape checks from the paper: proxy selection is faster than full
    # evaluation and the gradient search holds more parameters in memory than
    # a single adaptive-search model.
    assert rows["Proxy evaluation: selection"] < rows["Ensemble (no PE): selection"]
    assert rows["Gradient peak parameter MB"] > rows["Adaptive peak parameter MB"]
