"""Table VII — KDD Cup final leaderboard (average rank score).

The other teams' code is unavailable, so the leaderboard is reproduced in two
parts:

1. the *metric*: the average-rank-score machinery is run over a set of frozen
   baseline "teams" (single GNN models standing in for competitor solutions)
   plus our AutoHEnsGNN submission across the five challenge-dataset
   analogues — the submission is expected to take rank 1;
2. the paper's reported leaderboard is printed alongside for reference.
"""

import numpy as np

from benchmarks.harness import format_table, settings
from repro.automl.runner import AutoGraphRunner
from repro.core import train_single_models
from repro.graph.splits import random_split
from repro.nn.data import GraphTensors
from repro.tasks.metrics import accuracy, average_rank_score
from repro.tasks.trainer import TrainConfig

#: The final-phase leaderboard reported in Table VII of the paper.
PAPER_LEADERBOARD = [
    ("aister (ours)", 4.8), ("PASA_NJU", 5.2), ("qqerret", 5.4), ("common", 6.6),
    ("PostDawn", 7.4), ("SmartMN-THU", 7.8), ("JunweiSun", 7.8), ("u1234x1234", 9.2),
    ("shiqitao", 9.6), ("supergx", 11.8),
]

#: Frozen single-model "teams" standing in for competitor solutions.
BASELINE_TEAMS = {"team-gcn": "gcn", "team-gat": "gat", "team-sage": "graphsage-mean",
                  "team-mlp": "mlp"}


def _leaderboard(kddcup_graphs):
    cfg = settings()
    runner = AutoGraphRunner(candidate_models=list(cfg.candidates), seed=0)
    scores_per_dataset = {}
    for name, graph in kddcup_graphs.items():
        hidden_labels = graph.metadata["hidden_labels"]
        test_idx = graph.mask_indices("test")

        # Baseline teams: one single model each, trained on the labelled part.
        split = random_split(graph, val_fraction=0.25, seed=0)
        data = GraphTensors.from_graph(split)
        outcome = train_single_models(
            list(BASELINE_TEAMS.values()), data, split.labels,
            split.mask_indices("train"), split.mask_indices("val"),
            num_classes=graph.num_classes, hidden=cfg.hidden,
            train_config=TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15),
            replicas=1, seed=0)
        dataset_scores = {}
        for team, model_name in BASELINE_TEAMS.items():
            proba = outcome[model_name]["probas"][0]
            dataset_scores[team] = accuracy(proba[test_idx], hidden_labels[test_idx])

        # Our submission: the competition runner without human intervention.
        submission = runner.run_graph(graph, time_budget=None, dataset_name=name)
        dataset_scores["aister (ours)"] = submission.accuracy_against(hidden_labels)
        scores_per_dataset[name] = dataset_scores
    return scores_per_dataset, average_rank_score(scores_per_dataset)


def bench_table7_leaderboard(benchmark, kddcup_graphs):
    scores, ranks = benchmark.pedantic(lambda: _leaderboard(kddcup_graphs),
                                       rounds=1, iterations=1)
    rows = [[team, f"{rank:.1f}"] for team, rank
            in sorted(ranks.items(), key=lambda item: item[1])]
    print()
    print(format_table("Table VII (reproduced) — average rank score across datasets A-E "
                       "(lower is better)", ["Team", "Avg rank"], rows))
    print()
    print(format_table("Table VII (paper reference) — final-phase leaderboard",
                       ["Team", "Avg rank score"],
                       [[team, f"{score:.1f}"] for team, score in PAPER_LEADERBOARD]))

    # Shape: our automated submission ranks first (or ties for first).
    best_rank = min(ranks.values())
    assert ranks["aister (ours)"] <= best_rank + 0.5
