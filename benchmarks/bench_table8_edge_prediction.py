"""Table VIII — edge prediction AUC on the citation analogues.

Builds single-encoder predictors, the D-/L-ensemble baselines and the
hierarchical ensemble (GSE per encoder type + accuracy-weighted combination)
on the link-prediction task, reporting ROC-AUC.
"""

import numpy as np
import pytest

from benchmarks.harness import format_table, settings
from repro.core import adaptive_beta
from repro.nn import build_model
from repro.tasks import EdgePredictionTask, EdgePredictor
from repro.tasks.edge_prediction import EdgeTrainConfig
from repro.tasks.metrics import auc_score

ENCODERS = ("gcn", "sgc", "graphsage-mean")
EMBED_DIM = 16


def _edge_experiment(graph, seeds=(0, 1)):
    cfg = settings()
    task = EdgePredictionTask(graph, val_fraction=0.05, test_fraction=0.10, seed=0)
    test_pos = task.edge_splits["test_pos"]
    test_neg = task.edge_splits["test_neg"]
    test_edges = np.hstack([test_pos, test_neg])
    test_labels = np.concatenate([np.ones(test_pos.shape[1]), np.zeros(test_neg.shape[1])])

    results = {}

    def record(name, value):
        results.setdefault(name, []).append(value)

    for seed in seeds:
        single_scores = {}
        probabilities = {}
        val_aucs = {}
        for encoder_name in ENCODERS:
            # K differently-seeded predictors per encoder form the GSE.
            member_probas = []
            member_val = []
            for member in range(cfg.ensemble_size):
                encoder = build_model(encoder_name, graph.num_features, EMBED_DIM,
                                      hidden=cfg.hidden, dropout=0.0,
                                      seed=seed * 100 + member * 7)
                predictor = EdgePredictor(encoder)
                outcome = task.train(predictor, EdgeTrainConfig(
                    lr=0.05, max_epochs=cfg.max_epochs, patience=20, seed=seed))
                member_probas.append(task.score_edges_proba(predictor, test_edges))
                member_val.append(outcome["val_auc"])
                if member == 0:
                    single_scores[encoder_name] = auc_score(member_probas[0], test_labels)
            probabilities[encoder_name] = np.mean(member_probas, axis=0)
            val_aucs[encoder_name] = float(np.mean(member_val))

        for name, score in single_scores.items():
            record(name, score)
        stacked = np.stack([probabilities[name] for name in ENCODERS], axis=0)
        record("D-ensemble", auc_score(stacked.mean(axis=0), test_labels))
        # Weight encoders by validation AUC (L-ensemble-style convex weights).
        weights = np.asarray([val_aucs[name] for name in ENCODERS])
        weights = weights / weights.sum()
        record("L-ensemble", auc_score((stacked * weights[:, None]).sum(axis=0), test_labels))
        # Hierarchical ensemble: GSE per encoder + adaptive beta (Eqn 8).
        beta = adaptive_beta([val_aucs[name] for name in ENCODERS],
                             graph.num_edges, graph.num_nodes)
        record("AutoHEnsGNN", auc_score((stacked * beta[:, None]).sum(axis=0), test_labels))
    return results


@pytest.mark.parametrize("dataset", ["cora", "citeseer", "pubmed"])
def bench_table8_edge_prediction(benchmark, citation_graphs, dataset):
    results = benchmark.pedantic(lambda: _edge_experiment(citation_graphs[dataset], seeds=(0,)),
                                 rounds=1, iterations=1)
    rows = [[name, f"{np.mean(values) * 100:.1f}"] for name, values in results.items()]
    print()
    print(format_table(f"Table VIII — edge prediction AUC on {dataset}",
                       ["Method", "AUC"], rows))

    best_single = max(np.mean(results[name]) for name in ENCODERS)
    assert np.mean(results["AutoHEnsGNN"]) >= best_single - 0.03
    assert np.mean(results["AutoHEnsGNN"]) > 0.5
