"""Table IX — graph classification accuracy on the PROTEINS analogue.

Compares single graph-level models (GIN, GraphSAGE, GCN backbones with
mean/max readouts), the D-/L-ensemble baselines and the hierarchical ensemble
with adaptive weights.
"""

import numpy as np

from benchmarks.harness import format_table, settings
from repro.core import adaptive_beta
from repro.nn import build_model
from repro.tasks import GraphClassificationTask, GraphLevelModel
from repro.tasks.graph_classification import GraphTrainConfig
from repro.tasks.metrics import accuracy

BACKBONES = ("gin", "graphsage-mean", "gcn")


def _graph_classification(dataset, seeds=(0,)):
    cfg = settings()
    task = GraphClassificationTask(dataset)
    test_labels = task.labels("test")
    results = {}

    def record(name, value):
        results.setdefault(name, []).append(value)

    total_edges = sum(graph.num_edges for graph in dataset.graphs)
    total_nodes = sum(graph.num_nodes for graph in dataset.graphs)

    for seed in seeds:
        probabilities = {}
        val_scores = {}
        for backbone_name in BACKBONES:
            member_probas = []
            member_val = []
            for member in range(cfg.ensemble_size):
                backbone = build_model(backbone_name, task.num_features, task.num_classes,
                                       hidden=cfg.hidden, dropout=0.1,
                                       seed=seed * 100 + 13 * member)
                model = GraphLevelModel(backbone, task.num_classes)
                outcome = task.train(model, GraphTrainConfig(lr=0.01,
                                                             max_epochs=cfg.max_epochs,
                                                             patience=20, seed=seed))
                member_probas.append(task.predict_proba(model, "test"))
                member_val.append(outcome["val_accuracy"])
                if member == 0:
                    record(backbone_name, accuracy(member_probas[0], test_labels))
            probabilities[backbone_name] = np.mean(member_probas, axis=0)
            val_scores[backbone_name] = float(np.mean(member_val))

        stacked = np.stack([probabilities[name] for name in BACKBONES], axis=0)
        record("D-ensemble", accuracy(stacked.mean(axis=0), test_labels))
        weights = np.asarray([val_scores[name] for name in BACKBONES])
        weights = weights / weights.sum()
        record("L-ensemble", accuracy((stacked * weights[:, None, None]).sum(axis=0),
                                      test_labels))
        beta = adaptive_beta([val_scores[name] for name in BACKBONES], total_edges, total_nodes)
        record("AutoHEnsGNN", accuracy((stacked * beta[:, None, None]).sum(axis=0),
                                       test_labels))
    return results


def bench_table9_graph_classification(benchmark, proteins_dataset):
    results = benchmark.pedantic(lambda: _graph_classification(proteins_dataset),
                                 rounds=1, iterations=1)
    rows = [[name, f"{np.mean(values) * 100:.1f}"] for name, values in results.items()]
    print()
    print(format_table("Table IX — graph classification on the PROTEINS analogue",
                       ["Method", "Accuracy"], rows))

    best_single = max(np.mean(results[name]) for name in BACKBONES)
    assert np.mean(results["AutoHEnsGNN"]) >= best_single - 0.05
    assert np.mean(results["AutoHEnsGNN"]) > 0.5
