"""Shared fixtures for the benchmark suite (scaled-down synthetic datasets)."""

from __future__ import annotations

import pytest

from benchmarks.harness import settings
from repro.datasets import (
    make_arxiv_dataset,
    make_citation_dataset,
    make_kddcup_dataset,
    make_proteins_dataset,
)


@pytest.fixture(scope="session")
def bench_settings():
    return settings()


@pytest.fixture(scope="session")
def kddcup_graphs(bench_settings):
    """The five challenge-dataset analogues at benchmark scale."""
    return {name: make_kddcup_dataset(name, scale=bench_settings.dataset_scale * 0.6, seed=0)
            for name in "ABCDE"}


@pytest.fixture(scope="session")
def citation_graphs(bench_settings):
    return {name: make_citation_dataset(name, scale=bench_settings.dataset_scale, seed=0)
            for name in ("cora", "citeseer", "pubmed")}


@pytest.fixture(scope="session")
def cora_graph(citation_graphs):
    return citation_graphs["cora"]


@pytest.fixture(scope="session")
def arxiv_graph(bench_settings):
    return make_arxiv_dataset(scale=0.25 * bench_settings.dataset_scale, seed=0)


@pytest.fixture(scope="session")
def proteins_dataset(bench_settings):
    return make_proteins_dataset(num_graphs=int(120 * bench_settings.dataset_scale), seed=0)
