"""Shared experiment harness for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper.  The
heavy lifting — training a shared model pool, building every ensemble
baseline on top of it and running the two AutoHEnsGNN variants — is
implemented once here so the per-table benchmarks stay thin and consistent.

Scaling
-------
The harness runs on synthetic analogues on a CPU, so all experiments are
scaled down (smaller graphs, fewer random seeds and epochs) relative to the
paper.  The scaling knobs live in :class:`BenchSettings`; set the environment
variable ``REPRO_BENCH_SCALE`` to ``full`` for a longer, closer-to-the-paper
run or leave the default ``quick`` for a minutes-long pass whose *shape*
(method ordering, variance reduction, crossovers) is the reproduction target.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core import (
    AdaptiveSearch,
    AutoHEnsGNN,
    AutoHEnsGNNConfig,
    DEnsemble,
    GoyalGreedyEnsemble,
    GradientSearch,
    LEnsemble,
    RandomEnsemble,
    SearchMethod,
    train_single_models,
)
from repro.core.config import ProxyConfig
from repro.graph.graph import Graph
from repro.graph.splits import holdout_test_split, random_split
from repro.nn.data import GraphTensors
from repro.tasks.metrics import mean_and_std
from repro.tasks.trainer import TrainConfig


# ---------------------------------------------------------------------------
# Settings
# ---------------------------------------------------------------------------
@dataclass
class BenchSettings:
    """Global scaling knobs for the benchmark harness."""

    dataset_scale: float = 0.4
    num_seeds: int = 2
    max_epochs: int = 40
    search_epochs: int = 15
    ensemble_size: int = 2
    pool_size: int = 2
    hidden: int = 32
    proxy_bagging: int = 2
    candidates: Sequence[str] = ("gcn", "gat", "graphsage-mean", "tagcn", "appnp",
                                 "sgc", "gcnii", "grand", "mlp")


def settings() -> BenchSettings:
    """Benchmark settings derived from the ``REPRO_BENCH_SCALE`` environment variable."""
    mode = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if mode == "full":
        return BenchSettings(dataset_scale=1.0, num_seeds=3, max_epochs=150,
                             search_epochs=50, ensemble_size=3, pool_size=3, hidden=64,
                             proxy_bagging=4)
    return BenchSettings()


# ---------------------------------------------------------------------------
# Table formatting
# ---------------------------------------------------------------------------
def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table (printed by every benchmark).

    Besides returning the rendered table, the text is appended to the file
    named by ``REPRO_BENCH_REPORT`` (default ``benchmark_tables.txt`` in the
    working directory) so the regenerated tables survive pytest's output
    capturing and can be compared against the paper after a benchmark run.
    """
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    rendered = "\n".join(lines)
    report_path = os.environ.get("REPRO_BENCH_REPORT", "benchmark_tables.txt")
    if report_path:
        try:
            with open(report_path, "a", encoding="utf-8") as handle:
                handle.write(rendered + "\n\n")
        except OSError:
            pass
    return rendered


def format_mean_std(values: Sequence[float], scale: float = 100.0) -> str:
    """``mean±std`` in percent, the cell format of the paper's tables."""
    mean, std = mean_and_std(values)
    return f"{mean * scale:.1f}±{std * scale:.1f}"


# ---------------------------------------------------------------------------
# Dataset preparation
# ---------------------------------------------------------------------------
def prepare_node_dataset(graph: Graph, seed: int = 0) -> Graph:
    """Make sure a graph has train/val/test masks for the comparison experiments.

    Challenge-style datasets (hidden test labels) get their labels restored
    from metadata for evaluation; fixed-split citation analogues are returned
    unchanged.
    """
    if graph.train_mask is not None and graph.val_mask is not None \
            and graph.test_mask is not None:
        return graph
    graph = graph.copy()
    hidden = graph.metadata.get("hidden_labels")
    if hidden is not None:
        graph.labels = np.asarray(hidden).copy()
    if graph.test_mask is None:
        graph = holdout_test_split(graph, test_fraction=0.3, seed=seed)
        pool = graph.metadata.get("labelled_pool")
    else:
        pool = np.where(~graph.test_mask)[0]
        graph.metadata["labelled_pool"] = pool
    graph = random_split(graph, val_fraction=0.25, seed=seed, labelled_pool=pool)
    return graph


# ---------------------------------------------------------------------------
# The shared "one dataset, every method" comparison (Tables II, III, V)
# ---------------------------------------------------------------------------
def ensemble_comparison(graph: Graph, pool: Sequence[str], cfg: Optional[BenchSettings] = None,
                        seeds: Optional[Sequence[int]] = None,
                        include_methods: Optional[Sequence[str]] = None) -> Dict[str, List[float]]:
    """Run single models + every ensemble method on one dataset.

    Returns ``{method name: [test accuracy per seed]}`` where the methods are
    the rows of Tables II/III/V: each pool model individually, D-ensemble,
    L-ensemble, Goyal et al., AutoHEnsGNN_Adaptive and AutoHEnsGNN_Gradient.
    """
    cfg = cfg or settings()
    seeds = list(seeds if seeds is not None else range(cfg.num_seeds))
    wanted = set(include_methods) if include_methods else None
    results: Dict[str, List[float]] = {}

    def record(name: str, value: float) -> None:
        if wanted is not None and name not in wanted:
            return
        results.setdefault(name, []).append(value)

    for seed in seeds:
        prepared = prepare_node_dataset(graph, seed=seed)
        data = GraphTensors.from_graph(prepared)
        labels = prepared.labels
        train_idx = prepared.mask_indices("train")
        val_idx = prepared.mask_indices("val")
        test_idx = prepared.mask_indices("test")
        train_config = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15, seed=seed)

        pool_outcome = train_single_models(
            pool, data, labels, train_idx, val_idx, num_classes=prepared.num_classes,
            hidden=cfg.hidden, train_config=train_config, replicas=cfg.ensemble_size,
            seed=seed)

        # Individual models (first replica only, as the paper's single-model rows).
        from repro.tasks.metrics import accuracy

        for name, entry in pool_outcome.items():
            record(name, accuracy(entry["probas"][0][test_idx], labels[test_idx]))

        def build(cls):
            ensemble = cls()
            for name, entry in pool_outcome.items():
                for proba in entry["probas"]:
                    ensemble.add(name, proba)
            return ensemble

        d_ensemble = build(DEnsemble)
        record("D-ensemble", d_ensemble.evaluate(labels, test_idx))

        l_ensemble = build(LEnsemble)
        l_ensemble.fit_weights(labels, val_idx, lr=0.1, epochs=100)
        record("L-ensemble", l_ensemble.evaluate(labels, test_idx))

        goyal = build(GoyalGreedyEnsemble)
        goyal.fit_greedy(labels, val_idx)
        record("Goyal et al.", goyal.evaluate(labels, test_idx))

        for method, label in ((SearchMethod.ADAPTIVE, "AutoHEnsGNN-Adaptive"),
                              (SearchMethod.GRADIENT, "AutoHEnsGNN-Gradient")):
            if wanted is not None and label not in wanted:
                continue
            pipeline = AutoHEnsGNN(pipeline_config(cfg, method, seed))
            outcome = pipeline.fit_predict(prepared, pool=list(pool))
            record(label, outcome.test_accuracy(labels, test_idx))
    return results


def pipeline_config(cfg: BenchSettings, method: SearchMethod, seed: int) -> AutoHEnsGNNConfig:
    """The scaled-down pipeline configuration used across the benchmarks."""
    config = AutoHEnsGNNConfig(
        pool_size=cfg.pool_size,
        ensemble_size=cfg.ensemble_size,
        max_layers=3,
        search_method=method,
        search_epochs=cfg.search_epochs,
        bagging_splits=1,
        hidden=cfg.hidden,
        seed=seed,
        candidate_models=list(cfg.candidates),
        proxy=ProxyConfig(dataset_fraction=0.3, bagging_rounds=cfg.proxy_bagging,
                          hidden_fraction=0.5, max_epochs=30, seed=seed),
    )
    config.train = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15, seed=seed)
    return config


def comparison_rows(results: Dict[str, List[float]]) -> List[List[str]]:
    """Format an ``ensemble_comparison`` result as table rows (best row marked)."""
    rows = []
    best_method = max(results, key=lambda name: np.mean(results[name]))
    for name, values in results.items():
        marker = " *" if name == best_method else ""
        rows.append([name + marker, format_mean_std(values)])
    return rows
