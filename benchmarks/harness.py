"""Shared experiment harness for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper.  The
heavy lifting — training a shared model pool, building every ensemble
baseline on top of it and running the two AutoHEnsGNN variants — is
implemented once here so the per-table benchmarks stay thin and consistent.

Scaling
-------
The harness runs on synthetic analogues on a CPU, so all experiments are
scaled down (smaller graphs, fewer random seeds and epochs) relative to the
paper.  The scaling knobs live in :class:`BenchSettings`; set the environment
variable ``REPRO_BENCH_SCALE`` to ``full`` for a longer, closer-to-the-paper
run or leave the default ``quick`` for a minutes-long pass whose *shape*
(method ordering, variance reduction, crossovers) is the reproduction target.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core import (
    AdaptiveSearch,
    AutoHEnsGNN,
    AutoHEnsGNNConfig,
    DEnsemble,
    GoyalGreedyEnsemble,
    GradientSearch,
    LEnsemble,
    RandomEnsemble,
    SearchMethod,
    train_single_models,
)
from repro.core.config import ProxyConfig
from repro.graph.graph import Graph
from repro.graph.splits import holdout_test_split, random_split
from repro.nn.data import GraphTensors
from repro.tasks.metrics import mean_and_std
from repro.tasks.trainer import TrainConfig


# ---------------------------------------------------------------------------
# Settings
# ---------------------------------------------------------------------------
@dataclass
class BenchSettings:
    """Global scaling knobs for the benchmark harness."""

    dataset_scale: float = 0.4
    num_seeds: int = 2
    max_epochs: int = 40
    search_epochs: int = 15
    ensemble_size: int = 2
    pool_size: int = 2
    hidden: int = 32
    proxy_bagging: int = 2
    candidates: Sequence[str] = ("gcn", "gat", "graphsage-mean", "tagcn", "appnp",
                                 "sgc", "gcnii", "grand", "mlp")


def settings() -> BenchSettings:
    """Benchmark settings derived from the ``REPRO_BENCH_SCALE`` environment variable."""
    mode = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if mode == "full":
        return BenchSettings(dataset_scale=1.0, num_seeds=3, max_epochs=150,
                             search_epochs=50, ensemble_size=3, pool_size=3, hidden=64,
                             proxy_bagging=4)
    return BenchSettings()


# ---------------------------------------------------------------------------
# Table formatting
# ---------------------------------------------------------------------------
def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table (printed by every benchmark).

    Besides returning the rendered table, the text is appended to the file
    named by ``REPRO_BENCH_REPORT`` (default ``benchmark_tables.txt`` in the
    working directory) so the regenerated tables survive pytest's output
    capturing and can be compared against the paper after a benchmark run.
    """
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    rendered = "\n".join(lines)
    report_path = os.environ.get("REPRO_BENCH_REPORT", "benchmark_tables.txt")
    if report_path:
        try:
            with open(report_path, "a", encoding="utf-8") as handle:
                handle.write(rendered + "\n\n")
        except OSError:
            pass
    return rendered


def format_mean_std(values: Sequence[float], scale: float = 100.0) -> str:
    """``mean±std`` in percent, the cell format of the paper's tables."""
    mean, std = mean_and_std(values)
    return f"{mean * scale:.1f}±{std * scale:.1f}"


# ---------------------------------------------------------------------------
# Dataset preparation
# ---------------------------------------------------------------------------
def prepare_node_dataset(graph: Graph, seed: int = 0) -> Graph:
    """Make sure a graph has train/val/test masks for the comparison experiments.

    Challenge-style datasets (hidden test labels) get their labels restored
    from metadata for evaluation; fixed-split citation analogues are returned
    unchanged.
    """
    if graph.train_mask is not None and graph.val_mask is not None \
            and graph.test_mask is not None:
        return graph
    graph = graph.copy()
    hidden = graph.metadata.get("hidden_labels")
    if hidden is not None:
        graph.labels = np.asarray(hidden).copy()
    if graph.test_mask is None:
        graph = holdout_test_split(graph, test_fraction=0.3, seed=seed)
        pool = graph.metadata.get("labelled_pool")
    else:
        pool = np.where(~graph.test_mask)[0]
        graph.metadata["labelled_pool"] = pool
    graph = random_split(graph, val_fraction=0.25, seed=seed, labelled_pool=pool)
    return graph


# ---------------------------------------------------------------------------
# The shared "one dataset, every method" comparison (Tables II, III, V)
# ---------------------------------------------------------------------------
def ensemble_comparison(graph: Graph, pool: Sequence[str], cfg: Optional[BenchSettings] = None,
                        seeds: Optional[Sequence[int]] = None,
                        include_methods: Optional[Sequence[str]] = None) -> Dict[str, List[float]]:
    """Run single models + every ensemble method on one dataset.

    Returns ``{method name: [test accuracy per seed]}`` where the methods are
    the rows of Tables II/III/V: each pool model individually, D-ensemble,
    L-ensemble, Goyal et al., AutoHEnsGNN_Adaptive and AutoHEnsGNN_Gradient.
    """
    cfg = cfg or settings()
    seeds = list(seeds if seeds is not None else range(cfg.num_seeds))
    wanted = set(include_methods) if include_methods else None
    results: Dict[str, List[float]] = {}

    def record(name: str, value: float) -> None:
        if wanted is not None and name not in wanted:
            return
        results.setdefault(name, []).append(value)

    for seed in seeds:
        prepared = prepare_node_dataset(graph, seed=seed)
        data = GraphTensors.from_graph(prepared)
        labels = prepared.labels
        train_idx = prepared.mask_indices("train")
        val_idx = prepared.mask_indices("val")
        test_idx = prepared.mask_indices("test")
        train_config = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15, seed=seed)

        pool_outcome = train_single_models(
            pool, data, labels, train_idx, val_idx, num_classes=prepared.num_classes,
            hidden=cfg.hidden, train_config=train_config, replicas=cfg.ensemble_size,
            seed=seed)

        # Individual models (first replica only, as the paper's single-model rows).
        from repro.tasks.metrics import accuracy

        for name, entry in pool_outcome.items():
            record(name, accuracy(entry["probas"][0][test_idx], labels[test_idx]))

        def build(cls):
            ensemble = cls()
            for name, entry in pool_outcome.items():
                for proba in entry["probas"]:
                    ensemble.add(name, proba)
            return ensemble

        d_ensemble = build(DEnsemble)
        record("D-ensemble", d_ensemble.evaluate(labels, test_idx))

        l_ensemble = build(LEnsemble)
        l_ensemble.fit_weights(labels, val_idx, lr=0.1, epochs=100)
        record("L-ensemble", l_ensemble.evaluate(labels, test_idx))

        goyal = build(GoyalGreedyEnsemble)
        goyal.fit_greedy(labels, val_idx)
        record("Goyal et al.", goyal.evaluate(labels, test_idx))

        for method, label in ((SearchMethod.ADAPTIVE, "AutoHEnsGNN-Adaptive"),
                              (SearchMethod.GRADIENT, "AutoHEnsGNN-Gradient")):
            if wanted is not None and label not in wanted:
                continue
            pipeline = AutoHEnsGNN(pipeline_config(cfg, method, seed))
            outcome = pipeline.fit_predict(prepared, pool=list(pool))
            record(label, outcome.test_accuracy(labels, test_idx))
    return results


def pipeline_config(cfg: BenchSettings, method: SearchMethod, seed: int) -> AutoHEnsGNNConfig:
    """The scaled-down pipeline configuration used across the benchmarks."""
    config = AutoHEnsGNNConfig(
        pool_size=cfg.pool_size,
        ensemble_size=cfg.ensemble_size,
        max_layers=3,
        search_method=method,
        search_epochs=cfg.search_epochs,
        bagging_splits=1,
        hidden=cfg.hidden,
        seed=seed,
        candidate_models=list(cfg.candidates),
        proxy=ProxyConfig(dataset_fraction=0.3, bagging_rounds=cfg.proxy_bagging,
                          hidden_fraction=0.5, max_epochs=30, seed=seed),
    )
    config.train = TrainConfig(lr=0.02, max_epochs=cfg.max_epochs, patience=15, seed=seed)
    return config


def comparison_rows(results: Dict[str, List[float]]) -> List[List[str]]:
    """Format an ``ensemble_comparison`` result as table rows (best row marked)."""
    rows = []
    best_method = max(results, key=lambda name: np.mean(results[name]))
    for name, values in results.items():
        marker = " *" if name == best_method else ""
        rows.append([name + marker, format_mean_std(values)])
    return rows


# ---------------------------------------------------------------------------
# Runtime-regression gate (CI)
# ---------------------------------------------------------------------------
#: Pool trained by the serial micro-benchmark (one conv family per hot path:
#: fused GCN kernel, decoupled propagation, spatial aggregation).
MICROBENCH_POOL = ("gcn", "sgc", "graphsage-mean")

#: The six candidates of the Table VI runtime study (bench_table6_runtime).
TABLE6_POOL = ("gcn", "gat", "sgc", "tagcn", "mlp", "graphsage-mean")


def _capture_speedup_sweep(epochs: int = 60) -> Dict[str, Dict[str, float]]:
    """One paired engine sweep: per-model engine seconds on both engines.

    Trains the six Table VI candidates for a fixed ``epochs`` full-batch
    epochs each (no early stopping) on the benchmark-scale arxiv analogue,
    once on the dynamic autograd engine and once through capture-replay,
    asserting bit-identical predictions.  Each model is trained on both
    engines back to back — the tightest pairing the workload allows, so a
    machine-load burst hits both halves of a pair.  The compared quantity
    is the trainer's ``engine_seconds`` — wall time inside ``run_epoch``
    calls only — so model building, validation and best-state snapshots,
    which are identical engine-independent work on both paths, do not
    dilute the engine ratio.  (The capture side still pays its trace epoch,
    pass pipeline and arena planning inside ``run_epoch`` timing.)
    """
    from repro.datasets import make_arxiv_dataset
    from repro.nn.model_zoo import build_model
    from repro.tasks.trainer import NodeClassificationTrainer

    cfg = settings()
    graph = prepare_node_dataset(
        make_arxiv_dataset(scale=0.25 * cfg.dataset_scale, seed=0), seed=0)
    data = GraphTensors.from_graph(graph)
    labels = graph.labels
    train_idx = graph.mask_indices("train")
    val_idx = graph.mask_indices("val")

    def train_one(name: str, capture: bool):
        model = build_model(name, data.num_features, graph.num_classes,
                            hidden=cfg.hidden, seed=0)
        config = TrainConfig(lr=0.02, max_epochs=epochs, patience=epochs,
                             evaluate_every=5, capture=capture, seed=0)
        result = NodeClassificationTrainer(config).train(
            model, data, labels, train_idx, val_idx)
        return result.engine_seconds, model.predict_proba(data)

    for name in TABLE6_POOL:   # warm the compute cache before the pairs
        train_one(name, True)
    sweep: Dict[str, Dict[str, float]] = {}
    for name in TABLE6_POOL:
        d_seconds, d_probas = train_one(name, False)
        r_seconds, r_probas = train_one(name, True)
        assert np.array_equal(d_probas, r_probas), \
            f"capture replay diverged from the dynamic engine for {name}"
        sweep[name] = {"dynamic": d_seconds, "replay": r_seconds}
    return sweep


def capture_speedup_study(epochs: int = 60, repeats: int = 5,
                          isolated: bool = True) -> Dict[str, float]:
    """Dynamic engine vs capture replay on the six-model Table VI workload.

    ``epochs=60`` matches the pipeline's shortest real training stage (the
    proxy search; GSE/bagging stages run 120–200), so the one-time trace
    epoch, pass pipeline and arena planning amortize the way they do in an
    actual run — a shorter horizon under-states the engine.

    Runs :func:`_capture_speedup_sweep` ``repeats`` times and reduces each
    model's engine seconds by **per-model median** across repeats before
    summing: a machine-load burst that lands on one model in one repeat
    perturbs one sample out of ``repeats``, not a whole repeat's aggregate.
    The reported speedup is the ratio of the summed per-model medians.

    With ``isolated=True`` (the default) every sweep runs in a fresh
    interpreter: the dynamic engine speeds up 10–15 % as the process heap
    ages (its allocation-heavy epochs increasingly hit warm allocator
    arenas) while the allocation-free replay is insensitive to heap state,
    so in-process repeats — or a study run late in a larger benchmark
    suite — systematically deflate the ratio relative to the fresh-process
    regime a training run actually starts in.  Process isolation makes
    every sample a fresh-regime sample.
    """
    if isolated:
        import json
        import os
        import subprocess
        import sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root] +
            ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        code = ("import json\n"
                "from benchmarks.harness import _capture_speedup_sweep\n"
                f"print(json.dumps(_capture_speedup_sweep({int(epochs)})))\n")
        sweeps = []
        for _ in range(max(repeats, 1)):
            proc = subprocess.run([sys.executable, "-c", code], cwd=root,
                                  env=env, capture_output=True, text=True)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"isolated capture sweep failed:\n{proc.stderr}")
            sweeps.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    else:
        sweeps = [_capture_speedup_sweep(epochs)
                  for _ in range(max(repeats, 1))]
    dynamic_seconds = sum(
        float(np.median([sweep[name]["dynamic"] for sweep in sweeps]))
        for name in TABLE6_POOL)
    replay_seconds = sum(
        float(np.median([sweep[name]["replay"] for sweep in sweeps]))
        for name in TABLE6_POOL)
    return {
        "capture_dynamic_seconds": dynamic_seconds,
        "capture_replay_seconds": replay_seconds,
        "capture_speedup": dynamic_seconds / max(replay_seconds, 1e-9),
    }


def capture_engine_microbenchmark(rounds: int = 5,
                                  iterations: int = 40) -> Dict[str, float]:
    """Steady-state per-epoch throughput: dynamic engine vs capture replay.

    For each of the six Table VI candidates, builds the model and optimiser
    once, traces the training iteration, then times dynamic epochs and
    replayed epochs in interleaved windows (``rounds`` pairs of
    ``iterations`` epochs each, best window per engine).  This isolates the
    training *engine* — no validation, no model building, no early stopping
    — and the interleaving keeps machine-load drift from favouring either
    side.  Returns per-model epoch milliseconds and the aggregate ratio.
    """
    import timeit

    from repro.autograd import capture as _capture
    from repro.autograd import functional as _F
    from repro.autograd import optim as _optim
    from repro.datasets import make_arxiv_dataset
    from repro.nn.model_zoo import build_model

    cfg = settings()
    graph = prepare_node_dataset(
        make_arxiv_dataset(scale=0.25 * cfg.dataset_scale, seed=0), seed=0)
    data = GraphTensors.from_graph(graph)
    labels = graph.labels
    train_idx = graph.mask_indices("train")
    report: Dict[str, float] = {}
    total_dynamic = 0.0
    total_replay = 0.0
    for name in TABLE6_POOL:
        model = build_model(name, data.num_features, graph.num_classes,
                            hidden=cfg.hidden, seed=0)
        optimizer = _optim.Adam(model.parameters(), lr=0.02, weight_decay=5e-4)
        scheduler = _optim.StepLR(optimizer)

        def dynamic_epoch():
            # The trainer's full-batch epoch, verbatim.
            model.train()
            optimizer.zero_grad()
            logits = model(data)
            loss = _F.cross_entropy(logits[train_idx], labels[train_idx])
            loss.backward()
            optimizer.step()
            scheduler.step()
            return float(loss.item())

        tape = _capture.Tape()
        with _capture.tracing(tape):
            dynamic_epoch()
        replay = tape.finalize(optimizer, scheduler)
        assert replay is not None, f"{name}: {tape.failure}"
        replay.run_epoch()
        count = max(iterations // 4, 10) if name.startswith("gat") else iterations
        best_dynamic = best_replay = float("inf")
        for _ in range(max(rounds, 1)):
            best_dynamic = min(best_dynamic,
                               timeit.timeit(dynamic_epoch, number=count) / count)
            best_replay = min(best_replay,
                              timeit.timeit(replay.run_epoch, number=count) / count)
        report[f"epoch_ms_dynamic_{name}"] = best_dynamic * 1000.0
        report[f"epoch_ms_replay_{name}"] = best_replay * 1000.0
        total_dynamic += best_dynamic
        total_replay += best_replay
        replay.release()
    report["engine_speedup"] = total_dynamic / max(total_replay, 1e-12)
    return report


def ir_pass_study(rounds: int = 3, iterations: int = 20) -> Dict[str, float]:
    """Replay throughput and fused-op counts per IR pass configuration.

    For each Table VI candidate the training iteration is traced four times
    and finalized under a different pass pipeline — no passes, spmm fusion
    only, elementwise-chain fusion only, the full default pipeline — and the
    steady-state replay epoch is timed for each (best of ``rounds`` windows
    of ``iterations`` epochs).  Losses are bit-identical across
    configurations by the IR contract (regression-tested in tests/test_ir),
    so the study isolates what each pass contributes to replay throughput,
    alongside the fused/replayed op counts from the plans.
    """
    import timeit

    from repro.autograd import capture as _capture
    from repro.autograd import functional as _F
    from repro.autograd import optim as _optim
    from repro.autograd.ir.passes import (fuse_elementwise_chains,
                                          fuse_spmm_linear)
    from repro.datasets import make_arxiv_dataset
    from repro.nn.model_zoo import build_model

    cfg = settings()
    graph = prepare_node_dataset(
        make_arxiv_dataset(scale=0.25 * cfg.dataset_scale, seed=0), seed=0)
    data = GraphTensors.from_graph(graph)
    labels = graph.labels
    train_idx = graph.mask_indices("train")
    configs = (
        ("no_passes", ()),
        ("spmm_fusion", (fuse_spmm_linear,)),
        ("chain_fusion", (fuse_elementwise_chains,)),
        ("all_passes", None),
    )
    report: Dict[str, float] = {}
    for label, passes in configs:
        total_seconds = 0.0
        fused = 0
        replayed = 0
        for name in TABLE6_POOL:
            model = build_model(name, data.num_features, graph.num_classes,
                                hidden=cfg.hidden, seed=0)
            optimizer = _optim.Adam(model.parameters(), lr=0.02,
                                    weight_decay=5e-4)
            scheduler = _optim.StepLR(optimizer)

            def dynamic_epoch():
                model.train()
                optimizer.zero_grad()
                logits = model(data)
                loss = _F.cross_entropy(logits[train_idx], labels[train_idx])
                loss.backward()
                optimizer.step()
                scheduler.step()
                return float(loss.item())

            tape = _capture.Tape()
            with _capture.tracing(tape):
                dynamic_epoch()
            replay = tape.finalize(optimizer, scheduler, passes=passes)
            assert replay is not None, f"{name}: {tape.failure}"
            replay.run_epoch()
            count = max(iterations // 4, 5) if name.startswith("gat") else iterations
            best = float("inf")
            for _ in range(max(rounds, 1)):
                best = min(best,
                           timeit.timeit(replay.run_epoch, number=count) / count)
            total_seconds += best
            fused += int(replay.plan.get("ops_fused", 0))
            replayed += int(replay.plan["ops_replayed"])
            replay.release()
        report[f"ir_epoch_ms_{label}"] = total_seconds * 1000.0
        report[f"ir_ops_fused_{label}"] = float(fused)
        report[f"ir_ops_replayed_{label}"] = float(replayed)
    report["ir_fusion_speedup"] = (report["ir_epoch_ms_no_passes"]
                                   / max(report["ir_epoch_ms_all_passes"], 1e-9))
    return report


def ensemble_arena_study(members: int = 4, epochs: int = 6) -> Dict[str, float]:
    """Cross-member arena sharing: pooled vs private allocation, in bytes.

    Trains ``members`` capture-enabled GCN members back to back — the
    sequential shape of GSE/bagged ensemble fitting — twice: once against
    the shared :func:`~repro.autograd.ir.arena.global_pool` and once with
    pooling disabled (every replay allocates private arenas, the pre-pool
    behaviour).  The pool's byte counters are exact, so the study is
    deterministic: the reuse ratio is how many bytes of private arena
    allocation the pool avoided, and the high-water mark is the true peak
    of simultaneously leased storage.
    """
    from repro.autograd.ir.arena import global_pool, pooling_disabled
    from repro.datasets.generators import SBMConfig, make_attributed_sbm
    from repro.nn.model_zoo import build_model
    from repro.tasks.trainer import NodeClassificationTrainer

    graph = prepare_node_dataset(
        make_attributed_sbm(SBMConfig(num_nodes=700, num_classes=4, num_features=48)),
        seed=0)
    data = GraphTensors.from_graph(graph)
    train_idx = graph.mask_indices("train")
    val_idx = graph.mask_indices("val")

    def train_members() -> None:
        for seed in range(members):
            model = build_model("gcn", data.num_features, graph.num_classes,
                                hidden=32, seed=seed)
            config = TrainConfig(lr=0.02, max_epochs=epochs, patience=epochs,
                                 capture=True, seed=seed)
            NodeClassificationTrainer(config).train(
                model, data, graph.labels, train_idx, val_idx)

    pool = global_pool()
    pool.clear()
    pool.reset_stats()
    train_members()
    pooled = pool.stats()
    pool.clear()
    pool.reset_stats()
    with pooling_disabled():
        train_members()
    unpooled = pool.stats()
    return {
        "ensemble_members": float(members),
        "ensemble_arena_pooled_mb": pooled["allocated_bytes"] / 2.0 ** 20,
        "ensemble_arena_unpooled_mb": unpooled["allocated_bytes"] / 2.0 ** 20,
        "ensemble_arena_high_water_mb": pooled["high_water_bytes"] / 2.0 ** 20,
        "ensemble_arena_reuse_ratio": (unpooled["allocated_bytes"]
                                       / max(pooled["allocated_bytes"], 1)),
    }


def memory_microbenchmark(epochs: int = 14) -> Dict[str, float]:
    """Peak RSS and per-epoch allocation behaviour of full-batch training.

    Trains the micro-benchmark GCN under ``tracemalloc`` on both engines and
    samples, at every epoch boundary, (a) the epoch's transient allocation
    peak — bytes allocated above the epoch's starting waterline — and
    (b) the net number of live allocation blocks the epoch added.  The first
    two epochs per engine are discarded (capture traces epoch 0 and builds
    its arena on epoch 1); medians of the steady-state epochs are reported,
    plus the process peak RSS from ``getrusage``.
    """
    import resource
    import tracemalloc

    from repro.datasets.generators import SBMConfig, make_attributed_sbm
    from repro.nn.model_zoo import build_model
    from repro.tasks.trainer import NodeClassificationTrainer

    graph = prepare_node_dataset(
        make_attributed_sbm(SBMConfig(num_nodes=700, num_classes=4, num_features=48)),
        seed=0)
    data = GraphTensors.from_graph(graph)
    train_idx = graph.mask_indices("train")
    val_idx = graph.mask_indices("val")
    report: Dict[str, float] = {}
    for label, capture in (("dynamic", False), ("capture", True)):
        model = build_model("gcn", data.num_features, graph.num_classes,
                            hidden=32, seed=0)
        config = TrainConfig(lr=0.02, max_epochs=epochs, patience=epochs,
                             capture=capture, seed=0)
        peaks: List[float] = []
        blocks: List[float] = []
        state: Dict[str, float] = {}

        def epoch_hook(epoch: int, loss: float) -> None:
            current, peak = tracemalloc.get_traced_memory()
            live_blocks = len(tracemalloc.take_snapshot().traces)
            if "waterline" in state and epoch >= 2:
                peaks.append(peak - state["waterline"])
                blocks.append(live_blocks - state["blocks"])
            tracemalloc.reset_peak()
            state["waterline"] = tracemalloc.get_traced_memory()[0]
            state["blocks"] = live_blocks

        tracemalloc.start()
        try:
            NodeClassificationTrainer(config).train(
                model, data, graph.labels, train_idx, val_idx, epoch_hook=epoch_hook)
        finally:
            tracemalloc.stop()
        report[f"epoch_alloc_peak_kb_{label}"] = float(np.median(peaks)) / 1024.0
        report[f"epoch_net_blocks_{label}"] = float(np.median(blocks))
    report["epoch_alloc_ratio"] = (report["epoch_alloc_peak_kb_dynamic"]
                                   / max(report["epoch_alloc_peak_kb_capture"], 1e-9))
    # ru_maxrss is kilobytes on Linux.
    report["peak_rss_mb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return report


def _serving_workload():
    """Fit the shared serving workload once: ``(graph, fitted, fit_seconds)``.

    Both serving micro-benchmarks (batch latency and streaming throughput)
    score the same fitted ensemble over the same 700-node SBM analogue, so
    the paid-once fit is factored out and shared by ``emit_runtime_baseline``.
    """
    import time as _time

    from repro.core.pipeline import AutoHEnsGNN
    from repro.datasets.generators import SBMConfig, make_attributed_sbm

    graph = prepare_node_dataset(
        make_attributed_sbm(SBMConfig(num_nodes=700, num_classes=4, num_features=48)),
        seed=0)
    config = AutoHEnsGNNConfig(
        pool_size=2, ensemble_size=2, max_layers=2, search_epochs=10,
        bagging_splits=1, hidden=32, candidate_models=list(MICROBENCH_POOL),
        proxy=ProxyConfig(dataset_fraction=0.3, bagging_rounds=1,
                          hidden_fraction=0.5, max_epochs=10, seed=0),
        seed=0)
    config.train = TrainConfig(lr=0.02, max_epochs=30, patience=10, seed=0)
    start = _time.perf_counter()
    fitted = AutoHEnsGNN(config).fit(graph)
    return graph, fitted, _time.perf_counter() - start


def serve_latency_microbenchmark(requests: int = 20, prefit=None) -> Dict[str, float]:
    """Artifact cold-load time and per-request inference latency.

    The fit-once/serve-many numbers behind the estimator API: fits a small
    pipeline once (the paid-once AutoML cost), saves the fitted ensemble,
    clears the process-wide compute cache to simulate a fresh serving
    process, then measures the cold ``FittedEnsemble.load`` time, the first
    (cache-warming) request and the median steady-state per-request
    ``predict_proba`` latency through the inference fast path.  The
    ``serve_speedup`` ratio (fit seconds per request-second) is recorded in
    the runtime baseline; predictions are asserted bit-identical to the
    fit-time probabilities.
    """
    import tempfile
    import time as _time

    from repro.core.artifact import FittedEnsemble
    from repro.parallel.cache import ComputeCache, compute_cache, set_compute_cache

    graph, fitted, fit_seconds = prefit or _serving_workload()

    previous_cache = compute_cache()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            path = fitted.save(f"{tmp}/artifact")
            # A serving process starts with an empty compute cache: cold-load
            # and first-request numbers must include that warm-up, steady
            # state not.
            set_compute_cache(ComputeCache())
            start = _time.perf_counter()
            loaded = FittedEnsemble.load(path)
            load_seconds = _time.perf_counter() - start
            start = _time.perf_counter()
            probabilities = loaded.predict_proba(graph)
            first_request_seconds = _time.perf_counter() - start
            assert np.array_equal(probabilities, fitted.fit_report.probabilities), \
                "loaded artifact diverged from fit-time probabilities"
            latencies = []
            for _ in range(max(requests, 1)):
                start = _time.perf_counter()
                loaded.predict_proba(graph)
                latencies.append(_time.perf_counter() - start)
    finally:
        # The cache swap simulates a fresh serving process; the benchmarks
        # that run after this one must not inherit the emptied cache.
        set_compute_cache(previous_cache)
    request_seconds = float(np.median(latencies))
    return {
        "serve_fit_seconds": fit_seconds,
        "serve_artifact_load_seconds": load_seconds,
        "serve_first_request_seconds": first_request_seconds,
        "serve_request_seconds": request_seconds,
        "serve_speedup": fit_seconds / max(request_seconds, 1e-9),
    }


def streaming_serve_microbenchmark(requests: int = 240,
                                   queries_per_mutation: int = 4,
                                   rescore_samples: int = 5,
                                   prefit=None) -> Dict[str, float]:
    """Sustained streaming throughput under a steady mutation load.

    Drives a :class:`~repro.serve.StreamingScorer` through ``requests``
    queries with one graph mutation every ``queries_per_mutation`` requests —
    the serving pattern the engine exists for: a mutation stream slower than
    the query stream, so the microbatcher answers most requests by slicing
    the version's shared probability matrix and only the first query after a
    mutation pays the (incrementally refreshed) forward pass.  Reports the
    sustained requests per second and the p50/p99 per-request latency.  The
    comparator is the batch path on the *same* mutated graphs: a
    :class:`~repro.serve.BatchScorer` re-scoring a fresh snapshot per
    mutation, which pays the full operator and propagation rebuild each
    time.  ``streaming_speedup`` is the paired ratio of the batch re-score
    median to the streaming amortized per-request time on this machine, so
    it normalizes like the other paired gates and is checked by the
    regression gate.
    """
    import time as _time

    from repro.parallel.cache import ComputeCache, compute_cache, set_compute_cache
    from repro.serve import BatchScorer, StreamingScorer

    graph, fitted, _ = prefit or _serving_workload()
    rng = np.random.default_rng(0)
    previous_cache = compute_cache()
    try:
        # A serving process starts with an empty compute cache; the swap is
        # restored below so later benchmarks keep their warm entries.
        set_compute_cache(ComputeCache())
        scorer = StreamingScorer(fitted, graph)
        scorer.score()  # warm-up: seeds the cached A^k X chains and extras
        num_features = scorer.graph.num_features

        def mutate(step: int) -> None:
            if step % 3 == 0:
                node = int(rng.integers(scorer.graph.num_nodes))
                scorer.update_features(np.array([node]),
                                       rng.standard_normal((1, num_features)))
            elif step % 3 == 1:
                for _ in range(20):
                    source = int(rng.integers(scorer.graph.num_nodes))
                    destination = int(rng.integers(scorer.graph.num_nodes))
                    if source != destination \
                            and not scorer.graph.has_edge(source, destination):
                        scorer.add_edges(np.array([[source], [destination]]))
                        return
            else:
                scorer.add_nodes(rng.standard_normal((1, num_features)))

        interval = max(queries_per_mutation, 1)
        latencies = []
        sustained_start = _time.perf_counter()
        for step in range(max(requests, 1)):
            start = _time.perf_counter()
            if step % interval == 0:
                mutate(step // interval)
            scorer.score(np.array([step % scorer.graph.num_nodes]))
            latencies.append(_time.perf_counter() - start)
        sustained_seconds = _time.perf_counter() - sustained_start

        # Comparator: the pre-streaming serving story on the same mutation
        # stream — full batch re-score of a rebuilt snapshot per mutation.
        batch = BatchScorer(fitted)
        batch_latencies = []
        for step in range(max(rescore_samples, 1)):
            mutate(step)
            snapshot = scorer.graph.snapshot()
            start = _time.perf_counter()
            batch.score(snapshot)
            batch_latencies.append(_time.perf_counter() - start)
    finally:
        set_compute_cache(previous_cache)
    ordered = np.sort(np.asarray(latencies))
    p50 = float(np.percentile(ordered, 50))
    p99 = float(np.percentile(ordered, 99))
    amortized = sustained_seconds / max(len(latencies), 1)
    batch_seconds = float(np.median(batch_latencies))
    return {
        "streaming_requests_per_second": len(latencies) / max(sustained_seconds, 1e-9),
        "streaming_request_p50_seconds": p50,
        "streaming_request_p99_seconds": p99,
        "streaming_amortized_seconds": amortized,
        "streaming_batch_rescore_seconds": batch_seconds,
        "streaming_speedup": batch_seconds / max(amortized, 1e-9),
    }


def sharded_scaling_microbenchmark(partitions: Sequence[int] = (1, 2, 4),
                                   workers: Sequence[int] = (1, 2),
                                   requests: int = 5,
                                   prefit=None) -> Dict[str, float]:
    """Partition-parallel scoring over a partitions × workers grid.

    Scores the shared serving workload through ``BatchScorer`` at every
    partition count (serial shard execution, plus the thread backend at each
    worker count for multi-partition plans), asserting each configuration
    bit-identical to the unsharded reference before timing it.  Also records
    the halo-exchange overhead — the fraction of replicated (halo) rows each
    partition carries on top of its owned rows, which is exactly the extra
    propagation work sharding pays for bitwise parity.

    The headline baseline field is ``sharded_overhead``: the paired ratio of
    the largest serial sharded grid point to the unsharded score on the same
    machine and graph.  Like the other paired gates it normalizes runner
    speed away, so the CI regression gate can hold the cost of sharding
    (slicing + halo recompute) to a bounded multiple of a plain score.
    """
    import time as _time

    from repro.serve import BatchScorer

    graph, fitted, _ = prefit or _serving_workload()
    reference = fitted.predict_proba(graph)
    results: Dict[str, float] = {}
    for num_partitions in partitions:
        worker_grid = tuple(workers) if num_partitions > 1 else (1,)
        for num_workers in worker_grid:
            backend = "serial" if num_workers == 1 else "thread"
            scorer = BatchScorer(fitted, num_partitions=num_partitions,
                                 shard_backend=backend, max_workers=num_workers)
            try:
                warm = scorer.score(graph)
                assert np.array_equal(warm.probabilities, reference), \
                    (f"sharded scoring diverged at P={num_partitions} "
                     f"workers={num_workers}")
                latencies = []
                for _ in range(max(requests, 1)):
                    start = _time.perf_counter()
                    scorer.score(graph)
                    latencies.append(_time.perf_counter() - start)
            finally:
                scorer.close()
            key = f"sharded_p{num_partitions}_w{num_workers}_seconds"
            results[key] = float(np.median(latencies))
    # Halo-exchange overhead of the largest grid plan: replicated rows per
    # owned row (the extra memory traffic and propagation work per shard).
    from repro.graph.partition import partition_graph

    largest = max(partitions)
    if largest > 1:
        plan = partition_graph(graph, largest,
                               halo_hops=fitted.receptive_field(), seed=0)
        summary = plan.describe()
        halo = float(np.sum(summary["halo_sizes"]))
        owned = float(np.sum(summary["owned_sizes"]))
        results[f"sharded_halo_fraction_p{largest}"] = halo / max(owned, 1.0)
        results["sharded_edge_cut"] = float(summary["edge_cut"])
        baseline_key = "sharded_p1_w1_seconds"
        grid_key = f"sharded_p{largest}_w1_seconds"
        if baseline_key in results and grid_key in results:
            results["sharded_overhead"] = \
                results[grid_key] / max(results[baseline_key], 1e-9)
    return results


#: Relation counts swept by the heterogeneous runtime study.
HETERO_RELATION_COUNTS = (1, 4, 8)


def hetero_runtime_study(epochs: int = 10,
                         relation_counts: Sequence[int] = HETERO_RELATION_COUNTS
                         ) -> Dict[str, float]:
    """Relation-wise kernel cost: GCN/GAT vs RGCN/RGAT across R ∈ {1, 4, 8}.

    For each relation count, generates a typed SBM
    (:func:`~repro.datasets.generators.make_hetero_sbm`), trains the
    homogeneous GCN/GAT on its union adjacency and the relational
    RGCN/RGAT at matching capacity on the per-relation blocks, and records
    the per-epoch engine milliseconds of each.  The homogeneous rows see
    the same graph through the same :class:`HeteroGraphTensors` view, so
    every difference is the relation-wise dispatch itself: one fused
    ``spmm_bias_act`` per relation for RGCN, a gsddmm → segment-softmax →
    gspmm chain per relation for RGAT.

    The headline baseline field is ``hetero_relational_overhead``: the
    paired per-epoch ratio of RGCN to GCN at R=1, i.e. the cost of routing
    the degenerate single-relation case through the relational layer.
    Bit-parity guarantees that path computes the identical numbers
    (tests/test_hetero.py), and this ratio holds its dispatch overhead
    near the fused fast path; being a same-machine pairing it normalizes
    runner speed away like the other paired gates.
    """
    import time as _time

    from repro.datasets.generators import make_hetero_sbm
    from repro.nn.model_zoo import build_model
    from repro.tasks.trainer import NodeClassificationTrainer

    report: Dict[str, float] = {}
    for num_relations in relation_counts:
        graph = prepare_node_dataset(
            make_hetero_sbm(num_nodes=700, num_classes=4, num_features=48,
                            num_relations=num_relations, num_node_types=2,
                            seed=0), seed=0)
        data = GraphTensors.from_graph(graph)
        labels = graph.labels
        train_idx = graph.mask_indices("train")
        val_idx = graph.mask_indices("val")
        config = TrainConfig(lr=0.02, max_epochs=epochs, patience=epochs, seed=0)

        for name in ("gcn", "gat", "rgcn", "rgat"):
            overrides = {"num_relations": num_relations} \
                if name in ("rgcn", "rgat") else {}
            model = build_model(name, data.num_features, graph.num_classes,
                                hidden=32, seed=0, **overrides)
            # Warm the per-relation operator/block caches outside the timing.
            model.forward_inference(data)
            start = _time.perf_counter()
            NodeClassificationTrainer(config).train(
                model, data, labels, train_idx, val_idx)
            elapsed = _time.perf_counter() - start
            report[f"hetero_epoch_ms_{name}_r{num_relations}"] = \
                elapsed / max(epochs, 1) * 1000.0
    if "hetero_epoch_ms_rgcn_r1" in report:
        report["hetero_relational_overhead"] = (
            report["hetero_epoch_ms_rgcn_r1"]
            / max(report["hetero_epoch_ms_gcn_r1"], 1e-9))
    return report


def resilience_overhead_microbenchmark(rounds: int = 7,
                                       epochs: int = 5) -> Dict[str, float]:
    """Cost of the supervision machinery on the fault-free hot path.

    Runs the Table VI training pool through ``backend.map`` twice per
    round, back to back: once on the legacy path (no policy, no plan) and
    once through the supervised dispatch loop with a default
    :class:`~repro.resilience.ResiliencePolicy` *and* an inert
    :class:`~repro.resilience.FaultPlan` installed (a rule keyed to a site
    the backend never triggers, so every per-task hook runs but never
    fires).  Each task is one candidate's training on the benchmark-scale
    arxiv analogue — the real workload the backends dispatch — and the
    returned probabilities are asserted bit-identical: supervision must
    not perturb the numbers.  The **best paired ratio** is reported
    (scheduler interference only ever inflates one side of a pair, so the
    cleanest pair estimates the hooks' intrinsic cost — same best-of
    aggregation as :func:`runtime_microbenchmark`); the CI gate
    (``--check-resilience-overhead``) requires it under 2 %.
    """
    import time as _time

    from repro.datasets import make_arxiv_dataset
    from repro.nn.model_zoo import build_model
    from repro.parallel.backends import SerialBackend
    from repro.resilience import FaultPlan, FaultRule, ResiliencePolicy
    from repro.tasks.trainer import NodeClassificationTrainer

    graph = prepare_node_dataset(make_arxiv_dataset(scale=0.08, seed=0), seed=0)
    data = GraphTensors.from_graph(graph)
    labels = graph.labels
    train_idx = graph.mask_indices("train")
    val_idx = graph.mask_indices("val")
    config = TrainConfig(lr=0.02, max_epochs=epochs, patience=epochs, seed=0)

    def task(name: str) -> np.ndarray:
        model = build_model(name, data.num_features, graph.num_classes,
                            hidden=16, seed=0)
        NodeClassificationTrainer(config).train(
            model, data, labels, train_idx, val_idx)
        return model.predict_proba(data)

    items = list(TABLE6_POOL)
    backend = SerialBackend()
    policy = ResiliencePolicy()
    plan = FaultPlan([FaultRule(site="benchmark.inert", kind="exception")])
    # Warm-up pass: seeds the compute cache so the first pair is not skewed.
    reference = backend.map(task, items).results

    def run_plain() -> float:
        start = _time.perf_counter()
        report = backend.map(task, items)
        elapsed = _time.perf_counter() - start
        for expected, value in zip(reference, report.results):
            assert expected.tobytes() == value.tobytes()
        return elapsed

    def run_supervised() -> float:
        with plan.installed():
            start = _time.perf_counter()
            report = backend.map(task, items, policy=policy)
            elapsed = _time.perf_counter() - start
        assert report.failures == []
        for expected, value in zip(reference, report.results):
            assert expected.tobytes() == value.tobytes(), \
                "supervised dispatch perturbed a fault-free result"
        return elapsed

    # The within-pair order alternates so a monotone machine-load ramp
    # inflates half the ratios and deflates the other half instead of
    # biasing whichever side always runs second.  Best-of-N paired ratio,
    # like the best-of aggregation in runtime_microbenchmark: scheduler
    # interference only ever adds time to one side of a pair, so the
    # cleanest pair is the faithful estimate of the hooks' intrinsic cost,
    # while a real per-task regression shifts every pair and still trips
    # the gate.
    pairs = []
    for round_index in range(max(rounds, 1)):
        if round_index % 2 == 0:
            plain_seconds = run_plain()
            supervised_seconds = run_supervised()
        else:
            supervised_seconds = run_supervised()
            plain_seconds = run_plain()
        pairs.append((supervised_seconds / max(plain_seconds, 1e-12),
                      plain_seconds, supervised_seconds))
    pairs.sort()
    ratio, plain_seconds, supervised_seconds = pairs[0]
    return {
        "resilience_plain_seconds": plain_seconds,
        "resilience_supervised_seconds": supervised_seconds,
        "resilience_overhead_ratio": ratio,
    }


def check_resilience_overhead(max_overhead: float = 0.02,
                              rounds: int = 7) -> Dict[str, float]:
    """Fail (``SystemExit``) when supervision costs over ``max_overhead``.

    The ratio is a paired measurement on this machine (see
    :func:`resilience_overhead_microbenchmark`), so no checked-in baseline
    is needed — the gate is absolute: supervised fault-free dispatch may
    cost at most 2 % over the legacy path by default.
    """
    measured = resilience_overhead_microbenchmark(rounds=rounds)
    print("resilience overhead gate:", measured)
    limit = 1.0 + max_overhead
    if measured["resilience_overhead_ratio"] > limit:
        raise SystemExit(
            f"resilience hooks regressed the fault-free path: paired ratio "
            f"{measured['resilience_overhead_ratio']:.4f} > limit {limit:.4f}")
    return measured


def _calibration_seconds() -> float:
    """Machine-speed probe with the same profile as the training workload.

    The regression gate compares *normalized* workload time (workload /
    calibration), so a slower or faster CI runner shifts both numbers
    together and the checked-in baseline stays meaningful across machines.
    The probe deliberately mixes the things a training epoch spends time
    on — sparse matvecs, medium dense matmuls, NumPy elementwise
    temporaries, *and* CPython dispatch over many tiny array ops (the
    autograd engine's per-node overhead) — rather than one large
    multithreaded BLAS call whose scaling would transfer neither to the
    single-threaded serial trainer nor across interpreter versions.
    """
    import time as _time

    import scipy.sparse as _sp

    rng = np.random.default_rng(0)
    n, f = 700, 48
    dense = rng.normal(size=(n, f))
    weight = rng.normal(size=(f, f))
    tiny = rng.normal(size=(16, 8))
    operator = _sp.random(n, n, density=0.01, format="csr", random_state=0)
    start = _time.perf_counter()
    # Long enough (~100ms+) that shared-runner scheduler noise amortises.
    for _ in range(400):
        hidden = operator @ dense            # sparse matvecs
        hidden = hidden @ weight             # medium dense matmul
        hidden = np.maximum(hidden, 0.0)     # elementwise temporaries
        dense = hidden / (np.abs(hidden).max() + 1.0)
        for _ in range(20):                  # interpreter-dispatch overhead
            tiny = np.tanh(tiny * 0.9 + 0.1)  # bounded: values stay in (-1, 1)
    return _time.perf_counter() - start


def runtime_microbenchmark(repeats: int = 5) -> Dict[str, float]:
    """Fixed-seed serial training workload measured for the CI regression gate.

    Returns the best-of-``repeats`` wall clock, the calibration time and the
    normalized ratio the gate compares.  The workload is sized to a few
    hundred milliseconds so best-of-``repeats`` sits well above the
    scheduler-noise floor of shared CI runners.
    """
    import time as _time

    from repro.datasets.generators import SBMConfig, make_attributed_sbm
    from repro.parallel.cache import ComputeCache, set_compute_cache

    graph = prepare_node_dataset(
        make_attributed_sbm(SBMConfig(num_nodes=700, num_classes=4, num_features=48)),
        seed=0)
    config = TrainConfig(lr=0.02, max_epochs=50, patience=50, seed=0)
    # Calibration and workload are measured back-to-back inside each repeat
    # and the gate compares the best per-repeat *ratio*: a noisy-neighbour
    # burst that slows one repeat slows its calibration too, so the pairing
    # cancels machine-load drift that independent best-of measurements
    # would not.
    best = None
    for _ in range(max(repeats, 1)):
        set_compute_cache(ComputeCache())  # every repeat pays the same cache misses
        data = GraphTensors.from_graph(graph)
        calibration = _calibration_seconds()
        start = _time.perf_counter()
        train_single_models(list(MICROBENCH_POOL), data, graph.labels,
                            graph.mask_indices("train"), graph.mask_indices("val"),
                            num_classes=graph.num_classes, hidden=32,
                            train_config=config, replicas=1, seed=0)
        workload = _time.perf_counter() - start
        sample = {
            "workload_seconds": workload,
            "calibration_seconds": calibration,
            "normalized": workload / calibration,
        }
        if best is None or sample["normalized"] < best["normalized"]:
            best = sample
    return best


def emit_runtime_baseline(path: str, repeats: int = 5) -> Dict[str, float]:
    """Run the micro-benchmarks and write the baseline JSON artifact.

    Alongside the normalized serial wall clock, the baseline records the
    memory profile (peak RSS, per-epoch tracemalloc allocation peaks for
    both engines), the capture-replay speedup on the six-model Table VI
    workload, the per-pass IR study (replay throughput and fused-op counts
    under each pass configuration), the cross-member arena-sharing byte
    accounting, and the fit-once/serve-many profile (artifact cold-load
    time, per-request inference latency and the fit/request ratio), so
    memory and engine regressions gate like runtime ones.
    """
    import json
    import platform

    # Ordering matters for the in-process gated metrics: the regression
    # checker runs runtime_microbenchmark then memory_microbenchmark first
    # thing in a fresh process, so the baseline measures them in the same
    # regime (a warmed process runs the workload ~15-20 % faster relative
    # to the calibration loop, which would emit an unreachably tight
    # baseline).  The capture study spawns a fresh interpreter per sweep,
    # so its position here is immaterial.
    measured = runtime_microbenchmark(repeats=repeats)
    payload = dict(measured)
    payload.update(memory_microbenchmark())
    prefit = _serving_workload()
    payload.update(serve_latency_microbenchmark(prefit=prefit))
    payload.update(streaming_serve_microbenchmark(prefit=prefit))
    payload.update(sharded_scaling_microbenchmark(prefit=prefit))
    payload.update(hetero_runtime_study())
    payload.update(capture_speedup_study(repeats=7))
    engine = capture_engine_microbenchmark()
    payload["engine_speedup"] = engine["engine_speedup"]
    payload.update(ir_pass_study())
    payload.update(ensemble_arena_study())
    payload["pool"] = list(MICROBENCH_POOL)
    payload["python"] = platform.python_version()
    payload["numpy"] = np.__version__
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def check_runtime_regression(path: str, max_regression: float = 0.25,
                             repeats: int = 5,
                             max_memory_regression: float = 0.5) -> Dict[str, float]:
    """Fail (``SystemExit``) if the normalized workload regressed too much.

    ``max_regression=0.25`` tolerates a 25 % slowdown of workload-seconds
    per calibration-second relative to the checked-in baseline before
    failing, which absorbs runner noise while catching real engine
    regressions.  When the baseline carries memory fields, the per-epoch
    tracemalloc allocation peaks of both engines gate as well
    (``max_memory_regression`` headroom — allocation profiles are far less
    machine-sensitive than wall clock, but interpreter versions shift the
    small-object noise floor).
    """
    import json

    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    measured = runtime_microbenchmark(repeats=repeats)
    limit = baseline["normalized"] * (1.0 + max_regression)
    report = {
        "baseline_normalized": baseline["normalized"],
        "measured_normalized": measured["normalized"],
        "limit": limit,
        "workload_seconds": measured["workload_seconds"],
        "calibration_seconds": measured["calibration_seconds"],
    }
    print("runtime regression gate:", report)
    if measured["normalized"] > limit:
        raise SystemExit(
            f"serial runtime regressed: normalized {measured['normalized']:.3f} "
            f"> limit {limit:.3f} (baseline {baseline['normalized']:.3f} "
            f"+{max_regression:.0%})")

    memory_keys = ("epoch_alloc_peak_kb_dynamic", "epoch_alloc_peak_kb_capture")
    if all(key in baseline for key in memory_keys):
        memory = memory_microbenchmark()
        memory_report = {key: memory[key] for key in memory_keys}
        memory_report["peak_rss_mb"] = memory["peak_rss_mb"]
        print("memory regression gate:", memory_report)
        for key in memory_keys:
            memory_limit = baseline[key] * (1.0 + max_memory_regression)
            if memory[key] > memory_limit:
                raise SystemExit(
                    f"per-epoch allocations regressed: {key} {memory[key]:.1f} kB "
                    f"> limit {memory_limit:.1f} kB (baseline {baseline[key]:.1f} "
                    f"+{max_memory_regression:.0%})")
        report.update(memory_report)

    if "streaming_speedup" in baseline:
        # The streaming gate compares the *paired* streaming-vs-batch ratio
        # measured fresh on this machine, so runner speed cancels exactly
        # like the workload/calibration pairing above.
        streaming = streaming_serve_microbenchmark()
        required = baseline["streaming_speedup"] / (1.0 + max_regression)
        streaming_report = {
            "streaming_speedup": streaming["streaming_speedup"],
            "streaming_request_p50_seconds": streaming["streaming_request_p50_seconds"],
            "streaming_request_p99_seconds": streaming["streaming_request_p99_seconds"],
        }
        print("streaming regression gate:", streaming_report)
        if streaming["streaming_speedup"] < required:
            raise SystemExit(
                f"streaming serving regressed: speedup over the batch re-score "
                f"path {streaming['streaming_speedup']:.2f}x < required "
                f"{required:.2f}x (baseline {baseline['streaming_speedup']:.2f}x "
                f"-{max_regression:.0%})")
        report.update(streaming_report)

    if "sharded_overhead" in baseline:
        # Sharded gate: the paired sharded-vs-unsharded score ratio, measured
        # fresh (runner speed cancels).  Holds the cost of partition-parallel
        # scoring — view slicing plus halo recompute — near the baseline.
        sharded = sharded_scaling_microbenchmark()
        sharded_limit = baseline["sharded_overhead"] * (1.0 + max_regression)
        sharded_report = {
            "sharded_overhead": sharded["sharded_overhead"],
            "sharded_edge_cut": sharded["sharded_edge_cut"],
        }
        print("sharded regression gate:", sharded_report)
        if sharded["sharded_overhead"] > sharded_limit:
            raise SystemExit(
                f"sharded scoring regressed: overhead vs unsharded "
                f"{sharded['sharded_overhead']:.2f}x > limit "
                f"{sharded_limit:.2f}x (baseline "
                f"{baseline['sharded_overhead']:.2f}x +{max_regression:.0%})")
        report.update(sharded_report)

    if "hetero_relational_overhead" in baseline:
        # Hetero gate: the paired RGCN-vs-GCN per-epoch ratio at R=1 —
        # the dispatch cost of routing the degenerate single-relation case
        # through the relational layer instead of the fused fast path.
        # Paired on this machine, so runner speed cancels.
        # Best-of-3 pairing: scheduler interference only inflates one side
        # of a pair, so the cleanest round estimates the intrinsic ratio.
        hetero = min((hetero_runtime_study(relation_counts=(1,))
                      for _ in range(3)),
                     key=lambda study: study["hetero_relational_overhead"])
        hetero_limit = baseline["hetero_relational_overhead"] * (1.0 + max_regression)
        hetero_report = {
            "hetero_relational_overhead": hetero["hetero_relational_overhead"],
            "hetero_epoch_ms_rgcn_r1": hetero["hetero_epoch_ms_rgcn_r1"],
            "hetero_epoch_ms_gcn_r1": hetero["hetero_epoch_ms_gcn_r1"],
        }
        print("hetero regression gate:", hetero_report)
        if hetero["hetero_relational_overhead"] > hetero_limit:
            raise SystemExit(
                f"relational dispatch regressed: RGCN/GCN per-epoch ratio at "
                f"R=1 {hetero['hetero_relational_overhead']:.2f}x > limit "
                f"{hetero_limit:.2f}x (baseline "
                f"{baseline['hetero_relational_overhead']:.2f}x +{max_regression:.0%})")
        report.update(hetero_report)

    if "ensemble_arena_reuse_ratio" in baseline:
        # Arena gate: pooled-vs-private allocation is exact byte accounting
        # (no wall clock involved), so it gates tightly.  A drop in the
        # reuse ratio means ensemble members stopped sharing arena storage.
        arena = ensemble_arena_study()
        arena_required = baseline["ensemble_arena_reuse_ratio"] / (1.0 + max_regression)
        arena_report = {
            "ensemble_arena_reuse_ratio": arena["ensemble_arena_reuse_ratio"],
            "ensemble_arena_pooled_mb": arena["ensemble_arena_pooled_mb"],
            "ensemble_arena_unpooled_mb": arena["ensemble_arena_unpooled_mb"],
        }
        print("ensemble arena gate:", arena_report)
        if arena["ensemble_arena_reuse_ratio"] < arena_required:
            raise SystemExit(
                f"cross-member arena sharing regressed: reuse ratio "
                f"{arena['ensemble_arena_reuse_ratio']:.2f}x < required "
                f"{arena_required:.2f}x (baseline "
                f"{baseline['ensemble_arena_reuse_ratio']:.2f}x -{max_regression:.0%})")
        report.update(arena_report)
    return report


def _main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Benchmark harness utilities")
    parser.add_argument("--emit-baseline", metavar="PATH",
                        help="run the serial micro-benchmark and write the baseline JSON")
    parser.add_argument("--check-baseline", metavar="PATH",
                        help="run the micro-benchmark and fail on regression vs PATH")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional slowdown for --check-baseline")
    parser.add_argument("--repeats", type=int, default=5,
                        help="micro-benchmark repetitions (best-of)")
    parser.add_argument("--check-resilience-overhead", action="store_true",
                        help="fail if fault-free supervised dispatch costs "
                             "more than 2%% over the legacy map path")
    arguments = parser.parse_args()
    if arguments.emit_baseline:
        measured = emit_runtime_baseline(arguments.emit_baseline, repeats=arguments.repeats)
        print(f"baseline written to {arguments.emit_baseline}: {measured}")
    if arguments.check_baseline:
        check_runtime_regression(arguments.check_baseline,
                                 max_regression=arguments.max_regression,
                                 repeats=arguments.repeats)
    if arguments.check_resilience_overhead:
        check_resilience_overhead()
    if not arguments.emit_baseline and not arguments.check_baseline \
            and not arguments.check_resilience_overhead:
        parser.print_help()


if __name__ == "__main__":
    _main()
