"""Edge prediction with a hierarchical ensemble of GNN encoders (Table VIII scenario).

Link prediction on a citation-style graph: several encoder architectures are
wrapped as dot-product edge predictors, each is self-ensembled over a few
initialisation seeds, and the per-encoder predictions are combined with the
adaptive weight of Eqn 8.  The example prints the AUC of every single encoder
and of the ensemble.

Run with::

    python examples/edge_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import adaptive_beta
from repro.datasets import make_citation_dataset
from repro.nn import build_model
from repro.tasks import EdgePredictionTask, EdgePredictor
from repro.tasks.edge_prediction import EdgeTrainConfig
from repro.tasks.metrics import auc_score

ENCODERS = ("gcn", "sgc", "graphsage-mean")
MEMBERS_PER_ENCODER = 2


def main() -> None:
    graph = make_citation_dataset("cora", scale=0.6, seed=0)
    print(f"Graph: {graph}")
    task = EdgePredictionTask(graph, val_fraction=0.05, test_fraction=0.10, seed=0)

    test_pos = task.edge_splits["test_pos"]
    test_neg = task.edge_splits["test_neg"]
    test_edges = np.hstack([test_pos, test_neg])
    test_labels = np.concatenate([np.ones(test_pos.shape[1]), np.zeros(test_neg.shape[1])])

    encoder_probabilities = {}
    encoder_val_auc = {}
    for encoder_name in ENCODERS:
        member_probas = []
        member_val = []
        for member in range(MEMBERS_PER_ENCODER):
            encoder = build_model(encoder_name, graph.num_features, 16, hidden=32,
                                  dropout=0.0, seed=11 * member)
            predictor = EdgePredictor(encoder)
            outcome = task.train(predictor,
                                 EdgeTrainConfig(lr=0.05, max_epochs=80, patience=25))
            member_probas.append(task.score_edges_proba(predictor, test_edges))
            member_val.append(outcome["val_auc"])
        encoder_probabilities[encoder_name] = np.mean(member_probas, axis=0)
        encoder_val_auc[encoder_name] = float(np.mean(member_val))
        test_auc = auc_score(encoder_probabilities[encoder_name], test_labels)
        print(f"{encoder_name:>16s}: val AUC {encoder_val_auc[encoder_name]:.3f}, "
              f"test AUC {test_auc:.3f}")

    beta = adaptive_beta([encoder_val_auc[name] for name in ENCODERS],
                         graph.num_edges, graph.num_nodes)
    stacked = np.stack([encoder_probabilities[name] for name in ENCODERS], axis=0)
    ensemble_auc = auc_score((stacked * beta[:, None]).sum(axis=0), test_labels)
    print(f"\nAdaptive ensemble weights beta: {np.round(beta, 3)}")
    print(f"Hierarchical ensemble test AUC : {ensemble_auc:.3f}")


if __name__ == "__main__":
    main()
