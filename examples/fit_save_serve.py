"""Fit once, serve many: the estimator lifecycle end to end.

The paper's pipeline ends at one transductive prediction; production serving
needs the opposite shape — pay the AutoML cost once, persist the fitted
hierarchical ensemble, and answer many cheap inference requests against it.
This example walks the whole lifecycle:

1. ``AutoHEnsGNN.fit(graph)`` — proxy evaluation, configuration search and
   bagged re-training (the expensive part, run once),
2. ``fitted.save(path)`` — persist a versioned artifact (JSON manifest +
   npz weight blobs),
3. ``FittedEnsemble.load(path)`` — cold-start a "serving process",
4. ``BatchScorer.score`` — per-request inference through the raw-ndarray
   fast path, including a *refreshed* graph with new nodes and edges but the
   same feature schema.

Run with::

    python examples/fit_save_serve.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import AutoHEnsGNN, AutoHEnsGNNConfig, FittedEnsemble, load_dataset
from repro.core.config import ProxyConfig
from repro.serve import BatchScorer
from repro.tasks.trainer import TrainConfig


def main() -> None:
    graph = load_dataset("kddcup-A", scale=0.3, seed=0)
    print(f"Dataset: {graph}")

    config = AutoHEnsGNNConfig(
        pool_size=2,
        ensemble_size=2,
        max_layers=3,
        search_epochs=15,
        bagging_splits=1,
        hidden=32,
        candidate_models=["gcn", "gat", "sgc", "appnp", "mlp"],
        proxy=ProxyConfig(dataset_fraction=0.3, bagging_rounds=2, hidden_fraction=0.5,
                          max_epochs=20),
        seed=0,
    )
    config.train = TrainConfig(lr=0.02, max_epochs=40, patience=10)

    # ------------------------------------------------------------------
    # 1. Fit once (the expensive AutoML run).
    # ------------------------------------------------------------------
    fit_start = time.perf_counter()
    fitted = AutoHEnsGNN(config).fit(graph)
    fit_seconds = time.perf_counter() - fit_start
    print(f"\nFitted in {fit_seconds:.1f}s: pool={fitted.pool}, "
          f"beta={np.round(fitted.beta, 3)}, members={fitted.num_members}")

    with tempfile.TemporaryDirectory() as tmp:
        # --------------------------------------------------------------
        # 2. Persist the ensemble.
        # --------------------------------------------------------------
        artifact = fitted.save(f"{tmp}/kddcup-A")
        print(f"Artifact saved to {artifact}")

        # --------------------------------------------------------------
        # 3. Cold-start a serving process (fresh load from disk).
        # --------------------------------------------------------------
        scorer = BatchScorer(artifact)
        print(f"Artifact loaded in {scorer.load_seconds:.3f}s")

        # --------------------------------------------------------------
        # 4. Serve requests: the original graph...
        # --------------------------------------------------------------
        result = scorer.score(graph, nodes=graph.mask_indices("test"))
        hidden_labels = np.asarray(graph.metadata["hidden_labels"])
        accuracy = float(np.mean(result.predictions == hidden_labels[result.nodes]))
        print(f"\nRequest 1 (training graph): {result.predictions.shape[0]} test "
              f"nodes in {result.latency_seconds:.3f}s, accuracy {accuracy:.3f}")

        # ... and a refreshed graph (new nodes/edges, same feature schema) —
        # the scenario where an artifact saves re-running the pipeline.
        refreshed = load_dataset("kddcup-A", scale=0.35, seed=1)
        result = scorer.score(refreshed)
        print(f"Request 2 (refreshed graph, {refreshed.num_nodes} nodes): "
              f"scored in {result.latency_seconds:.3f}s")

        # Loaded artifacts reproduce fit-time probabilities bit-for-bit.
        reloaded = FittedEnsemble.load(artifact)
        identical = np.array_equal(reloaded.predict_proba(graph),
                                   fitted.fit_report.probabilities)
        print(f"\nLoaded artifact reproduces fit-time probabilities: {identical}")
        per_request = result.latency_seconds
        print(f"Fit {fit_seconds:.1f}s once -> serve at {per_request * 1000:.0f}ms "
              f"per request ({fit_seconds / max(per_request, 1e-9):.0f}x cheaper)")


if __name__ == "__main__":
    main()
