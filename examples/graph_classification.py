"""Graph classification with hierarchical ensembles (Table IX scenario).

Classifies small protein-like graphs: node-level backbones from the model zoo
are lifted to graph level with mean+max readout, self-ensembled over seeds
and combined with accuracy-adaptive weights.

Run with::

    python examples/graph_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.core import adaptive_beta
from repro.datasets import make_proteins_dataset
from repro.nn import build_model
from repro.tasks import GraphClassificationTask, GraphLevelModel
from repro.tasks.graph_classification import GraphTrainConfig
from repro.tasks.metrics import accuracy

BACKBONES = ("gin", "gcn", "graphsage-mean")
MEMBERS_PER_BACKBONE = 2


def main() -> None:
    dataset = make_proteins_dataset(num_graphs=150, seed=0)
    task = GraphClassificationTask(dataset)
    print(f"PROTEINS analogue: {len(dataset)} graphs, "
          f"{len(dataset.train_index)}/{len(dataset.val_index)}/{len(dataset.test_index)} "
          "train/val/test")

    test_labels = task.labels("test")
    backbone_probabilities = {}
    backbone_val = {}
    for backbone_name in BACKBONES:
        member_probas = []
        member_val = []
        for member in range(MEMBERS_PER_BACKBONE):
            backbone = build_model(backbone_name, task.num_features, task.num_classes,
                                   hidden=32, dropout=0.1, seed=7 * member)
            model = GraphLevelModel(backbone, task.num_classes)
            outcome = task.train(model, GraphTrainConfig(lr=0.01, max_epochs=80, patience=20))
            member_probas.append(task.predict_proba(model, "test"))
            member_val.append(outcome["val_accuracy"])
        backbone_probabilities[backbone_name] = np.mean(member_probas, axis=0)
        backbone_val[backbone_name] = float(np.mean(member_val))
        test_accuracy = accuracy(backbone_probabilities[backbone_name], test_labels)
        print(f"{backbone_name:>16s}: val acc {backbone_val[backbone_name]:.3f}, "
              f"test acc {test_accuracy:.3f}")

    total_edges = sum(graph.num_edges for graph in dataset.graphs)
    total_nodes = sum(graph.num_nodes for graph in dataset.graphs)
    beta = adaptive_beta([backbone_val[name] for name in BACKBONES], total_edges, total_nodes)
    stacked = np.stack([backbone_probabilities[name] for name in BACKBONES], axis=0)
    ensemble_accuracy = accuracy((stacked * beta[:, None, None]).sum(axis=0), test_labels)
    print(f"\nAdaptive ensemble weights beta : {np.round(beta, 3)}")
    print(f"Hierarchical ensemble test acc : {ensemble_accuracy:.3f}")


if __name__ == "__main__":
    main()
