"""Quickstart for heterogeneous graphs: typed construction to served scores.

Builds a multi-relation typed graph, runs the full AutoHEnsGNN pipeline
with the relational candidates (RGCN/RGAT), saves the fitted ensemble and
re-scores it through :class:`~repro.serve.BatchScorer` — the same
fit → save → serve lifecycle as the homogeneous quickstart, with zero
hetero-specific control flow anywhere in the pipeline.

Run with::

    python examples/hetero_quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import AutoHEnsGNN, AutoHEnsGNNConfig, load_dataset
from repro.core.config import ProxyConfig
from repro.graph.hetero import HeteroGraph
from repro.graph.splits import holdout_test_split, random_split
from repro.serve import BatchScorer
from repro.tasks.trainer import TrainConfig


def typed_construction_demo() -> HeteroGraph:
    """Build a small typed graph by hand via :meth:`HeteroGraph.from_typed`."""
    rng = np.random.default_rng(0)
    features = {
        "user": rng.normal(size=(40, 8)),
        "item": rng.normal(size=(25, 8)),
    }
    edges = {
        ("user", "buys", "item"):
            rng.integers([[40], [25]], size=(2, 120)) % [[40], [25]],
        ("user", "follows", "user"):
            rng.integers(40, size=(2, 60)),
    }
    graph = HeteroGraph.from_typed(
        features, edges, labels={"user": rng.integers(3, size=40)},
        name="toy-commerce")
    print(f"Hand-built graph: {graph.num_nodes} nodes "
          f"({', '.join(graph.node_type_names)}), "
          f"relations: {', '.join(graph.relation_names)}")
    return graph


def main() -> None:
    typed_construction_demo()

    # The typed SBM analogue: 4 canonical relations over 2 node types.
    graph = load_dataset("sbm-hetero", num_nodes=300, num_classes=4,
                         num_features=16, num_relations=4, num_node_types=2,
                         seed=0)
    graph = holdout_test_split(graph, test_fraction=0.25, seed=0)
    graph = random_split(graph, seed=0,
                         labelled_pool=graph.metadata["labelled_pool"])
    print(f"\nDataset: {graph.name}, {graph.num_nodes} nodes, "
          f"{graph.num_relations} relations")

    config = AutoHEnsGNNConfig(
        pool_size=2,
        ensemble_size=2,
        max_layers=2,
        search_epochs=8,
        bagging_splits=1,
        hidden=32,
        candidate_models=["rgcn", "rgcn-basis", "rgat"],
        proxy=ProxyConfig(dataset_fraction=0.5, bagging_rounds=1,
                          hidden_fraction=0.5, max_epochs=8),
        seed=0,
    )
    config.train = TrainConfig(lr=0.02, max_epochs=25, patience=10)

    fitted = AutoHEnsGNN(config).fit(graph)
    probabilities = fitted.predict_proba(graph)
    test_idx = graph.mask_indices("test")
    accuracy = float(
        (probabilities[test_idx].argmax(axis=1) == graph.labels[test_idx]).mean())
    print(f"Pool: {fitted.fit_report.pool}")
    print(f"Test accuracy: {accuracy:.3f}")

    # Save and re-score through the serving path: same artifact format,
    # same BatchScorer, bit-identical probabilities.
    with tempfile.TemporaryDirectory() as tmp:
        path = fitted.save(f"{tmp}/hetero-ensemble")
        result = BatchScorer(path).score(graph)
        assert np.array_equal(result.probabilities, probabilities), \
            "served scores diverged from fit-time probabilities"
    print("Artifact round-trip: served scores bit-identical to fit-time scores")


if __name__ == "__main__":
    main()
