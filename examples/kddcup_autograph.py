"""Competition-style run: AutoGraph dataset directories in, predictions out.

This mirrors how the winning solution was actually used in the KDD Cup:
datasets arrive as directories in the challenge on-disk format (Table X of
the paper) with a per-dataset time budget, and the solution must produce one
predicted class per test node with no human in the loop.

The example writes two synthetic datasets to a temporary directory in the
challenge format, runs :class:`repro.automl.AutoGraphRunner` over them, and
scores the submissions against the held-back labels.

Run with::

    python examples/kddcup_autograph.py
"""

from __future__ import annotations

import os
import tempfile

from repro.automl import AutoGraphRunner
from repro.datasets import load_dataset, save_autograph_directory
from repro.tasks.metrics import average_rank_score


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="autograph-")
    dataset_names = ["kddcup-A", "kddcup-E"]
    hidden_labels = {}

    print(f"Writing challenge-format datasets under {workdir}")
    for name in dataset_names:
        graph = load_dataset(name, scale=0.35, seed=0)
        hidden_labels[name] = graph.metadata["hidden_labels"]
        directory = os.path.join(workdir, name)
        save_autograph_directory(graph, directory, time_budget=600.0)

    runner = AutoGraphRunner(candidate_models=["gcn", "gat", "sgc", "tagcn", "mlp"], seed=0)
    scores = {}
    for name in dataset_names:
        directory = os.path.join(workdir, name)
        output_path = os.path.join(workdir, f"{name}-predictions.tsv")
        submission = runner.run_directory(directory, output_path=output_path)
        accuracy = submission.accuracy_against(hidden_labels[name])
        scores[name] = accuracy
        print(f"\nDataset {name}:")
        print(f"  selected pool : {submission.result.pool}")
        print(f"  elapsed       : {submission.elapsed:.1f}s "
              f"(within budget: {submission.within_budget})")
        print(f"  predictions   : {output_path}")
        print(f"  test accuracy : {accuracy:.3f}")

    # The challenge metric averages the solution's rank across datasets; with a
    # single solution per dataset this is trivially 1.0 but the call shows how
    # the leaderboard of Table VII is computed.
    leaderboard = average_rank_score({name: {"ours": score} for name, score in scores.items()})
    print(f"\nAverage rank score (ours only): {leaderboard['ours']:.1f}")


if __name__ == "__main__":
    main()
