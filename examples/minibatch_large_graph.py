"""End-to-end minibatch AutoHEnsGNN on a 200k-node synthetic graph.

Full-batch training materialises activations for every node of the graph on
every epoch, which caps the graph sizes the pipeline can touch.  This
example runs the *same* automated pipeline — proxy evaluation, adaptive
configuration search, bagged re-training — in the minibatch regime: setting
``batch_size`` (plus optional ``fanouts``) on ``AutoHEnsGNNConfig`` switches
every training stage to GraphSAGE-style neighbour-sampled steps whose memory
footprint is bounded by the sampled sub-graph, while prediction and
validation still run full-graph through the inference fast path.

The configuration below is deliberately lean (two candidates, one replica,
a handful of epochs) so the whole run finishes in well under two minutes on
a laptop CPU; scale ``ensemble_size`` / epochs up for accuracy.

Run with:

    PYTHONPATH=src python examples/minibatch_large_graph.py
"""

import time

import numpy as np

from repro import AutoHEnsGNN, AutoHEnsGNNConfig, load_dataset
from repro.graph.splits import holdout_test_split


def main() -> None:
    start = time.time()
    # The "sbm-large" registry entry generates a 200k-node / ~800k-edge
    # attributed SBM in a few seconds (pass num_nodes=... to scale it).
    graph = load_dataset("sbm-large", seed=1)
    graph = holdout_test_split(graph, test_fraction=0.2, seed=0)
    # Like the challenge datasets, only a fraction of nodes carries a
    # training label: restrict the labelled pool to 30k nodes.  Training
    # cost scales with the seed count, so this also keeps the demo fast —
    # prediction still covers all 200k nodes.
    rng = np.random.default_rng(0)
    pool = graph.metadata["labelled_pool"]
    graph.metadata["labelled_pool"] = np.sort(rng.choice(pool, size=30_000,
                                                         replace=False))
    print(f"dataset: {graph.name} — {graph.num_nodes:,} nodes, "
          f"{graph.num_edges:,} stored edges, {graph.num_classes} classes, "
          f"30k labelled ({time.time() - start:.1f}s to generate)")

    config = AutoHEnsGNNConfig(
        candidate_models=["graphsage-mean", "gcn"],
        pool_size=2,
        ensemble_size=1,
        max_layers=2,
        # The minibatch engine: 4096 seed nodes per optimiser step, at most
        # 5 sampled neighbours on the first hop and 3 on the second.
        batch_size=4096,
        fanouts=(5, 3),
        search_epochs=2,
        bagging_splits=1,
        hidden=64,
        seed=0,
    )
    config.train = config.train.with_overrides(max_epochs=2, patience=2)
    # Proxy evaluation ranks candidates on a 5% stratified sub-graph (~10k
    # nodes) and inherits the pipeline's batch_size, so even candidate
    # ranking never takes a full-batch step.
    config.proxy.dataset_fraction = 0.05
    config.proxy.bagging_rounds = 1
    config.proxy.max_epochs = 3

    fit_start = time.time()
    result = AutoHEnsGNN(config).fit_predict(graph)
    fit_time = time.time() - fit_start

    accuracy = result.test_accuracy(graph.labels, graph.mask_indices("test"))
    print(f"pool (proxy-ranked): {result.pool}")
    print(f"chosen depths:       {result.chosen_layers}")
    print(f"ensemble weights β:  {[round(float(b), 3) for b in result.beta]}")
    print(f"stage times:         proxy {result.proxy_time:.1f}s, "
          f"search {result.search_time:.1f}s, train {result.train_time:.1f}s")
    print(f"test accuracy:       {accuracy:.3f}")
    print(f"total fit_predict:   {fit_time:.1f}s")


if __name__ == "__main__":
    main()
