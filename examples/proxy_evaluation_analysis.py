"""Proxy-evaluation analysis (the Figure 3 workflow as a standalone script).

Shows how the proxy task trades ranking fidelity (Kendall tau against the
accurate evaluation) for speed as the proxy dataset fraction shrinks, and
prints the model pool the proxy evaluation would select.

Run with::

    python examples/proxy_evaluation_analysis.py
"""

from __future__ import annotations

from repro.core import ProxyEvaluator, select_top_models
from repro.core.config import ProxyConfig
from repro.datasets import make_citation_dataset

CANDIDATES = ["gcn", "gat", "sgc", "tagcn", "appnp", "graphsage-mean", "mlp", "gin"]


def main() -> None:
    graph = make_citation_dataset("cora", scale=0.6, seed=0)
    print(f"Graph: {graph}")
    evaluator = ProxyEvaluator(ProxyConfig(max_epochs=40, patience=10), candidates=CANDIDATES)

    print("\nAccurate evaluation (full data, full width, 3 bags)...")
    accurate = evaluator.evaluate_with(graph, dataset_fraction=1.0, hidden_fraction=1.0,
                                       bagging_rounds=3, seed=0)
    for score in sorted(accurate.scores, key=lambda s: -s.mean_accuracy):
        print(f"  {score.name:>16s}: {score.mean_accuracy:.3f} ± {score.std_accuracy:.3f}")

    print("\nProxy evaluation at different dataset fractions:")
    print(f"{'D_proxy':>8s} {'Kendall tau':>12s} {'speed-up':>9s} {'selected pool'}")
    for fraction in (0.1, 0.3, 0.6):
        report = evaluator.evaluate_with(graph, dataset_fraction=fraction,
                                         hidden_fraction=0.5, bagging_rounds=2, seed=0)
        tau = report.kendall_tau_against(accurate)
        speedup = accurate.total_time / report.total_time
        pool = select_top_models(report, 3)
        print(f"{fraction:>7.0%} {tau:>12.3f} {speedup:>8.1f}x {pool}")


if __name__ == "__main__":
    main()
