"""Quickstart: run the full AutoHEnsGNN pipeline on one dataset.

The pipeline is entirely automatic: given a graph whose test labels are
hidden, it ranks the candidate model zoo with proxy evaluation, selects a
pool, searches the hierarchical-ensemble configuration and re-trains the
final ensemble — no human decisions anywhere.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoHEnsGNN, AutoHEnsGNNConfig, SearchMethod, load_dataset
from repro.core.config import ProxyConfig
from repro.tasks.trainer import TrainConfig


def main() -> None:
    # A scaled-down analogue of KDD Cup dataset A (test labels hidden, exactly
    # like the challenge hands it to a submission).
    graph = load_dataset("kddcup-A", scale=0.4, seed=0)
    print(f"Dataset: {graph}")
    print(f"Labelled nodes: {len(graph.labeled_nodes())}, "
          f"hidden test nodes: {int(graph.test_mask.sum())}")

    config = AutoHEnsGNNConfig(
        pool_size=2,
        ensemble_size=2,
        max_layers=3,
        search_method=SearchMethod.ADAPTIVE,
        search_epochs=20,
        bagging_splits=1,
        hidden=32,
        candidate_models=["gcn", "gat", "tagcn", "sgc", "appnp", "mlp"],
        proxy=ProxyConfig(dataset_fraction=0.3, bagging_rounds=2, hidden_fraction=0.5,
                          max_epochs=30),
        seed=0,
    )
    config.train = TrainConfig(lr=0.02, max_epochs=60, patience=15)

    pipeline = AutoHEnsGNN(config)
    result = pipeline.fit_predict(graph)

    print("\n--- pipeline decisions -------------------------------------------")
    print(f"Proxy ranking          : {result.proxy_ranking}")
    print(f"Selected pool          : {result.pool}")
    print(f"Chosen layers per model: {result.chosen_layers}")
    print(f"Ensemble weights beta  : {np.round(result.beta, 3)}")
    print(f"Stage times (s)        : proxy={result.proxy_time:.1f} "
          f"search={result.search_time:.1f} train={result.train_time:.1f}")

    # The challenge would score the hidden labels; our generator kept them.
    hidden_labels = graph.metadata["hidden_labels"]
    accuracy = result.test_accuracy(hidden_labels, graph.mask_indices("test"))
    print("\n--- result ---------------------------------------------------------")
    print(f"Test accuracy on hidden labels: {accuracy:.3f}")


if __name__ == "__main__":
    main()
