"""Partitioned (sharded) training and serving on one machine.

Graphs that outgrow a worker's working set are split by
``repro.graph.partition`` into ``P`` disjoint *owned* node blocks plus halo
rings — the k-hop fringe each shard needs read-only so k-hop propagation at
the owned nodes is exact.  Scoring then runs partition-parallel and stays
**bit-for-bit identical** to the serial pass.  This example walks the whole
surface on a mid-sized synthetic graph:

1. partition the graph and inspect the plan (balance, halo overhead, cut),
2. fit with ``shared_graph=True`` — process workers map the graph tensors
   from shared memory instead of unpickling a copy per task,
3. serve sharded via ``BatchScorer(num_partitions=...)`` and verify the
   scores equal the unsharded reference bitwise,
4. survive a lost shard: a crashed partition worker retries and the
   result does not change by one bit.

Run with::

    python examples/sharded_graph.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoHEnsGNN, AutoHEnsGNNConfig
from repro.core.config import ProxyConfig
from repro.datasets.generators import make_large_sbm
from repro.graph.partition import partition_graph
from repro.graph.splits import random_split
from repro.resilience import FaultPlan, FaultRule, ResiliencePolicy
from repro.serve import BatchScorer
from repro.tasks.trainer import TrainConfig


def main() -> None:
    graph = make_large_sbm(num_nodes=4_000, num_classes=5, num_features=24,
                           average_degree=8.0, seed=0, name="sbm-sharded")
    graph = random_split(graph, val_fraction=0.2, seed=0)
    print(f"Dataset: {graph}")

    # ------------------------------------------------------------------
    # 1. Partition the raw adjacency: owned blocks + halo rings.
    # ------------------------------------------------------------------
    plan = partition_graph(graph, num_partitions=4, halo_hops=2, seed=0)
    summary = plan.describe()
    print(f"\nPartition plan: {summary['num_partitions']} shards, "
          f"owned sizes {summary['owned_sizes']}, "
          f"halo sizes {summary['halo_sizes']}, "
          f"edge cut {summary['edge_cut']:.2%}")

    # ------------------------------------------------------------------
    # 2. Fit with shared-memory graph publication for process workers.
    # ------------------------------------------------------------------
    config = AutoHEnsGNNConfig(
        pool_size=2, ensemble_size=2, max_layers=2, search_epochs=6,
        bagging_splits=1, hidden=24, candidate_models=["gcn", "sgc"],
        proxy=ProxyConfig(dataset_fraction=0.4, bagging_rounds=1,
                          hidden_fraction=0.5, max_epochs=6),
        backend="process", max_workers=2, shared_graph=True, seed=0)
    config.train = TrainConfig(lr=0.02, max_epochs=10, patience=5)
    fitted = AutoHEnsGNN(config).fit(graph, pool=["gcn", "sgc"])
    print(f"\nFitted: pool={fitted.pool}, members={fitted.num_members}, "
          f"receptive field={fitted.receptive_field()} hops")

    # ------------------------------------------------------------------
    # 3. Sharded serving: bitwise-identical to the serial pass.
    # ------------------------------------------------------------------
    reference = fitted.predict_proba(graph)
    with BatchScorer(fitted, num_partitions=4, shard_backend="thread",
                     max_workers=2) as scorer:
        result = scorer.score(graph)
    identical = np.array_equal(result.probabilities, reference)
    print(f"\nSharded scoring: {result.metadata['sharding']}")
    print(f"bit-identical to serial: {identical}")
    assert identical

    # ------------------------------------------------------------------
    # 4. Lose a shard worker mid-request; the retry changes nothing.
    # ------------------------------------------------------------------
    crash_once = FaultPlan([FaultRule(site="backend.task", kind="crash",
                                      indices=(1,), attempts=(0,))])
    with BatchScorer(fitted, num_partitions=4,
                     resilience=ResiliencePolicy(max_retries=2,
                                                 backoff_seconds=0.0)) as scorer:
        with crash_once.installed():
            recovered = scorer.score(graph)
    print(f"\nAfter one injected shard crash: bit-identical="
          f"{np.array_equal(recovered.probabilities, reference)} "
          f"(fault fired {crash_once.fires(crash_once.rules[0])}x)")
    assert np.array_equal(recovered.probabilities, reference)
    print("\nDone: partitioned execution is an implementation detail — "
          "same bits, bounded per-worker footprint.")


if __name__ == "__main__":
    main()
