"""Streaming serving: a long-lived scorer absorbing live graph updates.

``examples/fit_save_serve.py`` ends with a :class:`~repro.serve.BatchScorer`
rebuilding every propagation operator per request.  This example shows the
streaming half of the serving story: one
:class:`~repro.serve.StreamingScorer` wraps the fitted ensemble and a
mutable graph, absorbs a stream of incremental mutations (new nodes, new
edges, removed edges, feature updates) and answers per-node queries whose
scores stay **bit-identical** to a from-scratch batch rebuild of the mutated
graph — while only touched rows of the normalised operators and cached
``A^k X`` products are recomputed.

Run with::

    python examples/streaming_serve.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AutoHEnsGNN, AutoHEnsGNNConfig, load_dataset
from repro.core.config import ProxyConfig
from repro.serve import BatchScorer, StreamingScorer
from repro.tasks.trainer import TrainConfig


def main() -> None:
    graph = load_dataset("kddcup-A", scale=0.25, seed=0)
    print(f"Dataset: {graph}")

    config = AutoHEnsGNNConfig(
        pool_size=3, ensemble_size=2, max_layers=2, search_epochs=8,
        bagging_splits=1, hidden=24,
        candidate_models=["gcn", "sgc", "sign"],
        proxy=ProxyConfig(dataset_fraction=0.4, bagging_rounds=1,
                          hidden_fraction=0.5, max_epochs=8),
        seed=0)
    config.train = TrainConfig(lr=0.02, max_epochs=20, patience=8)

    # ------------------------------------------------------------------
    # 1. Fit once, then stand up the long-lived streaming scorer.
    # ------------------------------------------------------------------
    fitted = AutoHEnsGNN(config).fit(graph)
    scorer = StreamingScorer(fitted, graph)
    first = scorer.score(np.array([0, 1, 2]))
    print(f"\nInitial query (version {first.metadata['graph_version']}): "
          f"predictions {first.predictions.tolist()} "
          f"in {first.latency_seconds * 1000:.2f}ms")

    # ------------------------------------------------------------------
    # 2. Stream mutations and queries: mutations journal cheaply, the next
    #    query flushes them and refreshes only the touched state.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    num_features = scorer.graph.num_features
    new_nodes = scorer.add_nodes(rng.standard_normal((2, num_features)))
    print(f"\nAdded nodes {new_nodes.tolist()}")
    for node in new_nodes:
        neighbor = int(rng.integers(graph.num_nodes))
        scorer.add_edges(np.array([[int(node)], [neighbor]]),
                         edge_weight=np.array([1.5]))
        print(f"Connected node {int(node)} -> {neighbor}")
    scorer.update_features(np.array([3]), rng.standard_normal((1, num_features)))

    start = time.perf_counter()
    result = scorer.score(new_nodes)
    print(f"Scored the new nodes (version {result.metadata['graph_version']}) "
          f"in {(time.perf_counter() - start) * 1000:.2f}ms: "
          f"predictions {result.predictions.tolist()}")

    # Repeat queries against an unchanged graph coalesce onto the shared
    # probability matrix: no second forward pass.
    scorer.score(np.array([5]))
    batcher = scorer.batcher.stats()
    print(f"Microbatcher: {batcher['requests']} requests -> "
          f"{batcher['forward_passes']} forward passes "
          f"({batcher['coalesced']} coalesced)")

    # ------------------------------------------------------------------
    # 3. The consistency guarantee: bit-identical to a batch rebuild.
    # ------------------------------------------------------------------
    snapshot = scorer.graph.snapshot()
    reference = BatchScorer(fitted).score(snapshot)
    streaming = scorer.score()
    identical = streaming.probabilities.tobytes() == reference.probabilities.tobytes()
    print(f"\nStreaming scores == from-scratch batch rebuild, bitwise: {identical}")
    if not identical:
        raise SystemExit("streaming scores diverged from the batch rebuild")

    stats = scorer.describe()["streaming"]
    print(f"Streaming counters: {stats}")


if __name__ == "__main__":
    main()
