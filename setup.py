"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that ``pip install -e .``
works in fully offline environments where the ``wheel`` package (required by
PEP 660 editable builds) is unavailable: pip then falls back to the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
