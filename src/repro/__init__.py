"""AutoHEnsGNN reproduction — automated hierarchical ensembles of GNNs.

This package reproduces "AutoHEnsGNN: Winning Solution to AutoGraph Challenge
for KDD Cup 2020" (ICDE 2022) as a self-contained Python library: a NumPy
autograd engine and GNN model zoo stand in for PyTorch/PyG, synthetic
attributed-SBM datasets stand in for the proprietary challenge data, and the
paper's contribution — proxy evaluation, graph self-ensemble, hierarchical
ensembling and the two configuration-search algorithms — is implemented in
:mod:`repro.core`.

Quickstart
----------
>>> from repro import AutoHEnsGNN, AutoHEnsGNNConfig, load_dataset
>>> graph = load_dataset("kddcup-A", scale=0.3)
>>> pipeline = AutoHEnsGNN(AutoHEnsGNNConfig(pool_size=2, ensemble_size=2))
>>> fitted = pipeline.fit(graph)           # pay the AutoML cost once
>>> fitted.predict(graph).shape            # cheap inference, many times
(graph.num_nodes,)
>>> fitted.save("artifacts/kddcup-A")      # persist for a serving process
>>> # later / elsewhere: FittedEnsemble.load(...) or `python -m repro.serve`

The one-shot ``pipeline.fit_predict(graph)`` of the paper remains available
as a thin wrapper over ``fit`` (bit-identical at fixed seeds).
"""

from repro.autograd.dtype import (
    compute_dtype,
    compute_dtype_name,
    compute_dtype_scope,
    set_compute_dtype,
)
from repro.core import (
    ArtifactError,
    AutoHEnsGNN,
    AutoHEnsGNNConfig,
    FittedEnsemble,
    GraphSelfEnsemble,
    HierarchicalEnsemble,
    PipelineResult,
    ProxyEvaluator,
    SearchMethod,
)
from repro.datasets import available_datasets, load_dataset
from repro.graph import Graph, NeighborSampler, SubgraphBatch
from repro.nn import GraphTensors, available_models, build_model
from repro.parallel import (
    ComputeCache,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    compute_cache,
    get_backend,
)
from repro.resilience import FailureReport, FaultPlan, FaultRule, ResiliencePolicy

__version__ = "1.5.0"

__all__ = [
    "compute_dtype",
    "compute_dtype_name",
    "compute_dtype_scope",
    "set_compute_dtype",
    "ArtifactError",
    "AutoHEnsGNN",
    "AutoHEnsGNNConfig",
    "FittedEnsemble",
    "SearchMethod",
    "PipelineResult",
    "ProxyEvaluator",
    "GraphSelfEnsemble",
    "HierarchicalEnsemble",
    "Graph",
    "NeighborSampler",
    "SubgraphBatch",
    "GraphTensors",
    "load_dataset",
    "available_datasets",
    "available_models",
    "build_model",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "ComputeCache",
    "compute_cache",
    "ResiliencePolicy",
    "FailureReport",
    "FaultPlan",
    "FaultRule",
    "__version__",
]
