"""A small reverse-mode automatic differentiation engine over NumPy arrays.

The engine stands in for PyTorch in this reproduction: it provides exactly the
primitives AutoHEnsGNN needs — differentiable dense tensor algebra, constant
sparse operands for graph propagation, parameterised modules, optimisers and
weight initialisers — while staying pure NumPy/SciPy so the whole repository
runs offline on a CPU.

Public API
----------
``Tensor``
    The differentiable array type.  Create leaves with ``Tensor(data,
    requires_grad=True)`` and call ``.backward()`` on a scalar result.
``Parameter`` / ``Module``
    Building blocks for neural network layers (see :mod:`repro.nn`).
``functional``
    Stateless differentiable operations (softmax, dropout, cross entropy, …).
``optim``
    ``SGD`` and ``Adam`` optimisers plus learning-rate schedulers.
``capture``
    Capture-and-replay execution: trace one full-batch training iteration,
    then replay it without Tensors or closures through a lifetime-planned
    buffer arena (bit-identical to the dynamic engine at fixed seeds).
"""

from repro.autograd.dtype import (
    compute_dtype,
    compute_dtype_name,
    compute_dtype_scope,
    set_compute_dtype,
)
from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import capture
from repro.autograd import functional
from repro.autograd import kernels
from repro.autograd.module import Module, Parameter, ModuleList, Sequential
from repro.autograd.modules import Linear, Dropout, ReLU, ELU, Identity, LayerNorm, BatchNorm
from repro.autograd import init
from repro.autograd import optim
from repro.autograd.gradcheck import gradcheck
from repro.autograd.sparse import SparseTensor

__all__ = [
    "Tensor",
    "SparseTensor",
    "no_grad",
    "is_grad_enabled",
    "compute_dtype",
    "compute_dtype_name",
    "compute_dtype_scope",
    "set_compute_dtype",
    "capture",
    "functional",
    "kernels",
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Linear",
    "Dropout",
    "ReLU",
    "ELU",
    "Identity",
    "LayerNorm",
    "BatchNorm",
    "init",
    "optim",
    "gradcheck",
]
