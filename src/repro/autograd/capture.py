"""Capture-and-replay execution of full-batch training iterations.

The dynamic engine (:mod:`repro.autograd.tensor`) rebuilds the same autograd
graph every epoch: fresh ``Tensor`` wrappers, fresh ``_backward`` closures and
fresh output/gradient allocations per op.  For full-batch training — one
optimiser step per epoch over a fixed graph — every epoch executes the *same*
program on the same shapes, so that per-epoch graph construction is pure
overhead.

This module removes it with a record-once / replay-many scheme:

1. **Trace** — the first epoch runs unmodified through the dynamic engine
   while a thread-local :class:`Tape` observes every op (kind, input/output
   *slots*, metadata such as axes, indices or sparse operands).  Tracing is
   purely observational: the traced epoch is bit-for-bit a dynamic epoch.
2. **Plan** — :meth:`Tape.finalize` turns the recording into a flat program.
   Slots whose value cannot change across epochs (pure functions of the
   graph constants) are folded into cached arrays; the remaining *variant*
   slots get buffers from an **arena** planned by lifetime analysis over the
   forward+backward program, so buffers whose live ranges do not overlap
   share storage and no per-epoch activation allocation remains for the
   ``out=``-capable ops.
3. **Replay** — every later epoch executes the program with plain ndarray
   kernels: no ``Tensor`` objects, no closures, no topological sort (the
   backward schedule is the mirror of the dynamic engine's DFS order, fixed
   at plan time).  Only the epoch-variant inputs are refreshed: parameter
   values (updated in place by the optimiser), dropout/DropNode masks drawn
   from the *same* seeded generator stream the dynamic engine would consume,
   and the learning-rate schedule.

Replayed epochs are **bit-identical** to dynamic epochs: every replay kernel
mirrors the exact NumPy expressions (and their evaluation order) of its
dynamic twin, and gradient accumulation follows the same first-write-copy /
then-add discipline in the same DFS order.  ``tests/test_capture.py`` asserts
this across the whole model zoo, all execution backends and both compute
dtypes.

Ops without a registered replay twin (or stateful modules such as
``BatchNorm``) make the tape *fail softly*: training silently continues on
the dynamic path.  The trainer (:mod:`repro.tasks.trainer`) engages capture
only for full-batch runs; minibatch training changes shapes per step and
keeps the dynamic engine.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd import tensor as _tensor
from repro.autograd.tensor import Tensor, _as_array, _reduce_extra_dims, _unbroadcast


class CaptureBailout(RuntimeError):
    """Raised when a replay precondition breaks (e.g. an input changed shape)."""


try:  # pragma: no cover - scipy always ships _sparsetools today
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover
    _csr_tools = None


def _csr_into(matrix, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``matrix @ dense`` written into ``out`` without scipy's dispatch.

    ``csr_matvecs`` is exactly the kernel ``csr_matrix.__matmul__`` runs (it
    accumulates into a zeroed result), so values are bit-identical; skipping
    the wrapper avoids one result allocation and the per-call Python
    dispatch, which the dynamic engine pays on every spmm of every epoch.
    """
    if _csr_tools is None or dense.ndim != 2 or matrix.dtype != dense.dtype \
            or not out.flags.c_contiguous:
        np.copyto(out, matrix @ dense)
        return out
    out.fill(0)
    _csr_tools.csr_matvecs(matrix.shape[0], matrix.shape[1], dense.shape[1],
                           matrix.indptr, matrix.indices, matrix.data,
                           dense.ravel(), out.ravel())
    return out


def _state_buffer(op: "OpRecord", key: str, shape: tuple, dtype) -> np.ndarray:
    buf = op.state.get(key)
    if buf is None:
        buf = op.state[key] = np.empty(shape, dtype)
    return buf


def _scatter_sum_into(op: "OpRecord", key: str, values: np.ndarray,
                      index: np.ndarray, dim_size: int, aggregate) -> np.ndarray:
    """Buffered mirror of ``functional._scatter_sum`` (identical values)."""
    if aggregate is not None:
        flat = values.reshape(values.shape[0], -1)
        out = _state_buffer(op, key, (dim_size, flat.shape[1]), flat.dtype)
        _csr_into(aggregate, flat, out)
        return out.reshape((dim_size,) + values.shape[1:])
    out = _state_buffer(op, key, (dim_size,) + values.shape[1:], values.dtype)
    out.fill(0)
    np.add.at(out, index, values)
    return out


# ---------------------------------------------------------------------------
# Program representation
# ---------------------------------------------------------------------------
@dataclass
class OpImpl:
    """Replay twin of one dynamic op kind.

    ``forward(op, rt)`` recomputes the op's output into ``rt.values[op.out]``
    (through ``op.buffer`` when the op is arena-backed); ``backward(op, rt,
    g)`` mirrors the dynamic ``_backward`` closure, contributing gradients
    via :meth:`Replay.contribute`.  The ``bwd_reads_*`` flags feed the
    lifetime analysis: they declare which *values* the backward pass still
    needs, so everything else can die (and donate its buffer) right after
    its last forward use.
    """

    kind: str
    forward: Callable
    backward: Optional[Callable] = None
    out_mode: str = "fresh"           # "buffer" | "fresh" | "view"
    rng: bool = False                 # consumes the seeded RNG stream per epoch
    bwd_reads_in: bool = False
    bwd_reads_out: bool = False
    mode_fn: Optional[Callable] = None


OPS: Dict[str, OpImpl] = {}


def _register(impl: OpImpl) -> OpImpl:
    OPS[impl.kind] = impl
    return impl


@dataclass
class OpRecord:
    """One recorded op: kind + slot wiring + metadata captured at trace time."""

    kind: str
    impl: OpImpl
    out: int
    ins: Tuple[int, ...]
    prev: Tuple[int, ...]
    in_requires: Tuple[bool, ...]
    in_shapes: Tuple[tuple, ...]
    needs_backward: bool
    meta: Dict[str, object] = field(default_factory=dict)
    state: Dict[str, object] = field(default_factory=dict)
    mode: str = "fresh"
    buffer: Optional[np.ndarray] = None


@dataclass
class SlotInfo:
    """Static facts about one value slot of the captured program."""

    index: int
    shape: tuple
    dtype: np.dtype
    requires_grad: bool
    tensor: Optional[Tensor] = None       # kept for leaves (params / constants)
    producer: Optional[OpRecord] = None
    variant: bool = False
    view_base: Optional[int] = None


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------
class Tape:
    """Observes one dynamic iteration and records it as a flat program."""

    def __init__(self) -> None:
        self.slots: List[SlotInfo] = []
        self.ops: List[OpRecord] = []
        self.loss_slot: Optional[int] = None
        self.failure: Optional[str] = None
        self._ids: Dict[int, int] = {}
        # Keep every traced tensor alive so ``id()`` keys stay unique for the
        # duration of the trace (dropped at finalize).
        self._keepalive: List[Tensor] = []

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def fail(self, reason: str) -> None:
        if self.failure is None:
            self.failure = reason

    # -- slot interning -------------------------------------------------
    def _add_slot(self, t: Tensor, producer: Optional[OpRecord]) -> int:
        index = len(self.slots)
        self.slots.append(SlotInfo(
            index=index, shape=t.data.shape, dtype=t.data.dtype,
            requires_grad=t.requires_grad, tensor=t, producer=producer))
        self._ids[id(t)] = index
        self._keepalive.append(t)
        return index

    def _slot_for(self, t: Tensor) -> int:
        slot = self._ids.get(id(t))
        if slot is None:
            slot = self._add_slot(t, producer=None)   # leaf: parameter or constant
        return slot

    # -- recording hooks (called from the dynamic op sites) -------------
    def record(self, kind: str, out: Tensor, inputs: Tuple[Tensor, ...],
               meta: Dict[str, object]) -> None:
        if self.failed:
            return
        try:
            impl = OPS.get(kind)
            if impl is None:
                self.fail(f"unsupported op {kind!r}")
                return
            ins = tuple(self._slot_for(t) for t in inputs)
            op = OpRecord(
                kind=kind, impl=impl, out=-1, ins=ins,
                prev=(), in_requires=tuple(t.requires_grad for t in inputs),
                in_shapes=tuple(t.data.shape for t in inputs),
                needs_backward=out.requires_grad, meta=dict(meta))
            op.out = self._add_slot(out, producer=op)
            op.prev = tuple(self._ids[id(p)] for p in out._prev)
            op.mode = impl.mode_fn(op) if impl.mode_fn is not None else impl.out_mode
            self.ops.append(op)
        except Exception as exc:  # never break the (real) dynamic epoch
            self.fail(f"record({kind}): {exc!r}")

    def note_backward(self, t: Tensor) -> None:
        """Called by ``Tensor.backward`` — identifies the loss slot."""
        if self.failed:
            return
        if self.loss_slot is not None:
            self.fail("multiple backward() calls in one traced iteration")
            return
        slot = self._ids.get(id(t))
        if slot is None or t.data.size != 1:
            self.fail("backward() on an untracked or non-scalar tensor")
            return
        self.loss_slot = slot

    # -- planning --------------------------------------------------------
    def finalize(self, optimizer, scheduler) -> Optional["Replay"]:
        """Turn the recording into a :class:`Replay` program (or ``None``)."""
        if self.failed or self.loss_slot is None or not self.ops:
            if self.failure is None:
                self.failure = "no backward() observed during trace"
            return None
        try:
            return self._build(optimizer, scheduler)
        except Exception as exc:   # defensive: planning must never break training
            self.fail(f"finalize: {exc!r}")
            return None

    def _build(self, optimizer, scheduler) -> "Replay":
        slots = self.slots

        # Epoch-variance: parameters change under the optimiser, RNG ops draw
        # fresh masks; everything downstream of either must be recomputed.
        # The rest is a pure function of graph constants — folded into the
        # values captured during the trace.
        for info in slots:
            if info.producer is None:
                info.variant = info.requires_grad        # parameters / trained leaves
        for op in self.ops:
            info = slots[op.out]
            info.variant = op.impl.rng or any(slots[s].variant for s in op.ins)
            if op.mode == "view":
                base = op.ins[0]
                info.view_base = slots[base].view_base if slots[base].view_base is not None else base

        forward_ops = [op for op in self.ops if slots[op.out].variant]

        # Mirror of ``Tensor.backward``'s iterative DFS, operating on slots.
        # The graph is isomorphic (prev tuples are the recorded ``_prev``
        # tuples), so the resulting order — and therefore the float
        # accumulation order of every multi-consumer gradient — is identical.
        prev_of = {op.out: op.prev for op in self.ops}
        order: List[int] = []
        visited: set = set()
        stack: List[Tuple[int, bool]] = [(self.loss_slot, False)]
        while stack:
            slot, processed = stack.pop()
            if processed:
                order.append(slot)
                continue
            if slot in visited:
                continue
            visited.add(slot)
            stack.append((slot, True))
            for parent in prev_of.get(slot, ()):
                if parent not in visited:
                    stack.append((parent, False))
        bwd_slots = list(reversed(order))

        plan = self._plan_arena(forward_ops, bwd_slots)

        # Backward schedule (producer ops in mirrored DFS order) and the
        # per-slot contribution count.  A slot receiving exactly one gradient
        # contribution can alias the contributed array directly — the dynamic
        # engine's defensive first-copy exists only because a later
        # contribution may accumulate in place, which the count rules out.
        producer = {op.out: op for op in self.ops}
        backward_ops = [producer[slot] for slot in bwd_slots
                        if slot in producer and producer[slot].needs_backward]
        n_contrib: Dict[int, int] = {self.loss_slot: 1}
        for op in backward_ops:
            for s, requires in zip(op.ins, op.in_requires):
                if requires:
                    n_contrib[s] = n_contrib.get(s, 0) + 1

        leaves = [(info.index, info.tensor) for info in slots if info.producer is None]
        values: List[Optional[np.ndarray]] = [None] * len(slots)
        for info in slots:
            if info.producer is not None and not info.variant:
                values[info.index] = info.tensor.data     # constant-folded

        # Drop tensor refs for op slots so the traced dynamic graph (and its
        # closures) can be garbage collected; leaves stay bound — replay
        # reads parameter data and accumulates into parameter gradients
        # through them.
        for info in slots:
            if info.producer is not None:
                info.tensor = None
        self._keepalive.clear()
        self._ids.clear()

        return Replay(slots=slots, forward_ops=forward_ops, backward_ops=backward_ops,
                      n_contrib=n_contrib, loss_slot=self.loss_slot, leaves=leaves,
                      values=values, optimizer=optimizer, scheduler=scheduler,
                      plan=plan)

    def _plan_arena(self, forward_ops: List[OpRecord],
                    bwd_slots: List[int]) -> Dict[str, object]:
        """Lifetime analysis + greedy buffer assignment for arena-backed slots.

        Steps are numbered forward ops first, then the loss read, then the
        backward schedule.  A slot's value dies at its last reading step —
        forward consumers, plus the backward steps of ops whose gradient
        formula still reads it (``bwd_reads_in`` / ``bwd_reads_out``).  Views
        extend the life of their base.  Buffers are then assigned by a linear
        scan: two slots share storage iff their live ranges do not overlap.
        """
        slots = self.slots

        def base(slot: int) -> int:
            vb = slots[slot].view_base
            return slot if vb is None else vb

        last_use: Dict[int, int] = {}
        birth: Dict[int, int] = {}

        def touch(slot: int, step: int) -> None:
            slot = base(slot)
            if step > last_use.get(slot, -1):
                last_use[slot] = step

        for step, op in enumerate(forward_ops):
            for s in op.ins:
                touch(s, step)
            touch(op.out, step)
            if op.mode == "buffer":
                birth[op.out] = step
        loss_step = len(forward_ops)
        touch(self.loss_slot, loss_step)

        step = loss_step + 1
        producer = {op.out: op for op in self.ops}
        for slot in bwd_slots:
            op = producer.get(slot)
            if op is None or not op.needs_backward:
                continue
            if op.impl.bwd_reads_in:
                for s in op.ins:
                    touch(s, step)
            if op.impl.bwd_reads_out:
                touch(op.out, step)
            step += 1

        # Greedy linear scan over births; a freed buffer is reusable only
        # strictly after its previous owner's death step, so an op can never
        # be handed one of its own inputs as the output buffer.
        pool: List[Dict[str, object]] = []
        buffer_bytes = 0
        demand_bytes = 0
        for op in forward_ops:
            if op.mode != "buffer":
                continue
            info = slots[op.out]
            born = birth[op.out]
            dies = last_use.get(op.out, born)
            key = (info.shape, info.dtype)
            nbytes = int(np.prod(info.shape, dtype=np.int64)) * info.dtype.itemsize
            demand_bytes += nbytes
            chosen = None
            for entry in pool:
                if entry["key"] == key and entry["free_after"] < born:
                    chosen = entry
                    break
            if chosen is None:
                chosen = {"key": key, "array": np.empty(info.shape, info.dtype)}
                pool.append(chosen)
                buffer_bytes += nbytes
            chosen["free_after"] = dies
            op.buffer = chosen["array"]

        return {
            "ops_recorded": len(self.ops),
            "ops_replayed": len(forward_ops),
            "ops_constant_folded": len(self.ops) - len(forward_ops),
            "arena_buffers": len(pool),
            "arena_bytes": buffer_bytes,
            "arena_demand_bytes": demand_bytes,
        }


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
class Replay:
    """A planned program replaying one training epoch with plain ndarrays."""

    def __init__(self, slots, forward_ops, backward_ops, n_contrib, loss_slot,
                 leaves, values, optimizer, scheduler, plan) -> None:
        self.slots = slots
        self.forward_ops = forward_ops
        self.backward_ops = backward_ops
        self.n_contrib = n_contrib
        self.loss_slot = loss_slot
        self.leaves = leaves
        self.values = values
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.plan = plan
        self.gradbuf: Dict[int, np.ndarray] = {}
        self.grads: List[Optional[np.ndarray]] = [None] * len(slots)
        self._touched: List[int] = []
        self._adam_groups = self._prepare_adam()
        self.epochs_replayed = 0

    def _prepare_adam(self):
        """Pre-resolve Adam's per-parameter buffers for the replay step.

        The replayed step runs the exact in-place ufunc sequence of
        ``optim.Adam.step`` (same scratch buffers, same order — change both
        together) minus the per-step buffer lookups; any other optimiser
        falls back to its own ``step()``.
        """
        from repro.autograd import optim as _optim

        opt = self.optimizer
        if type(opt) is not _optim.Adam:
            return None
        return [(param, m, v,
                 opt._buffer(opt._scratch, index, param),
                 opt._buffer(opt._scratch2, index, param))
                for index, (param, m, v)
                in enumerate(zip(opt.parameters, opt._m, opt._v))]

    def _adam_step(self) -> None:
        opt = self.optimizer
        opt._step += 1
        bias1 = 1.0 - opt.beta1 ** opt._step
        bias2 = 1.0 - opt.beta2 ** opt._step
        one_minus_beta1 = 1.0 - opt.beta1
        one_minus_beta2 = 1.0 - opt.beta2
        weight_decay, eps, lr = opt.weight_decay, opt.eps, opt.lr
        for param, m, v, buf, tmp in self._adam_groups:
            grad = param.grad
            if grad is None:
                continue
            if weight_decay:
                np.multiply(param.data, weight_decay, out=buf)
                buf += grad
                grad = buf
            np.multiply(grad, one_minus_beta1, out=tmp)
            m *= opt.beta1
            m += tmp
            np.multiply(grad, grad, out=tmp)
            tmp *= one_minus_beta2
            v *= opt.beta2
            v += tmp
            np.divide(v, bias2, out=tmp)
            np.sqrt(tmp, out=tmp)
            tmp += eps
            np.divide(m, bias1, out=buf)
            buf /= tmp
            buf *= lr
            param.data -= buf

    def contribute(self, slot: int, grad: np.ndarray) -> None:
        """Mirror of ``Tensor._accumulate`` for one gradient contribution.

        Single-consumer slots (the common case, known from the plan) alias
        the contributed array instead of copying it — the dynamic engine's
        defensive first-copy only matters when a later contribution would
        accumulate in place, and no backward kernel mutates an array after
        contributing it.
        """
        info = self.slots[slot]
        tensor = info.tensor
        if tensor is not None:
            # Leaf (parameter or trained tensor): reuse the dynamic engine's
            # own accumulator — identical copy/add semantics, identical
            # parked-buffer recycling with ``Optimizer.zero_grad``.
            if tensor.requires_grad:
                tensor._accumulate(grad)
            return
        if not info.requires_grad:
            return
        grads = self.grads
        current = grads[slot]
        if current is None:
            if self.n_contrib.get(slot, 0) <= 1:
                grads[slot] = grad
            else:
                buf = self.gradbuf.get(slot)
                if buf is None:
                    buf = self.gradbuf[slot] = np.empty(info.shape, info.dtype)
                np.copyto(buf, grad)
                grads[slot] = buf
            self._touched.append(slot)
        else:
            current += grad

    def run_epoch(self) -> float:
        """One full ``forward → loss → backward → optimizer.step`` iteration."""
        values = self.values
        slots = self.slots
        for slot, tensor in self.leaves:
            data = tensor.data
            if data.shape != slots[slot].shape or data.dtype != slots[slot].dtype:
                raise CaptureBailout(
                    f"input slot {slot} changed from {slots[slot].shape} to {data.shape}")
            values[slot] = data
        self.optimizer.zero_grad()
        for op in self.forward_ops:
            op.impl.forward(op, self)
        loss_value = float(values[self.loss_slot])

        grads = self.grads
        for slot in self._touched:
            grads[slot] = None
        self._touched.clear()
        seed = getattr(self, "_seed_ones", None)
        if seed is None:
            seed = self._seed_ones = np.ones_like(values[self.loss_slot])
        self.contribute(self.loss_slot, seed)
        for op in self.backward_ops:
            g = grads[op.out]
            if g is not None:
                op.impl.backward(op, self, g)

        if self._adam_groups is not None:
            self._adam_step()
        else:
            self.optimizer.step()
        self.scheduler.step()
        self.epochs_replayed += 1
        return loss_value


# ---------------------------------------------------------------------------
# Trace activation
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def tracing(tape: Tape):
    """Install ``tape`` as this thread's recording target for the duration."""
    if getattr(_tensor._TRACE, "tape", None) is not None:
        raise RuntimeError("capture traces cannot nest")
    _tensor._TRACE.tape = tape
    try:
        yield tape
    finally:
        _tensor._TRACE.tape = None


def supports_capture(model) -> bool:
    """Static check for modules whose forward has side effects replay cannot see."""
    from repro.autograd.modules import BatchNorm

    modules = getattr(model, "modules", None)
    if modules is None:
        return True
    return not any(isinstance(m, BatchNorm) for m in modules())


# ---------------------------------------------------------------------------
# Replay kernels.  Every forward/backward body mirrors the exact NumPy
# expressions (and evaluation order) of its dynamic twin in tensor.py /
# functional.py / sparse.py / kernels.py — that mirroring is what makes
# replayed epochs bit-identical, so change both sides together or not at all.
# ---------------------------------------------------------------------------
def _out(op: OpRecord, rt: Replay, value: np.ndarray) -> None:
    rt.values[op.out] = value


# -- elementwise arithmetic --------------------------------------------------
def _fwd_add(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.add(a, b, out=op.buffer))


def _bwd_add(op, rt, g):
    # The in_requires guards here (and in the other multi-operand kernels)
    # skip gradient expressions the dynamic closures compute and then
    # discard for constant operands — dropped work, identical values.
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(g, sb))


_register(OpImpl("add", _fwd_add, _bwd_add, out_mode="buffer"))


def _fwd_sub(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.subtract(a, b, out=op.buffer))


def _bwd_sub(op, rt, g):
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(-g, sb))


_register(OpImpl("sub", _fwd_sub, _bwd_sub, out_mode="buffer"))


def _fwd_mul(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.multiply(a, b, out=op.buffer))


def _bwd_mul(op, rt, g):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        if g.shape == sa:     # no unbroadcast reduction: multiply into a buffer
            rt.contribute(op.ins[0], np.multiply(
                g, b, out=_state_buffer(op, "ga", sa, g.dtype)))
        else:
            tmp = np.multiply(g, b, out=_state_buffer(op, "ga_tmp", g.shape, g.dtype))
            rt.contribute(op.ins[0], _unbroadcast(tmp, sa))
    if op.in_requires[1]:
        if g.shape == sb:
            rt.contribute(op.ins[1], np.multiply(
                g, a, out=_state_buffer(op, "gb", sb, g.dtype)))
        else:
            tmp = np.multiply(g, a, out=_state_buffer(op, "gb_tmp", g.shape, g.dtype))
            rt.contribute(op.ins[1], _unbroadcast(tmp, sb))


_register(OpImpl("mul", _fwd_mul, _bwd_mul, out_mode="buffer", bwd_reads_in=True))


def _fwd_div(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.divide(a, b, out=op.buffer))


def _bwd_div(op, rt, g):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g / b, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(-g * a / (b ** 2), sb))


_register(OpImpl("div", _fwd_div, _bwd_div, out_mode="buffer", bwd_reads_in=True))


def _fwd_neg(op, rt):
    _out(op, rt, np.negative(rt.values[op.ins[0]], out=op.buffer))


def _bwd_neg(op, rt, g):
    rt.contribute(op.ins[0], -g)


_register(OpImpl("neg", _fwd_neg, _bwd_neg, out_mode="buffer"))


def _fwd_pow(op, rt):
    # Deliberately ``**`` (not np.power with out=): ndarray.__pow__ has
    # bit-different fast paths for exponents 0.5 / 2 / -1 (sqrt, square,
    # reciprocal) that the dynamic engine hits — mirror them exactly.
    _out(op, rt, rt.values[op.ins[0]] ** op.meta["exponent"])


def _bwd_pow(op, rt, g):
    a = rt.values[op.ins[0]]
    exponent = op.meta["exponent"]
    rt.contribute(op.ins[0], g * exponent * a ** (exponent - 1))


_register(OpImpl("pow", _fwd_pow, _bwd_pow, bwd_reads_in=True))


# -- linear algebra ----------------------------------------------------------
def _matmul_mode(op) -> str:
    return "buffer" if all(len(shape) >= 2 for shape in op.in_shapes) else "fresh"


def _fwd_matmul(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    if op.buffer is not None:
        _out(op, rt, np.matmul(a, b, out=op.buffer))
    else:
        _out(op, rt, a @ b)


def _bwd_matmul(op, rt, g):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        if b.ndim == 1:
            grad_self = np.outer(g, b) if g.ndim == 1 else g[..., None] * b
            rt.contribute(op.ins[0], _reduce_extra_dims(grad_self, sa))
        elif g.ndim == 2 and b.ndim == 2:
            rt.contribute(op.ins[0], np.matmul(
                g, b.T, out=_state_buffer(op, "ga", sa, g.dtype)))
        else:
            grad_self = g @ b.swapaxes(-1, -2)
            rt.contribute(op.ins[0], _reduce_extra_dims(grad_self, sa))
    if op.in_requires[1]:
        if a.ndim == 1:
            rt.contribute(op.ins[1], _reduce_extra_dims(np.outer(a, g), sb))
        elif a.ndim == 2 and g.ndim == 2:
            rt.contribute(op.ins[1], np.matmul(
                a.T, g, out=_state_buffer(op, "gb", sb, g.dtype)))
        else:
            grad_other = a.swapaxes(-1, -2) @ g
            rt.contribute(op.ins[1], _reduce_extra_dims(grad_other, sb))


_register(OpImpl("matmul", _fwd_matmul, _bwd_matmul, out_mode="buffer",
                 bwd_reads_in=True, mode_fn=_matmul_mode))


def _fwd_transpose(op, rt):
    _out(op, rt, np.transpose(rt.values[op.ins[0]], op.meta["axes"]))


def _bwd_transpose(op, rt, g):
    axes = op.meta["axes"]
    inverse = None if axes is None else tuple(np.argsort(axes))
    rt.contribute(op.ins[0], np.transpose(g, inverse))


_register(OpImpl("transpose", _fwd_transpose, _bwd_transpose, out_mode="view"))


def _fwd_reshape(op, rt):
    _out(op, rt, rt.values[op.ins[0]].reshape(op.meta["shape"]))


def _bwd_reshape(op, rt, g):
    rt.contribute(op.ins[0], g.reshape(op.in_shapes[0]))


_register(OpImpl("reshape", _fwd_reshape, _bwd_reshape, out_mode="view"))


def _is_advanced_index(index) -> bool:
    """NumPy's basic-vs-advanced indexing rule: arrays/lists trigger a copy."""
    if isinstance(index, (np.ndarray, list)):
        return True
    if isinstance(index, tuple):
        return any(isinstance(item, (np.ndarray, list)) for item in index)
    return False


def _getitem_mode(op) -> str:
    # Basic (int/slice) indexing returns a *view* of the input buffer — it
    # must extend the base buffer's lifetime like transpose/reshape do, or
    # the arena planner could donate the storage while the view is live.
    return "fresh" if _is_advanced_index(op.meta["index"]) else "view"


def _fwd_getitem(op, rt):
    _out(op, rt, rt.values[op.ins[0]][op.meta["index"]])


def _bwd_getitem(op, rt, g):
    info = rt.slots[op.ins[0]]
    full = op.state.get("full")
    if full is None:
        full = op.state["full"] = np.zeros(info.shape, info.dtype)
        index = op.meta["index"]
        # ``np.add.at`` is unbuffered and slow; with unique integer indices
        # (the training-mask case) scattering one value per row, plain fancy
        # assignment lands the identical result.
        op.state["unique"] = (isinstance(index, np.ndarray)
                              and index.dtype.kind in "iu"
                              and index.ndim == 1
                              and np.unique(index).size == index.size)
    else:
        full.fill(0)
    if op.state["unique"]:
        full[op.meta["index"]] = g
    else:
        np.add.at(full, op.meta["index"], g)
    rt.contribute(op.ins[0], full)


_register(OpImpl("getitem", _fwd_getitem, _bwd_getitem, mode_fn=_getitem_mode))


# -- reductions --------------------------------------------------------------
def _fwd_sum(op, rt):
    _out(op, rt, np.sum(rt.values[op.ins[0]], axis=op.meta["axis"],
                        keepdims=op.meta["keepdims"], out=op.buffer))


def _bwd_sum(op, rt, g):
    axis, keepdims = op.meta["axis"], op.meta["keepdims"]
    expanded = g
    if axis is not None and not keepdims:
        expanded = np.expand_dims(g, axis)
    buf = _state_buffer(op, "grad", op.in_shapes[0], g.dtype)
    np.copyto(buf, expanded)    # broadcasting copy, like broadcast_to().copy()
    rt.contribute(op.ins[0], buf)


_register(OpImpl("sum", _fwd_sum, _bwd_sum, out_mode="buffer"))


def _fwd_max(op, rt):
    _out(op, rt, np.max(rt.values[op.ins[0]], axis=op.meta["axis"],
                        keepdims=op.meta["keepdims"], out=op.buffer))


def _bwd_max(op, rt, g):
    a = rt.values[op.ins[0]]
    out_data = rt.values[op.out]
    axis, keepdims = op.meta["axis"], op.meta["keepdims"]
    expanded_out = out_data
    expanded_grad = g
    if axis is not None and not keepdims:
        expanded_out = np.expand_dims(out_data, axis)
        expanded_grad = np.expand_dims(g, axis)
    mask = (a == expanded_out).astype(a.dtype)
    mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
    rt.contribute(op.ins[0], mask * expanded_grad)


_register(OpImpl("max", _fwd_max, _bwd_max, out_mode="buffer",
                 bwd_reads_in=True, bwd_reads_out=True))


# -- elementwise nonlinearities ----------------------------------------------
def _fwd_exp(op, rt):
    _out(op, rt, np.exp(rt.values[op.ins[0]], out=op.buffer))


def _bwd_exp(op, rt, g):
    rt.contribute(op.ins[0], g * rt.values[op.out])


_register(OpImpl("exp", _fwd_exp, _bwd_exp, out_mode="buffer", bwd_reads_out=True))


def _fwd_log(op, rt):
    _out(op, rt, np.log(rt.values[op.ins[0]], out=op.buffer))


def _bwd_log(op, rt, g):
    rt.contribute(op.ins[0], g / rt.values[op.ins[0]])


_register(OpImpl("log", _fwd_log, _bwd_log, out_mode="buffer", bwd_reads_in=True))


def _fwd_relu(op, rt):
    a = rt.values[op.ins[0]]
    _out(op, rt, np.maximum(a, 0.0, out=op.buffer))
    if op.needs_backward:
        mask = op.state.get("mask")
        if mask is None:
            mask = op.state["mask"] = np.empty(a.shape, dtype=bool)
        np.greater(a, 0, out=mask)


def _bwd_relu(op, rt, g):
    rt.contribute(op.ins[0], np.multiply(
        g, op.state["mask"], out=_state_buffer(op, "grad", op.in_shapes[0], g.dtype)))


_register(OpImpl("relu", _fwd_relu, _bwd_relu, out_mode="buffer"))


def _fwd_tanh(op, rt):
    _out(op, rt, np.tanh(rt.values[op.ins[0]], out=op.buffer))


def _bwd_tanh(op, rt, g):
    out_data = rt.values[op.out]
    rt.contribute(op.ins[0], g * (1.0 - out_data ** 2))


_register(OpImpl("tanh", _fwd_tanh, _bwd_tanh, out_mode="buffer", bwd_reads_out=True))


def _fwd_sigmoid(op, rt):
    # 1.0 / (1.0 + np.exp(-x)) computed stage by stage into the arena buffer.
    a = rt.values[op.ins[0]]
    buf = op.buffer
    np.negative(a, out=buf)
    np.exp(buf, out=buf)
    np.add(buf, 1.0, out=buf)
    np.divide(1.0, buf, out=buf)
    _out(op, rt, buf)


def _bwd_sigmoid(op, rt, g):
    out_data = rt.values[op.out]
    rt.contribute(op.ins[0], g * out_data * (1.0 - out_data))


_register(OpImpl("sigmoid", _fwd_sigmoid, _bwd_sigmoid, out_mode="buffer",
                 bwd_reads_out=True))


def _fwd_abs(op, rt):
    a = rt.values[op.ins[0]]
    _out(op, rt, np.abs(a, out=op.buffer))
    if op.needs_backward:
        sign = op.state.get("sign")
        if sign is None:
            sign = op.state["sign"] = np.empty(a.shape, a.dtype)
        np.sign(a, out=sign)


def _bwd_abs(op, rt, g):
    rt.contribute(op.ins[0], g * op.state["sign"])


_register(OpImpl("abs", _fwd_abs, _bwd_abs, out_mode="buffer"))


def _fwd_elu(op, rt):
    # Mirror of _elu_forward with the np.where replaced by a masked copy
    # into a persistent buffer (same selected values, no fresh arrays).
    a = rt.values[op.ins[0]]
    alpha = op.meta["alpha"]
    positive = _state_buffer(op, "positive", a.shape, np.bool_)
    np.greater(a, 0, out=positive)
    out = _state_buffer(op, "out", a.shape, a.dtype)
    np.minimum(a, 0.0, out=out)
    np.expm1(out, out=out)
    out *= alpha
    np.copyto(out, a, where=positive)
    _out(op, rt, out)
    if op.needs_backward:
        local = _state_buffer(op, "local", a.shape, a.dtype)
        np.minimum(a, 0.0, out=local)
        np.exp(local, out=local)
        np.multiply(alpha, local, out=local)
        local[positive] = 1.0
        op.state["local"] = local


def _bwd_elu(op, rt, g):
    rt.contribute(op.ins[0], np.multiply(
        g, op.state["local"], out=_state_buffer(op, "grad", op.in_shapes[0], g.dtype)))


_register(OpImpl("elu", _fwd_elu, _bwd_elu))


def _fwd_leaky_relu(op, rt):
    a = rt.values[op.ins[0]]
    positive = _state_buffer(op, "positive", a.shape, np.bool_)
    np.greater(a, 0, out=positive)
    out = _state_buffer(op, "out", a.shape, a.dtype)
    np.multiply(a, op.meta["negative_slope"], out=out)
    np.copyto(out, a, where=positive)
    _out(op, rt, out)


def _bwd_leaky_relu(op, rt, g):
    grad = _state_buffer(op, "grad", op.in_shapes[0], g.dtype)
    np.multiply(g, op.meta["negative_slope"], out=grad)
    np.copyto(grad, g, where=op.state["positive"])
    rt.contribute(op.ins[0], grad)


_register(OpImpl("leaky_relu", _fwd_leaky_relu, _bwd_leaky_relu))


# -- softmax family ----------------------------------------------------------
def _fwd_softmax(op, rt):
    _out(op, rt, F.softmax_array(rt.values[op.ins[0]], axis=op.meta["axis"]))


def _bwd_softmax(op, rt, g):
    out_data = rt.values[op.out]
    axis = op.meta["axis"]
    dot = (g * out_data).sum(axis=axis, keepdims=True)
    rt.contribute(op.ins[0], out_data * (g - dot))


_register(OpImpl("softmax", _fwd_softmax, _bwd_softmax, bwd_reads_out=True))


def _fwd_log_softmax(op, rt):
    out_data = F.log_softmax_array(rt.values[op.ins[0]], axis=op.meta["axis"])
    _out(op, rt, out_data)
    if op.needs_backward:
        op.state["soft"] = np.exp(out_data)


def _bwd_log_softmax(op, rt, g):
    axis = op.meta["axis"]
    rt.contribute(op.ins[0], g - op.state["soft"] * g.sum(axis=axis, keepdims=True))


_register(OpImpl("log_softmax", _fwd_log_softmax, _bwd_log_softmax))


# -- regularisation (per-epoch RNG refresh) ----------------------------------
def _fwd_dropout(op, rt):
    # Same uniform draw, same compare, same 0/1-cast and same rescaling
    # division as the dynamic op — staged through three persistent buffers
    # so a replayed epoch allocates nothing for the mask.
    a = rt.values[op.ins[0]]
    p = op.meta["p"]
    state = op.state
    if "mask" not in state:
        state["uniform"] = np.empty(a.shape, dtype=np.float64)
        state["keep"] = np.empty(a.shape, dtype=bool)
        state["mask"] = np.empty(a.shape, dtype=a.dtype)
    mask = state["mask"]
    op.meta["rng"].random(out=state["uniform"])
    np.greater_equal(state["uniform"], p, out=state["keep"])
    np.copyto(mask, state["keep"])        # exact 0.0 / 1.0, like .astype()
    np.divide(mask, 1.0 - p, out=mask)
    _out(op, rt, np.multiply(a, mask, out=op.buffer))


def _bwd_dropout(op, rt, g):
    rt.contribute(op.ins[0], np.multiply(
        g, op.state["mask"], out=_state_buffer(op, "grad", op.in_shapes[0], g.dtype)))


_register(OpImpl("dropout", _fwd_dropout, _bwd_dropout, out_mode="buffer", rng=True))


def _fwd_drop_node(op, rt):
    a = rt.values[op.ins[0]]
    p = op.meta["p"]
    mask = _as_array((op.meta["rng"].random((a.shape[0], 1)) >= p) / (1.0 - p))
    op.state["mask"] = mask
    _out(op, rt, np.multiply(a, mask, out=op.buffer))


def _bwd_drop_node(op, rt, g):
    rt.contribute(op.ins[0], g * op.state["mask"])


_register(OpImpl("drop_node", _fwd_drop_node, _bwd_drop_node, out_mode="buffer",
                 rng=True))


# -- losses ------------------------------------------------------------------
def _fwd_cross_entropy(op, rt):
    out_data, log_probs = F._cross_entropy_forward(
        rt.values[op.ins[0]], op.meta["target"], op.meta["reduction"])
    _out(op, rt, out_data)
    if op.needs_backward:
        op.state["log_probs"] = log_probs
        op.state["soft"] = np.exp(log_probs)


def _bwd_cross_entropy(op, rt, g):
    # Buffered mirror of functional._cross_entropy_backward: same broadcast
    # copy, same one-per-row scatter, same row-sum correction.
    log_probs = op.state["log_probs"]
    reduction = op.meta["reduction"]
    n = log_probs.shape[0]
    rows = op.state.get("rows")
    if rows is None:
        rows = op.state["rows"] = np.arange(n)
        op.state["scattered"] = np.zeros(log_probs.shape, log_probs.dtype)
    if reduction == "mean":
        per_row = np.broadcast_to(g * np.asarray(1.0 / n, dtype=log_probs.dtype),
                                  (n,)).copy()
    elif reduction == "sum":
        per_row = np.broadcast_to(g, (n,)).copy()
    else:
        per_row = g
    scattered = op.state["scattered"]
    scattered[rows, op.meta["target"]] = -per_row
    grad = scattered - op.state["soft"] * scattered.sum(axis=-1, keepdims=True)
    scattered[rows, op.meta["target"]] = 0.0    # keep off-target entries zero
    rt.contribute(op.ins[0], grad)


_register(OpImpl("cross_entropy", _fwd_cross_entropy, _bwd_cross_entropy))


# -- shape manipulation ------------------------------------------------------
def _fwd_concat(op, rt):
    parts = [rt.values[s] for s in op.ins]
    _out(op, rt, np.concatenate(parts, axis=op.meta["axis"], out=op.buffer))


def _bwd_concat(op, rt, g):
    axis = op.meta["axis"]
    offsets = op.state.get("offsets")
    if offsets is None:
        sizes = [shape[axis] for shape in op.in_shapes]
        offsets = op.state["offsets"] = np.cumsum([0] + sizes)
    for position, (slot, start, stop) in enumerate(
            zip(op.ins, offsets[:-1], offsets[1:])):
        if not op.in_requires[position]:
            continue
        index = [slice(None)] * g.ndim
        index[axis] = slice(start, stop)
        rt.contribute(slot, g[tuple(index)])


_register(OpImpl("concat", _fwd_concat, _bwd_concat, out_mode="buffer"))


def _fwd_stack(op, rt):
    parts = [rt.values[s] for s in op.ins]
    _out(op, rt, np.stack(parts, axis=op.meta["axis"], out=op.buffer))


def _bwd_stack(op, rt, g):
    slices = np.moveaxis(g, op.meta["axis"], 0)
    for position, (slot, piece) in enumerate(zip(op.ins, slices)):
        if op.in_requires[position]:
            rt.contribute(slot, piece)


_register(OpImpl("stack", _fwd_stack, _bwd_stack, out_mode="buffer"))


# -- gather / scatter --------------------------------------------------------
def _fwd_index_select(op, rt):
    a = rt.values[op.ins[0]]
    _out(op, rt, np.take(a, op.meta["index"], axis=0, out=op.buffer))


def _bwd_index_select(op, rt, g):
    rt.contribute(op.ins[0], _scatter_sum_into(
        op, "grad", g, op.meta["index"], op.in_shapes[0][0], op.meta["scatter"]))


_register(OpImpl("index_select", _fwd_index_select, _bwd_index_select,
                 out_mode="buffer"))


def _fwd_scatter_add(op, rt):
    _out(op, rt, _scatter_sum_into(op, "out", rt.values[op.ins[0]],
                                   op.meta["index"], op.meta["dim_size"],
                                   op.meta["aggregate"]))


def _bwd_scatter_add(op, rt, g):
    rt.contribute(op.ins[0], g[op.meta["index"]])


_register(OpImpl("scatter_add", _fwd_scatter_add, _bwd_scatter_add))


def _fwd_scatter_max(op, rt):
    src = rt.values[op.ins[0]]
    index = op.meta["index"]
    dim_size = op.meta["dim_size"]
    out_data = np.full((dim_size,) + src.shape[1:], -np.inf, dtype=src.dtype)
    np.maximum.at(out_data, index, src)
    empty = ~np.isfinite(out_data)
    out_data[empty] = 0.0
    _out(op, rt, out_data)
    if op.needs_backward:
        argmax_mask = (src == out_data[index]) & ~empty[index]
        tie_counts = np.zeros(out_data.shape, dtype=src.dtype)
        np.add.at(tie_counts, index, argmax_mask.astype(src.dtype))
        tie_counts = np.maximum(tie_counts, 1.0)
        op.state["argmax_mask"] = argmax_mask
        op.state["tie_counts"] = tie_counts


def _bwd_scatter_max(op, rt, g):
    index = op.meta["index"]
    rt.contribute(op.ins[0], op.state["argmax_mask"] * g[index]
                  / op.state["tie_counts"][index])


_register(OpImpl("scatter_max", _fwd_scatter_max, _bwd_scatter_max))


def _fwd_segment_softmax(op, rt):
    # Buffered mirror of functional.segment_softmax_array.  The per-group
    # maximum runs as a sort-once + ``maximum.reduceat`` instead of the
    # unbuffered ``np.maximum.at`` loop — max is exact and order-free, so the
    # values are identical; empty groups get the same -inf → 0 treatment.
    scores = rt.values[op.ins[0]]
    index = op.meta["index"]
    dim_size = op.meta["dim_size"]
    state = op.state
    if "perm" not in state:
        perm = state["perm"] = np.argsort(index, kind="stable")
        sorted_index = index[perm]
        starts = np.searchsorted(sorted_index, np.arange(dim_size))
        state["starts"] = np.minimum(starts, max(index.shape[0] - 1, 0))
        state["empty"] = np.bincount(index, minlength=dim_size) == 0
    group_shape = (dim_size,) + scores.shape[1:]
    gathered = np.take(scores, state["perm"], axis=0,
                       out=_state_buffer(op, "gathered", scores.shape, scores.dtype))
    group_max = _state_buffer(op, "group_max", group_shape, scores.dtype)
    np.maximum.reduceat(gathered, state["starts"], axis=0, out=group_max)
    group_max[state["empty"]] = -np.inf
    group_max[~np.isfinite(group_max)] = 0.0
    spread = np.take(group_max, index, axis=0,
                     out=_state_buffer(op, "spread", scores.shape, scores.dtype))
    exp = _state_buffer(op, "exp", scores.shape, scores.dtype)
    np.subtract(scores, spread, out=exp)
    np.exp(exp, out=exp)
    denom = _scatter_sum_into(op, "denom", exp, index, dim_size,
                              op.meta["aggregate"])
    np.maximum(denom, 1e-16, out=denom)
    np.take(denom, index, axis=0, out=spread)
    _out(op, rt, np.divide(exp, spread, out=op.buffer))


def _bwd_segment_softmax(op, rt, g):
    out_data = rt.values[op.out]
    index = op.meta["index"]
    weighted = g * out_data
    group_dot = _scatter_sum_into(op, "dot", weighted, index,
                                  op.meta["dim_size"], op.meta["aggregate"])
    rt.contribute(op.ins[0], out_data * (g - group_dot[index]))


_register(OpImpl("segment_softmax", _fwd_segment_softmax, _bwd_segment_softmax,
                 out_mode="buffer", bwd_reads_out=True))


# -- sparse / fused kernels --------------------------------------------------
def _spmm_mode(op) -> str:
    return "buffer" if len(op.in_shapes[0]) == 2 else "fresh"


def _fwd_spmm(op, rt):
    dense = rt.values[op.ins[0]]
    if op.buffer is not None:
        _out(op, rt, _csr_into(op.meta["sparse"].matrix, dense, op.buffer))
    else:
        _out(op, rt, op.meta["sparse"].matrix @ dense)


def _bwd_spmm(op, rt, g):
    sparse = op.meta["sparse"]
    if g.ndim == 2:
        buf = _state_buffer(op, "grad", op.in_shapes[0], g.dtype)
        rt.contribute(op.ins[0], _csr_into(sparse.transposed_csr, g, buf))
    else:
        rt.contribute(op.ins[0], sparse.transposed_csr @ g)


_register(OpImpl("spmm", _fwd_spmm, _bwd_spmm, out_mode="buffer",
                 mode_fn=_spmm_mode))


def _fwd_spmm_bias_act(op, rt):
    # Inline mirror of kernels.spmm_bias_act_forward with every product
    # landing in a persistent buffer: A @ (X W) or (A X) @ W, bias added
    # in place after propagation, fused ReLU applied in place.
    operator = op.meta["operator"]
    x = rt.values[op.ins[0]]
    weight = rt.values[op.ins[1]]
    out = op.buffer
    if op.meta["prop_first"]:
        propagated = _state_buffer(op, "propagated", x.shape, x.dtype)
        _csr_into(operator.matrix, x, propagated)
        np.matmul(propagated, weight, out=out)
    else:
        transformed = _state_buffer(op, "transformed",
                                    (x.shape[0], weight.shape[1]), x.dtype)
        np.matmul(x, weight, out=transformed)
        _csr_into(operator.matrix, transformed, out)
    if len(op.ins) > 2:
        out += rt.values[op.ins[2]]
    if op.meta["activation"] == "relu":
        np.maximum(out, 0.0, out=out)
    _out(op, rt, out)
    if op.needs_backward and op.meta["activation"] == "relu":
        mask = _state_buffer(op, "relu_mask", out.shape, np.bool_)
        np.greater(out, 0, out=mask)


def _bwd_spmm_bias_act(op, rt, g):
    operator = op.meta["operator"]
    x = rt.values[op.ins[0]]
    weight = rt.values[op.ins[1]]
    if op.meta["activation"] == "relu":
        g = g * op.state["relu_mask"]
    if len(op.ins) > 2 and op.in_requires[2]:
        rt.contribute(op.ins[2], g.sum(axis=0))
    if op.meta["prop_first"]:
        if op.in_requires[1]:
            wgrad = _state_buffer(op, "wgrad", op.in_shapes[1], g.dtype)
            rt.contribute(op.ins[1], np.matmul(op.state["propagated"].T, g, out=wgrad))
        if op.in_requires[0]:
            xgrad = _state_buffer(op, "xgrad", op.in_shapes[0], g.dtype)
            rt.contribute(op.ins[0],
                          _csr_into(operator.transposed_csr, g @ weight.T, xgrad))
    else:
        support = _state_buffer(op, "support", g.shape, g.dtype)
        _csr_into(operator.transposed_csr, g, support)
        if op.in_requires[1]:
            wgrad = _state_buffer(op, "wgrad", op.in_shapes[1], g.dtype)
            rt.contribute(op.ins[1], np.matmul(x.T, support, out=wgrad))
        if op.in_requires[0]:
            xgrad = _state_buffer(op, "xgrad", op.in_shapes[0], g.dtype)
            rt.contribute(op.ins[0], np.matmul(support, weight.T, out=xgrad))


_register(OpImpl("spmm_bias_act", _fwd_spmm_bias_act, _bwd_spmm_bias_act,
                 out_mode="buffer", bwd_reads_in=True))
