"""Capture-and-replay execution of full-batch training iterations.

The dynamic engine (:mod:`repro.autograd.tensor`) rebuilds the same autograd
graph every epoch: fresh ``Tensor`` wrappers, fresh ``_backward`` closures and
fresh output/gradient allocations per op.  For full-batch training — one
optimiser step per epoch over a fixed graph — every epoch executes the *same*
program on the same shapes, so that per-epoch graph construction is pure
overhead.

This module removes it with a record-once / replay-many scheme:

1. **Trace** — the first epoch runs unmodified through the dynamic engine
   while a thread-local :class:`Tape` observes every op (kind, input/output
   *slots*, metadata such as axes, indices or sparse operands).  Tracing is
   purely observational: the traced epoch is bit-for-bit a dynamic epoch.
2. **Plan** — :meth:`Tape.finalize` turns the recording into a flat program.
   Slots whose value cannot change across epochs (pure functions of the
   graph constants) are folded into cached arrays; the remaining *variant*
   slots get buffers from an **arena** planned by lifetime analysis over the
   forward+backward program, so buffers whose live ranges do not overlap
   share storage and no per-epoch activation allocation remains for the
   ``out=``-capable ops.
3. **Replay** — every later epoch executes the program with plain ndarray
   kernels: no ``Tensor`` objects, no closures, no topological sort (the
   backward schedule is the mirror of the dynamic engine's DFS order, fixed
   at plan time).  Only the epoch-variant inputs are refreshed: parameter
   values (updated in place by the optimiser), dropout/DropNode masks drawn
   from the *same* seeded generator stream the dynamic engine would consume,
   and the learning-rate schedule.

Replayed epochs are **bit-identical** to dynamic epochs: every replay kernel
mirrors the exact NumPy expressions (and their evaluation order) of its
dynamic twin, and gradient accumulation follows the same first-write-copy /
then-add discipline in the same DFS order.  ``tests/test_capture.py`` asserts
this across the whole model zoo, all execution backends and both compute
dtypes.

Between trace and replay the recording is lowered to the graph-program IR
(:mod:`repro.autograd.ir`): the program is verified, optimization passes run
over it (operator fusion, see :mod:`repro.autograd.ir.passes`) and its arena
is planned through the process-wide buffer pool
(:mod:`repro.autograd.ir.arena`) so ensemble members share storage.
:func:`build_inference_replay` derives a forward-only program (no backward
schedule, no gradient or optimizer slots) for validation/serve paths.

Ops without a registered replay twin make the tape *fail softly*: training
continues on the dynamic path, now with a :class:`CaptureBailoutWarning`
and a counter on :func:`engine_stats` so the fallback is observable.
``BatchNorm`` records its running-stat update as an effectful ``bn_stats``
op and captures like everything else; fixed-shape minibatch regimes capture
per-batch programs when ``TrainConfig.static_batches`` is set.
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd import kernels as _kernels
from repro.autograd import tensor as _tensor
from repro.autograd.ir.arena import global_pool, plan_arena
from repro.autograd.ir.passes import run_passes, strip_training
from repro.autograd.ir.program import (OpImpl, OpRecord, Program, SlotInfo,
                                       mark_variance, verify_program)
from repro.autograd.tensor import Tensor, _as_array, _reduce_extra_dims, _unbroadcast


class CaptureBailout(RuntimeError):
    """Raised when a replay precondition breaks (e.g. an input changed shape)."""


class CaptureBailoutWarning(RuntimeWarning):
    """A capture opportunity was abandoned and training fell back to dynamic."""


def _fresh_stats() -> Dict[str, object]:
    return {"traces": 0, "replays": 0, "bailouts": 0, "bailout_reasons": {}}


_STATS_LOCK = threading.Lock()
_STATS = _fresh_stats()


def note_bailout(reason: str, detail: str = "", warn: bool = True) -> None:
    """Count (and by default warn about) one abandoned capture opportunity."""
    with _STATS_LOCK:
        _STATS["bailouts"] += 1
        reasons = _STATS["bailout_reasons"]
        reasons[reason] = reasons.get(reason, 0) + 1
    if warn:
        warnings.warn(f"capture bailout ({reason}): {detail}",
                      CaptureBailoutWarning, stacklevel=3)


def engine_stats() -> Dict[str, object]:
    """Snapshot of this process's capture-engine counters."""
    with _STATS_LOCK:
        out = dict(_STATS)
        out["bailout_reasons"] = dict(out["bailout_reasons"])
        return out


def reset_engine_stats() -> None:
    global _STATS
    with _STATS_LOCK:
        _STATS = _fresh_stats()


try:  # pragma: no cover - scipy always ships _sparsetools today
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover
    _csr_tools = None


def _csr_into(matrix, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``matrix @ dense`` written into ``out`` without scipy's dispatch.

    ``csr_matvecs`` is exactly the kernel ``csr_matrix.__matmul__`` runs (it
    accumulates into a zeroed result), so values are bit-identical; skipping
    the wrapper avoids one result allocation and the per-call Python
    dispatch, which the dynamic engine pays on every spmm of every epoch.
    """
    if _csr_tools is None or dense.ndim != 2 or matrix.dtype != dense.dtype \
            or not out.flags.c_contiguous:
        np.copyto(out, matrix @ dense)
        return out
    out.fill(0)
    _csr_tools.csr_matvecs(matrix.shape[0], matrix.shape[1], dense.shape[1],
                           matrix.indptr, matrix.indices, matrix.data,
                           dense.ravel(), out.ravel())
    return out


def _state_buffer(op: "OpRecord", key: str, shape: tuple, dtype) -> np.ndarray:
    buf = op.state.get(key)
    if buf is None:
        buf = op.state[key] = np.empty(shape, dtype)
    return buf


def _scatter_sum_into(op: "OpRecord", key: str, values: np.ndarray,
                      index: np.ndarray, dim_size: int, aggregate) -> np.ndarray:
    """Buffered mirror of ``functional._scatter_sum`` (identical values)."""
    if aggregate is not None:
        flat = values.reshape(values.shape[0], -1)
        out = _state_buffer(op, key, (dim_size, flat.shape[1]), flat.dtype)
        _csr_into(aggregate, flat, out)
        return out.reshape((dim_size,) + values.shape[1:])
    out = _state_buffer(op, key, (dim_size,) + values.shape[1:], values.dtype)
    out.fill(0)
    np.add.at(out, index, values)
    return out


# ---------------------------------------------------------------------------
# Program representation — the datatypes live in the IR package
# (:mod:`repro.autograd.ir.program`); this module owns the replay-op
# registry that maps each recorded kind to its replay twin.
# ---------------------------------------------------------------------------
OPS: Dict[str, OpImpl] = {}


def _register(impl: OpImpl) -> OpImpl:
    OPS[impl.kind] = impl
    return impl


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------
class Tape:
    """Observes one dynamic iteration and records it as a flat program."""

    def __init__(self) -> None:
        self.slots: List[SlotInfo] = []
        self.ops: List[OpRecord] = []
        self.loss_slot: Optional[int] = None
        self.output_slot: Optional[int] = None
        self.failure: Optional[str] = None
        self._ids: Dict[int, int] = {}
        # Keep every traced tensor alive so ``id()`` keys stay unique for the
        # duration of the trace (dropped at finalize).
        self._keepalive: List[Tensor] = []

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def fail(self, reason: str) -> None:
        if self.failure is None:
            self.failure = reason

    # -- slot interning -------------------------------------------------
    def _add_slot(self, t: Tensor, producer: Optional[OpRecord]) -> int:
        index = len(self.slots)
        self.slots.append(SlotInfo(
            index=index, shape=t.data.shape, dtype=t.data.dtype,
            requires_grad=t.requires_grad, tensor=t, producer=producer))
        self._ids[id(t)] = index
        self._keepalive.append(t)
        return index

    def _slot_for(self, t: Tensor) -> int:
        slot = self._ids.get(id(t))
        if slot is None:
            slot = self._add_slot(t, producer=None)   # leaf: parameter or constant
        return slot

    # -- recording hooks (called from the dynamic op sites) -------------
    def record(self, kind: str, out: Tensor, inputs: Tuple[Tensor, ...],
               meta: Dict[str, object]) -> None:
        if self.failed:
            return
        try:
            impl = OPS.get(kind)
            if impl is None:
                self.fail(f"unsupported op {kind!r}")
                return
            ins = tuple(self._slot_for(t) for t in inputs)
            op = OpRecord(
                kind=kind, impl=impl, out=-1, ins=ins,
                prev=(), in_requires=tuple(t.requires_grad for t in inputs),
                in_shapes=tuple(t.data.shape for t in inputs),
                needs_backward=out.requires_grad, meta=dict(meta))
            op.out = self._add_slot(out, producer=op)
            op.prev = tuple(self._ids[id(p)] for p in out._prev)
            op.mode = impl.mode_fn(op) if impl.mode_fn is not None else impl.out_mode
            self.ops.append(op)
        except Exception as exc:  # never break the (real) dynamic epoch
            self.fail(f"record({kind}): {exc!r}")

    def note_backward(self, t: Tensor) -> None:
        """Called by ``Tensor.backward`` — identifies the loss slot."""
        if self.failed:
            return
        if self.loss_slot is not None:
            self.fail("multiple backward() calls in one traced iteration")
            return
        slot = self._ids.get(id(t))
        if slot is None or t.data.size != 1:
            self.fail("backward() on an untracked or non-scalar tensor")
            return
        self.loss_slot = slot

    def mark_output(self, t: Optional[Tensor]) -> None:
        """Name the prediction tensor (e.g. logits) as the program's output.

        Optional; enables :func:`build_inference_replay` to re-root the
        program for inference-only replays.  Call between the traced epoch
        and :meth:`finalize`.
        """
        if self.failed or t is None:
            return
        slot = self._ids.get(id(t))
        if slot is not None:
            self.output_slot = slot

    # -- planning --------------------------------------------------------
    def finalize(self, optimizer, scheduler, passes=None) -> Optional["Replay"]:
        """Turn the recording into a :class:`Replay` program (or ``None``).

        ``passes`` overrides the IR pass pipeline (``None`` runs the default
        :data:`repro.autograd.ir.passes.DEFAULT_PASSES`; ``()`` disables
        passes entirely).
        """
        if self.failed or self.loss_slot is None or not self.ops:
            if self.failure is None:
                self.failure = "no backward() observed during trace"
            note_bailout("trace", self.failure)
            return None
        try:
            return self._build(optimizer, scheduler, passes)
        except Exception as exc:   # defensive: planning must never break training
            self.fail(f"finalize: {exc!r}")
            note_bailout("finalize", repr(exc))
            return None

    def _build(self, optimizer, scheduler, passes=None) -> "Replay":
        # Lower the recording to the graph-program IR, verify it, and run
        # the optimization passes (fusion etc.) before scheduling.
        program = Program(slots=self.slots, ops=self.ops,
                          loss_slot=self.loss_slot, output_slot=self.output_slot)
        # Epoch-variance: parameters change under the optimiser, RNG ops draw
        # fresh masks, effectful ops must re-run; everything downstream must
        # be recomputed.  The rest is a pure function of graph constants —
        # folded into the values captured during the trace.  Runs before the
        # passes because fusion must not swallow foldable (invariant) links.
        mark_variance(program)
        verify_program(program)
        pass_stats = run_passes(program, OPS, passes)
        slots = program.slots

        forward_ops = [op for op in program.ops if slots[op.out].variant]

        # Mirror of ``Tensor.backward``'s iterative DFS, operating on slots.
        # The graph is isomorphic (prev tuples are the recorded ``_prev``
        # tuples; fused records splice their external parents in the same
        # nesting order), so the resulting order — and therefore the float
        # accumulation order of every multi-consumer gradient — is identical.
        prev_of = {op.out: op.prev for op in program.ops}
        order: List[int] = []
        visited: set = set()
        stack: List[Tuple[int, bool]] = [(self.loss_slot, False)]
        while stack:
            slot, processed = stack.pop()
            if processed:
                order.append(slot)
                continue
            if slot in visited:
                continue
            visited.add(slot)
            stack.append((slot, True))
            for parent in prev_of.get(slot, ()):
                if parent not in visited:
                    stack.append((parent, False))
        bwd_slots = list(reversed(order))

        plan, leased = plan_arena(program, forward_ops, bwd_slots,
                                  (self.loss_slot,), global_pool())
        plan["passes"] = pass_stats
        plan["ops_fused"] = sum(s.get("fused", 0) for s in pass_stats)

        # Backward schedule (producer ops in mirrored DFS order) and the
        # per-slot contribution count.  A slot receiving exactly one gradient
        # contribution can alias the contributed array directly — the dynamic
        # engine's defensive first-copy exists only because a later
        # contribution may accumulate in place, which the count rules out.
        producer = program.producer_map()
        backward_ops = [producer[slot] for slot in bwd_slots
                        if slot in producer and producer[slot].needs_backward]
        n_contrib: Dict[int, int] = {self.loss_slot: 1}
        for op in backward_ops:
            for s, requires in zip(op.ins, op.in_requires):
                if requires:
                    n_contrib[s] = n_contrib.get(s, 0) + 1

        leaves = [(info.index, info.tensor) for info in slots
                  if info.producer is None and not info.dead]
        values: List[Optional[np.ndarray]] = [None] * len(slots)
        for info in slots:
            if info.producer is not None and not info.variant:
                values[info.index] = info.tensor.data     # constant-folded

        # Drop tensor refs for op slots so the traced dynamic graph (and its
        # closures) can be garbage collected; leaves stay bound — replay
        # reads parameter data and accumulates into parameter gradients
        # through them.
        for info in slots:
            if info.producer is not None:
                info.tensor = None
        self._keepalive.clear()
        self._ids.clear()

        with _STATS_LOCK:
            _STATS["traces"] += 1
        return Replay(slots=slots, forward_ops=forward_ops, backward_ops=backward_ops,
                      n_contrib=n_contrib, loss_slot=self.loss_slot, leaves=leaves,
                      values=values, optimizer=optimizer, scheduler=scheduler,
                      plan=plan, program=program, leased=leased)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
class Replay:
    """A planned program replaying one training epoch with plain ndarrays."""

    def __init__(self, slots, forward_ops, backward_ops, n_contrib, loss_slot,
                 leaves, values, optimizer, scheduler, plan,
                 program=None, leased=None) -> None:
        self.slots = slots
        self.forward_ops = forward_ops
        self.backward_ops = backward_ops
        self.n_contrib = n_contrib
        self.loss_slot = loss_slot
        self.leaves = leaves
        self.values = values
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.plan = plan
        self.program = program
        self._leased = list(leased) if leased else []
        self.gradbuf: Dict[int, np.ndarray] = {}
        self.grads: List[Optional[np.ndarray]] = [None] * len(slots)
        self._touched: List[int] = []
        self._adam_groups = self._prepare_adam()
        self.epochs_replayed = 0
        # Pre-bound (kernel, op) sequences shave two attribute loads per op
        # per epoch off the replay interpreter loop.
        self._fwd_seq = [(op.impl.forward, op) for op in forward_ops]
        self._bwd_seq = [(op.impl.backward, op, op.out) for op in backward_ops]

    def release(self) -> None:
        """Return this replay's arena buffers to the process-wide pool.

        After release the replay must not run again; the trainer calls this
        once training (or a bailout) is done so the next ensemble member can
        recycle the storage.
        """
        if self._leased:
            arrays, self._leased = self._leased, []
            global_pool().release(arrays)

    def _prepare_adam(self):
        """Pre-resolve Adam's per-parameter buffers for the replay step.

        The replayed step runs the exact in-place ufunc sequence of
        ``optim.Adam.step`` (same scratch buffers, same order — change both
        together) minus the per-step buffer lookups; any other optimiser
        falls back to its own ``step()``.

        Contiguous same-dtype parameters are additionally laid out as
        segments of flat staging arrays (:meth:`_prepare_flat_adam`), so the
        common step is ~a dozen ufunc calls over one long array instead of a
        dozen per parameter.  Every op in the sequence is elementwise with
        scalar coefficients, so each element sees the exact per-parameter
        instruction stream — the update is bitwise identical.
        """
        from repro.autograd import optim as _optim

        opt = self.optimizer
        if type(opt) is not _optim.Adam:
            self._adam_flat = None
            self._adam_rest = []
            return None
        self._adam_flat = self._prepare_flat_adam(opt)
        groups = [(param, m, v,
                   opt._buffer(opt._scratch, index, param),
                   opt._buffer(opt._scratch2, index, param))
                  for index, (param, m, v)
                  in enumerate(zip(opt.parameters, opt._m, opt._v))]
        flat_params = {id(param) for grp in self._adam_flat
                       for param, _ in grp["segments"]}
        self._adam_rest = [grp for grp in groups
                           if id(grp[0]) not in flat_params]
        return groups

    @staticmethod
    def _prepare_flat_adam(opt):
        """Flat segment layout for :meth:`_adam_step`, cached on the optimizer.

        The running moments are copied into the flat ``fm``/``fv`` arrays
        once and the optimizer's ``_m``/``_v`` entries replaced with reshaped
        views of them, so a dynamic-engine ``step()`` (after a bail-out, or
        from a sibling batch replay) reads and writes the very same storage.
        Caching on the optimizer keeps every replay sharing one layout —
        re-planting per replay would strand earlier replays on stale arrays.
        """
        flat = getattr(opt, "_replay_flat_adam", None)
        if flat is not None:
            return flat
        by_dtype: Dict[object, List[int]] = {}
        for index, param in enumerate(opt.parameters):
            if param.grad is not None and param.data.flags.c_contiguous:
                by_dtype.setdefault(param.data.dtype, []).append(index)
        flat = []
        for dtype, indices in by_dtype.items():
            total = sum(opt.parameters[i].data.size for i in indices)
            group = {key: np.empty(total, dtype)
                     for key in ("fp", "fg", "fb", "ft", "fm", "fv")}
            segments = []
            offset = 0
            for i in indices:
                param = opt.parameters[i]
                run = slice(offset, offset + param.data.size)
                group["fm"][run] = opt._m[i].ravel()
                group["fv"][run] = opt._v[i].ravel()
                opt._m[i] = group["fm"][run].reshape(param.data.shape)
                opt._v[i] = group["fv"][run].reshape(param.data.shape)
                segments.append((param, run))
                offset = run.stop
            group["segments"] = segments
            flat.append(group)
        opt._replay_flat_adam = flat
        return flat

    def _adam_step(self) -> None:
        opt = self.optimizer
        opt._step += 1
        bias1 = 1.0 - opt.beta1 ** opt._step
        bias2 = 1.0 - opt.beta2 ** opt._step
        one_minus_beta1 = 1.0 - opt.beta1
        one_minus_beta2 = 1.0 - opt.beta2
        weight_decay, eps, lr = opt.weight_decay, opt.eps, opt.lr
        groups = self._adam_groups
        flat = self._adam_flat
        if flat and all(param.grad is not None
                        for grp in flat for param, _ in grp["segments"]):
            groups = self._adam_rest
            for grp in flat:
                segments = grp["segments"]
                fp, fg = grp["fp"], grp["fg"]
                buf, tmp = grp["fb"], grp["ft"]
                m, v = grp["fm"], grp["fv"]
                for param, run in segments:
                    fp[run] = param.data.ravel()
                    fg[run] = param.grad.ravel()
                grad = fg
                if weight_decay:
                    np.multiply(fp, weight_decay, out=buf)
                    buf += grad
                    grad = buf
                np.multiply(grad, one_minus_beta1, out=tmp)
                m *= opt.beta1
                m += tmp
                np.multiply(grad, grad, out=tmp)
                tmp *= one_minus_beta2
                v *= opt.beta2
                v += tmp
                np.divide(v, bias2, out=tmp)
                np.sqrt(tmp, out=tmp)
                tmp += eps
                np.divide(m, bias1, out=buf)
                buf /= tmp
                buf *= lr
                fp -= buf
                for param, run in segments:
                    np.copyto(param.data,
                              fp[run].reshape(param.data.shape))
        for param, m, v, buf, tmp in groups:
            grad = param.grad
            if grad is None:
                continue
            if weight_decay:
                np.multiply(param.data, weight_decay, out=buf)
                buf += grad
                grad = buf
            np.multiply(grad, one_minus_beta1, out=tmp)
            m *= opt.beta1
            m += tmp
            np.multiply(grad, grad, out=tmp)
            tmp *= one_minus_beta2
            v *= opt.beta2
            v += tmp
            np.divide(v, bias2, out=tmp)
            np.sqrt(tmp, out=tmp)
            tmp += eps
            np.divide(m, bias1, out=buf)
            buf /= tmp
            buf *= lr
            param.data -= buf

    def contribute(self, slot: int, grad: np.ndarray) -> None:
        """Mirror of ``Tensor._accumulate`` for one gradient contribution.

        Single-consumer slots (the common case, known from the plan) alias
        the contributed array instead of copying it — the dynamic engine's
        defensive first-copy only matters when a later contribution would
        accumulate in place, and no backward kernel mutates an array after
        contributing it.
        """
        info = self.slots[slot]
        tensor = info.tensor
        if tensor is not None:
            # Leaf (parameter or trained tensor): reuse the dynamic engine's
            # own accumulator — identical copy/add semantics, identical
            # parked-buffer recycling with ``Optimizer.zero_grad``.
            if tensor.requires_grad:
                tensor._accumulate(grad)
            return
        if not info.requires_grad:
            return
        grads = self.grads
        current = grads[slot]
        if current is None:
            if self.n_contrib.get(slot, 0) <= 1:
                grads[slot] = grad
            else:
                buf = self.gradbuf.get(slot)
                if buf is None:
                    buf = self.gradbuf[slot] = np.empty(info.shape, info.dtype)
                np.copyto(buf, grad)
                grads[slot] = buf
            self._touched.append(slot)
        else:
            current += grad

    def run_epoch(self, step_scheduler: bool = True) -> float:
        """One full ``forward → loss → backward → optimizer.step`` iteration.

        ``step_scheduler=False`` supports per-batch replays where the
        learning-rate schedule advances once per epoch, not once per step.
        """
        values = self.values
        slots = self.slots
        for slot, tensor in self.leaves:
            data = tensor.data
            if data.shape != slots[slot].shape or data.dtype != slots[slot].dtype:
                message = (f"input slot {slot} changed from "
                           f"{slots[slot].shape} to {data.shape}")
                note_bailout("replay_shape", message)
                raise CaptureBailout(message)
            values[slot] = data
        self.optimizer.zero_grad()
        for forward, op in self._fwd_seq:
            forward(op, self)
        loss_value = float(values[self.loss_slot])

        grads = self.grads
        for slot in self._touched:
            grads[slot] = None
        self._touched.clear()
        seed = getattr(self, "_seed_ones", None)
        if seed is None:
            seed = self._seed_ones = np.ones_like(values[self.loss_slot])
        self.contribute(self.loss_slot, seed)
        for backward, op, out_slot in self._bwd_seq:
            g = grads[out_slot]
            if g is not None:
                backward(op, self, g)

        if self._adam_groups is not None:
            self._adam_step()
        else:
            self.optimizer.step()
        if step_scheduler:
            self.scheduler.step()
        self.epochs_replayed += 1
        _STATS["replays"] += 1
        return loss_value


class InferenceReplay:
    """Forward-only replay of the stripped (inference) program.

    Built by :func:`build_inference_replay` from a trained :class:`Replay`:
    no backward schedule, no gradient buffers, no optimizer mirrors — the
    plan leases arena storage for the forward live-set only.  ``run()``
    refreshes the leaf slots (parameters update in place during training)
    and returns the raw output array (e.g. logits).
    """

    def __init__(self, program, forward_ops, leaves, values, plan, leased) -> None:
        self.program = program
        self.slots = program.slots
        self.output_slot = program.output_slot
        self.forward_ops = forward_ops
        self.leaves = leaves
        self.values = values
        self.plan = plan
        self._leased = list(leased) if leased else []
        self._fwd_seq = [(op.impl.forward, op) for op in forward_ops]

    def run(self) -> np.ndarray:
        values = self.values
        slots = self.slots
        for slot, tensor in self.leaves:
            data = tensor.data
            if data.shape != slots[slot].shape or data.dtype != slots[slot].dtype:
                message = (f"inference input slot {slot} changed from "
                           f"{slots[slot].shape} to {data.shape}")
                note_bailout("replay_shape", message)
                raise CaptureBailout(message)
            values[slot] = data
        for forward, op in self._fwd_seq:
            forward(op, self)
        return values[self.output_slot]

    def release(self) -> None:
        if self._leased:
            arrays, self._leased = self._leased, []
            global_pool().release(arrays)


def build_inference_replay(replay: Replay,
                           pool=None) -> Optional[InferenceReplay]:
    """Derive a forward-only replay for the trained program's output slot.

    Runs the :func:`~repro.autograd.ir.passes.strip_training` pass over the
    replay's program: stochastic regularisers are rewired out (eval
    semantics of inverted dropout), the loss head and backward-only ops are
    dropped, and the program is re-rooted at the slot named by
    :meth:`Tape.mark_output`.  Returns ``None`` when no output was marked or
    the program contains effectful ops (BatchNorm: eval-mode normalisation
    reads running stats, which the training-mode tape does not express).

    Constant-folded values carry over from the training replay; the derived
    program shares slot metadata read-only and owns its op records, buffers
    and value table, so both replays can run interleaved.
    """
    program = replay.program
    if program is None:
        return None
    stripped = strip_training(program)
    if stripped is None:
        return None
    verify_program(stripped, check_producers=False)
    slots = stripped.slots
    forward_ops = [op for op in stripped.ops if slots[op.out].variant]
    plan, leased = plan_arena(stripped, forward_ops, [],
                              (stripped.output_slot,), pool or global_pool())
    needed = {s for op in stripped.ops for s in op.ins}
    needed.add(stripped.output_slot)
    leaves = [(slot, tensor) for slot, tensor in replay.leaves if slot in needed]
    values: List[Optional[np.ndarray]] = list(replay.values)
    return InferenceReplay(program=stripped, forward_ops=forward_ops,
                           leaves=leaves, values=values, plan=plan,
                           leased=leased)


# ---------------------------------------------------------------------------
# Trace activation
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def tracing(tape: Tape):
    """Install ``tape`` as this thread's recording target for the duration."""
    if getattr(_tensor._TRACE, "tape", None) is not None:
        raise RuntimeError("capture traces cannot nest")
    _tensor._TRACE.tape = tape
    try:
        yield tape
    finally:
        _tensor._TRACE.tape = None


def supports_capture(model) -> bool:
    """Static pre-check for capture support; currently always true.

    ``BatchNorm`` — the one historical rejection — now records its
    running-stat update as an effectful ``bn_stats`` op, so its side effects
    replay exactly.  Models recording ops without a replay twin still fail
    softly at trace time (with a :class:`CaptureBailoutWarning`); the static
    check remains as an API hook for genuinely uncapturable modules.
    """
    return True


# ---------------------------------------------------------------------------
# Replay kernels.  Every forward/backward body mirrors the exact NumPy
# expressions (and evaluation order) of its dynamic twin in tensor.py /
# functional.py / sparse.py / kernels.py — that mirroring is what makes
# replayed epochs bit-identical, so change both sides together or not at all.
# ---------------------------------------------------------------------------
def _out(op: OpRecord, rt: Replay, value: np.ndarray) -> None:
    rt.values[op.out] = value


# -- elementwise arithmetic --------------------------------------------------
def _fwd_add(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.add(a, b, out=op.buffer))


def _bwd_add(op, rt, g):
    # The in_requires guards here (and in the other multi-operand kernels)
    # skip gradient expressions the dynamic closures compute and then
    # discard for constant operands — dropped work, identical values.
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(g, sb))


_register(OpImpl("add", _fwd_add, _bwd_add, out_mode="buffer"))


def _fwd_sub(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.subtract(a, b, out=op.buffer))


def _bwd_sub(op, rt, g):
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(-g, sb))


_register(OpImpl("sub", _fwd_sub, _bwd_sub, out_mode="buffer"))


def _fwd_mul(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.multiply(a, b, out=op.buffer))


def _bwd_mul(op, rt, g):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        if g.shape == sa:     # no unbroadcast reduction: multiply into a buffer
            rt.contribute(op.ins[0], np.multiply(
                g, b, out=_state_buffer(op, "ga", sa, g.dtype)))
        else:
            tmp = np.multiply(g, b, out=_state_buffer(op, "ga_tmp", g.shape, g.dtype))
            rt.contribute(op.ins[0], _unbroadcast(tmp, sa))
    if op.in_requires[1]:
        if g.shape == sb:
            rt.contribute(op.ins[1], np.multiply(
                g, a, out=_state_buffer(op, "gb", sb, g.dtype)))
        else:
            tmp = np.multiply(g, a, out=_state_buffer(op, "gb_tmp", g.shape, g.dtype))
            rt.contribute(op.ins[1], _unbroadcast(tmp, sb))


_register(OpImpl("mul", _fwd_mul, _bwd_mul, out_mode="buffer", bwd_reads_in=True))


def _fwd_div(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    _out(op, rt, np.divide(a, b, out=op.buffer))


def _bwd_div(op, rt, g):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g / b, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(-g * a / (b ** 2), sb))


_register(OpImpl("div", _fwd_div, _bwd_div, out_mode="buffer", bwd_reads_in=True))


def _fwd_neg(op, rt):
    _out(op, rt, np.negative(rt.values[op.ins[0]], out=op.buffer))


def _bwd_neg(op, rt, g):
    rt.contribute(op.ins[0], -g)


_register(OpImpl("neg", _fwd_neg, _bwd_neg, out_mode="buffer"))


def _fwd_pow(op, rt):
    # Deliberately ``**`` (not np.power with out=): ndarray.__pow__ has
    # bit-different fast paths for exponents 0.5 / 2 / -1 (sqrt, square,
    # reciprocal) that the dynamic engine hits — mirror them exactly.
    _out(op, rt, rt.values[op.ins[0]] ** op.meta["exponent"])


def _bwd_pow(op, rt, g):
    a = rt.values[op.ins[0]]
    exponent = op.meta["exponent"]
    rt.contribute(op.ins[0], g * exponent * a ** (exponent - 1))


_register(OpImpl("pow", _fwd_pow, _bwd_pow, bwd_reads_in=True))


# -- linear algebra ----------------------------------------------------------
def _matmul_mode(op) -> str:
    return "buffer" if all(len(shape) >= 2 for shape in op.in_shapes) else "fresh"


def _fwd_matmul(op, rt):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    if op.buffer is not None:
        _out(op, rt, np.matmul(a, b, out=op.buffer))
    else:
        _out(op, rt, a @ b)


def _bwd_matmul(op, rt, g):
    a, b = rt.values[op.ins[0]], rt.values[op.ins[1]]
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        if b.ndim == 1:
            grad_self = np.outer(g, b) if g.ndim == 1 else g[..., None] * b
            rt.contribute(op.ins[0], _reduce_extra_dims(grad_self, sa))
        elif g.ndim == 2 and b.ndim == 2:
            rt.contribute(op.ins[0], np.matmul(
                g, b.T, out=_state_buffer(op, "ga", sa, g.dtype)))
        else:
            grad_self = g @ b.swapaxes(-1, -2)
            rt.contribute(op.ins[0], _reduce_extra_dims(grad_self, sa))
    if op.in_requires[1]:
        if a.ndim == 1:
            rt.contribute(op.ins[1], _reduce_extra_dims(np.outer(a, g), sb))
        elif a.ndim == 2 and g.ndim == 2:
            rt.contribute(op.ins[1], np.matmul(
                a.T, g, out=_state_buffer(op, "gb", sb, g.dtype)))
        else:
            grad_other = a.swapaxes(-1, -2) @ g
            rt.contribute(op.ins[1], _reduce_extra_dims(grad_other, sb))


_register(OpImpl("matmul", _fwd_matmul, _bwd_matmul, out_mode="buffer",
                 bwd_reads_in=True, mode_fn=_matmul_mode))


def _fwd_transpose(op, rt):
    _out(op, rt, np.transpose(rt.values[op.ins[0]], op.meta["axes"]))


def _bwd_transpose(op, rt, g):
    axes = op.meta["axes"]
    inverse = None if axes is None else tuple(np.argsort(axes))
    rt.contribute(op.ins[0], np.transpose(g, inverse))


_register(OpImpl("transpose", _fwd_transpose, _bwd_transpose, out_mode="view"))


def _fwd_reshape(op, rt):
    _out(op, rt, rt.values[op.ins[0]].reshape(op.meta["shape"]))


def _bwd_reshape(op, rt, g):
    rt.contribute(op.ins[0], g.reshape(op.in_shapes[0]))


_register(OpImpl("reshape", _fwd_reshape, _bwd_reshape, out_mode="view"))


def _is_advanced_index(index) -> bool:
    """NumPy's basic-vs-advanced indexing rule: arrays/lists trigger a copy."""
    if isinstance(index, (np.ndarray, list)):
        return True
    if isinstance(index, tuple):
        return any(isinstance(item, (np.ndarray, list)) for item in index)
    return False


def _getitem_mode(op) -> str:
    # Basic (int/slice) indexing returns a *view* of the input buffer — it
    # must extend the base buffer's lifetime like transpose/reshape do, or
    # the arena planner could donate the storage while the view is live.
    return "fresh" if _is_advanced_index(op.meta["index"]) else "view"


def _fwd_getitem(op, rt):
    _out(op, rt, rt.values[op.ins[0]][op.meta["index"]])


def _bwd_getitem(op, rt, g):
    info = rt.slots[op.ins[0]]
    full = op.state.get("full")
    if full is None:
        full = op.state["full"] = np.zeros(info.shape, info.dtype)
        index = op.meta["index"]
        # ``np.add.at`` is unbuffered and slow; with unique integer indices
        # (the training-mask case) scattering one value per row, plain fancy
        # assignment lands the identical result.
        op.state["unique"] = (isinstance(index, np.ndarray)
                              and index.dtype.kind in "iu"
                              and index.ndim == 1
                              and np.unique(index).size == index.size)
    else:
        full.fill(0)
    if op.state["unique"]:
        full[op.meta["index"]] = g
    else:
        np.add.at(full, op.meta["index"], g)
    rt.contribute(op.ins[0], full)


_register(OpImpl("getitem", _fwd_getitem, _bwd_getitem, mode_fn=_getitem_mode))


# -- reductions --------------------------------------------------------------
def _fwd_sum(op, rt):
    _out(op, rt, np.sum(rt.values[op.ins[0]], axis=op.meta["axis"],
                        keepdims=op.meta["keepdims"], out=op.buffer))


def _bwd_sum(op, rt, g):
    axis, keepdims = op.meta["axis"], op.meta["keepdims"]
    expanded = g
    if axis is not None and not keepdims:
        expanded = np.expand_dims(g, axis)
    buf = _state_buffer(op, "grad", op.in_shapes[0], g.dtype)
    np.copyto(buf, expanded)    # broadcasting copy, like broadcast_to().copy()
    rt.contribute(op.ins[0], buf)


_register(OpImpl("sum", _fwd_sum, _bwd_sum, out_mode="buffer"))


def _fwd_max(op, rt):
    _out(op, rt, np.max(rt.values[op.ins[0]], axis=op.meta["axis"],
                        keepdims=op.meta["keepdims"], out=op.buffer))


def _bwd_max(op, rt, g):
    a = rt.values[op.ins[0]]
    out_data = rt.values[op.out]
    axis, keepdims = op.meta["axis"], op.meta["keepdims"]
    expanded_out = out_data
    expanded_grad = g
    if axis is not None and not keepdims:
        expanded_out = np.expand_dims(out_data, axis)
        expanded_grad = np.expand_dims(g, axis)
    mask = (a == expanded_out).astype(a.dtype)
    mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
    rt.contribute(op.ins[0], mask * expanded_grad)


_register(OpImpl("max", _fwd_max, _bwd_max, out_mode="buffer",
                 bwd_reads_in=True, bwd_reads_out=True))


# -- elementwise nonlinearities ----------------------------------------------
def _fwd_exp(op, rt):
    _out(op, rt, np.exp(rt.values[op.ins[0]], out=op.buffer))


def _bwd_exp(op, rt, g):
    rt.contribute(op.ins[0], g * rt.values[op.out])


_register(OpImpl("exp", _fwd_exp, _bwd_exp, out_mode="buffer", bwd_reads_out=True))


def _fwd_log(op, rt):
    _out(op, rt, np.log(rt.values[op.ins[0]], out=op.buffer))


def _bwd_log(op, rt, g):
    rt.contribute(op.ins[0], g / rt.values[op.ins[0]])


_register(OpImpl("log", _fwd_log, _bwd_log, out_mode="buffer", bwd_reads_in=True))


def _fwd_relu(op, rt):
    a = rt.values[op.ins[0]]
    _out(op, rt, np.maximum(a, 0.0, out=op.buffer))
    if op.needs_backward:
        mask = op.state.get("mask")
        if mask is None:
            mask = op.state["mask"] = np.empty(a.shape, dtype=bool)
        np.greater(a, 0, out=mask)


def _bwd_relu(op, rt, g):
    rt.contribute(op.ins[0], np.multiply(
        g, op.state["mask"], out=_state_buffer(op, "grad", op.in_shapes[0], g.dtype)))


_register(OpImpl("relu", _fwd_relu, _bwd_relu, out_mode="buffer"))


def _fwd_tanh(op, rt):
    _out(op, rt, np.tanh(rt.values[op.ins[0]], out=op.buffer))


def _bwd_tanh(op, rt, g):
    out_data = rt.values[op.out]
    rt.contribute(op.ins[0], g * (1.0 - out_data ** 2))


_register(OpImpl("tanh", _fwd_tanh, _bwd_tanh, out_mode="buffer", bwd_reads_out=True))


def _fwd_sigmoid(op, rt):
    # 1.0 / (1.0 + np.exp(-x)) computed stage by stage into the arena buffer.
    a = rt.values[op.ins[0]]
    buf = op.buffer
    np.negative(a, out=buf)
    np.exp(buf, out=buf)
    np.add(buf, 1.0, out=buf)
    np.divide(1.0, buf, out=buf)
    _out(op, rt, buf)


def _bwd_sigmoid(op, rt, g):
    out_data = rt.values[op.out]
    rt.contribute(op.ins[0], g * out_data * (1.0 - out_data))


_register(OpImpl("sigmoid", _fwd_sigmoid, _bwd_sigmoid, out_mode="buffer",
                 bwd_reads_out=True))


def _fwd_abs(op, rt):
    a = rt.values[op.ins[0]]
    _out(op, rt, np.abs(a, out=op.buffer))
    if op.needs_backward:
        sign = op.state.get("sign")
        if sign is None:
            sign = op.state["sign"] = np.empty(a.shape, a.dtype)
        np.sign(a, out=sign)


def _bwd_abs(op, rt, g):
    rt.contribute(op.ins[0], g * op.state["sign"])


_register(OpImpl("abs", _fwd_abs, _bwd_abs, out_mode="buffer"))


def _fwd_elu(op, rt):
    # Mirror of _elu_forward with the np.where replaced by a masked copy
    # into a persistent buffer (same selected values, no fresh arrays).
    a = rt.values[op.ins[0]]
    alpha = op.meta["alpha"]
    positive = _state_buffer(op, "positive", a.shape, np.bool_)
    np.greater(a, 0, out=positive)
    out = _state_buffer(op, "out", a.shape, a.dtype)
    np.minimum(a, 0.0, out=out)
    np.expm1(out, out=out)
    out *= alpha
    np.copyto(out, a, where=positive)
    _out(op, rt, out)
    if op.needs_backward:
        local = _state_buffer(op, "local", a.shape, a.dtype)
        np.minimum(a, 0.0, out=local)
        np.exp(local, out=local)
        np.multiply(alpha, local, out=local)
        local[positive] = 1.0
        op.state["local"] = local


def _bwd_elu(op, rt, g):
    rt.contribute(op.ins[0], np.multiply(
        g, op.state["local"], out=_state_buffer(op, "grad", op.in_shapes[0], g.dtype)))


_register(OpImpl("elu", _fwd_elu, _bwd_elu))


def _fwd_leaky_relu(op, rt):
    a = rt.values[op.ins[0]]
    positive = _state_buffer(op, "positive", a.shape, np.bool_)
    np.greater(a, 0, out=positive)
    out = _state_buffer(op, "out", a.shape, a.dtype)
    np.multiply(a, op.meta["negative_slope"], out=out)
    np.copyto(out, a, where=positive)
    _out(op, rt, out)


def _bwd_leaky_relu(op, rt, g):
    grad = _state_buffer(op, "grad", op.in_shapes[0], g.dtype)
    np.multiply(g, op.meta["negative_slope"], out=grad)
    np.copyto(grad, g, where=op.state["positive"])
    rt.contribute(op.ins[0], grad)


_register(OpImpl("leaky_relu", _fwd_leaky_relu, _bwd_leaky_relu))


# -- softmax family ----------------------------------------------------------
def _fwd_softmax(op, rt):
    _out(op, rt, F.softmax_array(rt.values[op.ins[0]], axis=op.meta["axis"]))


def _bwd_softmax(op, rt, g):
    out_data = rt.values[op.out]
    axis = op.meta["axis"]
    dot = (g * out_data).sum(axis=axis, keepdims=True)
    rt.contribute(op.ins[0], out_data * (g - dot))


_register(OpImpl("softmax", _fwd_softmax, _bwd_softmax, bwd_reads_out=True))


def _fwd_log_softmax(op, rt):
    out_data = F.log_softmax_array(rt.values[op.ins[0]], axis=op.meta["axis"])
    _out(op, rt, out_data)
    if op.needs_backward:
        op.state["soft"] = np.exp(out_data)


def _bwd_log_softmax(op, rt, g):
    axis = op.meta["axis"]
    rt.contribute(op.ins[0], g - op.state["soft"] * g.sum(axis=axis, keepdims=True))


_register(OpImpl("log_softmax", _fwd_log_softmax, _bwd_log_softmax))


# -- regularisation (per-epoch RNG refresh) ----------------------------------
def _fwd_dropout(op, rt):
    # Same uniform draw, same compare, same 0/1-cast and same rescaling
    # division as the dynamic op — staged through three persistent buffers
    # so a replayed epoch allocates nothing for the mask.
    a = rt.values[op.ins[0]]
    p = op.meta["p"]
    state = op.state
    if "mask" not in state:
        state["uniform"] = np.empty(a.shape, dtype=np.float64)
        state["keep"] = np.empty(a.shape, dtype=bool)
        state["mask"] = np.empty(a.shape, dtype=a.dtype)
    mask = state["mask"]
    op.meta["rng"].random(out=state["uniform"])
    np.greater_equal(state["uniform"], p, out=state["keep"])
    # One pass: bool upcasts to exact 0.0 / 1.0 inside the divide, so this
    # is bitwise the dynamic twin's ``mask.astype(dtype) / (1 - p)``.
    np.divide(state["keep"], 1.0 - p, out=mask)
    _out(op, rt, np.multiply(a, mask, out=op.buffer))


def _bwd_dropout(op, rt, g):
    rt.contribute(op.ins[0], np.multiply(
        g, op.state["mask"], out=_state_buffer(op, "grad", op.in_shapes[0], g.dtype)))


_register(OpImpl("dropout", _fwd_dropout, _bwd_dropout, out_mode="buffer", rng=True))


def _fwd_drop_node(op, rt):
    a = rt.values[op.ins[0]]
    p = op.meta["p"]
    mask = _as_array((op.meta["rng"].random((a.shape[0], 1)) >= p) / (1.0 - p))
    op.state["mask"] = mask
    _out(op, rt, np.multiply(a, mask, out=op.buffer))


def _bwd_drop_node(op, rt, g):
    rt.contribute(op.ins[0], g * op.state["mask"])


_register(OpImpl("drop_node", _fwd_drop_node, _bwd_drop_node, out_mode="buffer",
                 rng=True))


# -- losses ------------------------------------------------------------------
def _fwd_cross_entropy(op, rt):
    out_data, log_probs = F._cross_entropy_forward(
        rt.values[op.ins[0]], op.meta["target"], op.meta["reduction"])
    _out(op, rt, out_data)
    if op.needs_backward:
        op.state["log_probs"] = log_probs
        op.state["soft"] = np.exp(log_probs)


def _bwd_cross_entropy(op, rt, g):
    # Buffered mirror of functional._cross_entropy_backward: same broadcast
    # copy, same one-per-row scatter, same row-sum correction.
    log_probs = op.state["log_probs"]
    reduction = op.meta["reduction"]
    n = log_probs.shape[0]
    rows = op.state.get("rows")
    if rows is None:
        rows = op.state["rows"] = np.arange(n)
        op.state["scattered"] = np.zeros(log_probs.shape, log_probs.dtype)
    if reduction == "mean":
        per_row = np.broadcast_to(g * np.asarray(1.0 / n, dtype=log_probs.dtype),
                                  (n,)).copy()
    elif reduction == "sum":
        per_row = np.broadcast_to(g, (n,)).copy()
    else:
        per_row = g
    scattered = op.state["scattered"]
    scattered[rows, op.meta["target"]] = -per_row
    grad = scattered - op.state["soft"] * scattered.sum(axis=-1, keepdims=True)
    scattered[rows, op.meta["target"]] = 0.0    # keep off-target entries zero
    rt.contribute(op.ins[0], grad)


_register(OpImpl("cross_entropy", _fwd_cross_entropy, _bwd_cross_entropy))


# -- shape manipulation ------------------------------------------------------
def _fwd_concat(op, rt):
    parts = [rt.values[s] for s in op.ins]
    _out(op, rt, np.concatenate(parts, axis=op.meta["axis"], out=op.buffer))


def _bwd_concat(op, rt, g):
    axis = op.meta["axis"]
    offsets = op.state.get("offsets")
    if offsets is None:
        sizes = [shape[axis] for shape in op.in_shapes]
        offsets = op.state["offsets"] = np.cumsum([0] + sizes)
    for position, (slot, start, stop) in enumerate(
            zip(op.ins, offsets[:-1], offsets[1:])):
        if not op.in_requires[position]:
            continue
        index = [slice(None)] * g.ndim
        index[axis] = slice(start, stop)
        rt.contribute(slot, g[tuple(index)])


_register(OpImpl("concat", _fwd_concat, _bwd_concat, out_mode="buffer"))


def _fwd_stack(op, rt):
    parts = [rt.values[s] for s in op.ins]
    _out(op, rt, np.stack(parts, axis=op.meta["axis"], out=op.buffer))


def _bwd_stack(op, rt, g):
    slices = np.moveaxis(g, op.meta["axis"], 0)
    for position, (slot, piece) in enumerate(zip(op.ins, slices)):
        if op.in_requires[position]:
            rt.contribute(slot, piece)


_register(OpImpl("stack", _fwd_stack, _bwd_stack, out_mode="buffer"))


# -- gather / scatter --------------------------------------------------------
def _fwd_index_select(op, rt):
    a = rt.values[op.ins[0]]
    _out(op, rt, np.take(a, op.meta["index"], axis=0, out=op.buffer))


def _bwd_index_select(op, rt, g):
    rt.contribute(op.ins[0], _scatter_sum_into(
        op, "grad", g, op.meta["index"], op.in_shapes[0][0], op.meta["scatter"]))


_register(OpImpl("index_select", _fwd_index_select, _bwd_index_select,
                 out_mode="buffer"))


def _fwd_scatter_add(op, rt):
    _out(op, rt, _scatter_sum_into(op, "out", rt.values[op.ins[0]],
                                   op.meta["index"], op.meta["dim_size"],
                                   op.meta["aggregate"]))


def _bwd_scatter_add(op, rt, g):
    rt.contribute(op.ins[0], g[op.meta["index"]])


_register(OpImpl("scatter_add", _fwd_scatter_add, _bwd_scatter_add))


def _fwd_attn_gather_scatter(op, rt):
    # Fused attention aggregation: the exact index_select → broadcast-mul →
    # scatter_add kernels of the ops it replaces, staged through private
    # scratch so the gathered features and the weighted product never take
    # arena slots or pay three dispatches.  ``alpha`` arrives un-reshaped;
    # the (E, H) → (E, H, 1) view is free and value-preserving.
    h = rt.values[op.ins[0]]
    alpha = rt.values[op.ins[1]].reshape(op.meta["alpha_shape"])
    index = op.meta["gather_index"]
    gathered = _state_buffer(op, "gathered", (len(index),) + h.shape[1:],
                             h.dtype)
    np.take(h, index, axis=0, out=gathered)
    product = np.multiply(gathered, alpha,
                          out=_state_buffer(op, "product", gathered.shape,
                                            gathered.dtype))
    _out(op, rt, _scatter_sum_into(op, "out", product, op.meta["index"],
                                   op.meta["dim_size"], op.meta["aggregate"]))


def _bwd_attn_gather_scatter(op, rt, g):
    # scatter_add backward first (gather the node grads to edges — same
    # values as ``g[index]``), then the mul / reshape / index_select
    # backwards verbatim, contributing in the unfused schedule's order:
    # alpha before the gathered features.
    gedge = _state_buffer(op, "gedge", op.state["product"].shape, g.dtype)
    np.take(g, op.meta["index"], axis=0, out=gedge)
    if op.in_requires[1]:
        tmp = np.multiply(gedge, op.state["gathered"],
                          out=_state_buffer(op, "gb_tmp", gedge.shape, g.dtype))
        rt.contribute(op.ins[1],
                      _unbroadcast(tmp, op.meta["alpha_shape"])
                      .reshape(op.in_shapes[1]))
    if op.in_requires[0]:
        alpha = rt.values[op.ins[1]].reshape(op.meta["alpha_shape"])
        np.multiply(gedge, alpha, out=gedge)
        rt.contribute(op.ins[0], _scatter_sum_into(
            op, "grad_h", gedge, op.meta["gather_index"],
            op.in_shapes[0][0], op.meta["gather_scatter"]))


_register(OpImpl("attn_gather_scatter", _fwd_attn_gather_scatter,
                 _bwd_attn_gather_scatter, bwd_reads_in=True))


def _fwd_scatter_max(op, rt):
    src = rt.values[op.ins[0]]
    index = op.meta["index"]
    dim_size = op.meta["dim_size"]
    out_data = np.full((dim_size,) + src.shape[1:], -np.inf, dtype=src.dtype)
    np.maximum.at(out_data, index, src)
    empty = ~np.isfinite(out_data)
    out_data[empty] = 0.0
    _out(op, rt, out_data)
    if op.needs_backward:
        argmax_mask = (src == out_data[index]) & ~empty[index]
        tie_counts = np.zeros(out_data.shape, dtype=src.dtype)
        np.add.at(tie_counts, index, argmax_mask.astype(src.dtype))
        tie_counts = np.maximum(tie_counts, 1.0)
        op.state["argmax_mask"] = argmax_mask
        op.state["tie_counts"] = tie_counts


def _bwd_scatter_max(op, rt, g):
    index = op.meta["index"]
    rt.contribute(op.ins[0], op.state["argmax_mask"] * g[index]
                  / op.state["tie_counts"][index])


_register(OpImpl("scatter_max", _fwd_scatter_max, _bwd_scatter_max))


def _fwd_segment_softmax(op, rt):
    # Buffered mirror of functional.segment_softmax_array.  The per-group
    # maximum runs as a sort-once + ``maximum.reduceat`` instead of the
    # unbuffered ``np.maximum.at`` loop — max is exact and order-free, so the
    # values are identical; empty groups get the same -inf → 0 treatment.
    scores = rt.values[op.ins[0]]
    index = op.meta["index"]
    dim_size = op.meta["dim_size"]
    state = op.state
    if "perm" not in state:
        perm = state["perm"] = np.argsort(index, kind="stable")
        sorted_index = index[perm]
        starts = np.searchsorted(sorted_index, np.arange(dim_size))
        state["starts"] = np.minimum(starts, max(index.shape[0] - 1, 0))
        state["empty"] = np.bincount(index, minlength=dim_size) == 0
    group_shape = (dim_size,) + scores.shape[1:]
    gathered = np.take(scores, state["perm"], axis=0,
                       out=_state_buffer(op, "gathered", scores.shape, scores.dtype))
    group_max = _state_buffer(op, "group_max", group_shape, scores.dtype)
    np.maximum.reduceat(gathered, state["starts"], axis=0, out=group_max)
    group_max[state["empty"]] = -np.inf
    group_max[~np.isfinite(group_max)] = 0.0
    spread = np.take(group_max, index, axis=0,
                     out=_state_buffer(op, "spread", scores.shape, scores.dtype))
    exp = _state_buffer(op, "exp", scores.shape, scores.dtype)
    np.subtract(scores, spread, out=exp)
    np.exp(exp, out=exp)
    denom = _scatter_sum_into(op, "denom", exp, index, dim_size,
                              op.meta["aggregate"])
    np.maximum(denom, 1e-16, out=denom)
    np.take(denom, index, axis=0, out=spread)
    _out(op, rt, np.divide(exp, spread, out=op.buffer))


def _bwd_segment_softmax(op, rt, g):
    out_data = rt.values[op.out]
    index = op.meta["index"]
    weighted = g * out_data
    group_dot = _scatter_sum_into(op, "dot", weighted, index,
                                  op.meta["dim_size"], op.meta["aggregate"])
    rt.contribute(op.ins[0], out_data * (g - group_dot[index]))


_register(OpImpl("segment_softmax", _fwd_segment_softmax, _bwd_segment_softmax,
                 out_mode="buffer", bwd_reads_out=True))


# -- sparse / fused kernels --------------------------------------------------
def _spmm_mode(op) -> str:
    return "buffer" if len(op.in_shapes[0]) == 2 else "fresh"


def _fwd_spmm(op, rt):
    dense = rt.values[op.ins[0]]
    if op.buffer is not None:
        _out(op, rt, _csr_into(op.meta["sparse"].matrix, dense, op.buffer))
    else:
        _out(op, rt, op.meta["sparse"].matrix @ dense)


def _bwd_spmm(op, rt, g):
    sparse = op.meta["sparse"]
    if g.ndim == 2:
        buf = _state_buffer(op, "grad", op.in_shapes[0], g.dtype)
        rt.contribute(op.ins[0], _csr_into(sparse.transposed_csr, g, buf))
    else:
        rt.contribute(op.ins[0], sparse.transposed_csr @ g)


_register(OpImpl("spmm", _fwd_spmm, _bwd_spmm, out_mode="buffer",
                 mode_fn=_spmm_mode))


def _fwd_spmm_bias_act(op, rt):
    # Inline mirror of kernels.spmm_bias_act_forward with every product
    # landing in a persistent buffer: A @ (X W) or (A X) @ W, bias added
    # in place after propagation, fused activation applied in place.  The
    # leaky_relu/elu branches stage the same masked expressions the dynamic
    # kernel (and the composed functional ops the fusion pass collapses)
    # evaluate, with the elu gradient local computed from the
    # *pre-activation* value — reconstructing it from the output would not
    # be bit-identical.
    operator = op.meta["operator"]
    x = rt.values[op.ins[0]]
    weight = rt.values[op.ins[1]]
    out = op.buffer
    if op.meta["prop_first"]:
        propagated = _state_buffer(op, "propagated", x.shape, x.dtype)
        _csr_into(operator.matrix, x, propagated)
        np.matmul(propagated, weight, out=out)
    else:
        transformed = _state_buffer(op, "transformed",
                                    (x.shape[0], weight.shape[1]), x.dtype)
        np.matmul(x, weight, out=transformed)
        _csr_into(operator.matrix, transformed, out)
    if len(op.ins) > 2:
        out += rt.values[op.ins[2]]
    activation = op.meta["activation"]
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    elif activation == "leaky_relu":
        positive = _state_buffer(op, "positive", out.shape, np.bool_)
        np.greater(out, 0, out=positive)
        negative = _state_buffer(op, "negative", out.shape, np.bool_)
        np.logical_not(positive, out=negative)
        np.multiply(out, _kernels.FUSED_NEGATIVE_SLOPE, out=out, where=negative)
    elif activation == "elu":
        positive = _state_buffer(op, "positive", out.shape, np.bool_)
        np.greater(out, 0, out=positive)
        if op.needs_backward:
            local = _state_buffer(op, "local", out.shape, out.dtype)
            np.minimum(out, 0.0, out=local)
            np.exp(local, out=local)
            local[positive] = 1.0
        scratch = _state_buffer(op, "scratch", out.shape, out.dtype)
        np.minimum(out, 0.0, out=scratch)
        np.expm1(scratch, out=scratch)
        negative = _state_buffer(op, "negative", out.shape, np.bool_)
        np.logical_not(positive, out=negative)
        np.copyto(out, scratch, where=negative)
    _out(op, rt, out)
    if op.needs_backward and activation == "relu":
        mask = _state_buffer(op, "relu_mask", out.shape, np.bool_)
        np.greater(out, 0, out=mask)


def _bwd_spmm_bias_act(op, rt, g):
    operator = op.meta["operator"]
    x = rt.values[op.ins[0]]
    weight = rt.values[op.ins[1]]
    activation = op.meta["activation"]
    if activation == "relu":
        g = g * op.state["relu_mask"]
    elif activation == "leaky_relu":
        grad = _state_buffer(op, "act_grad", g.shape, g.dtype)
        np.multiply(g, _kernels.FUSED_NEGATIVE_SLOPE, out=grad)
        np.copyto(grad, g, where=op.state["positive"])
        g = grad
    elif activation == "elu":
        g = np.multiply(g, op.state["local"],
                        out=_state_buffer(op, "act_grad", g.shape, g.dtype))
    if len(op.ins) > 2 and op.in_requires[2]:
        rt.contribute(op.ins[2], g.sum(axis=0))
    if op.meta["prop_first"]:
        if op.in_requires[1]:
            wgrad = _state_buffer(op, "wgrad", op.in_shapes[1], g.dtype)
            rt.contribute(op.ins[1], np.matmul(op.state["propagated"].T, g, out=wgrad))
        if op.in_requires[0]:
            xgrad = _state_buffer(op, "xgrad", op.in_shapes[0], g.dtype)
            rt.contribute(op.ins[0],
                          _csr_into(operator.transposed_csr, g @ weight.T, xgrad))
    else:
        support = _state_buffer(op, "support", g.shape, g.dtype)
        _csr_into(operator.transposed_csr, g, support)
        if op.in_requires[1]:
            wgrad = _state_buffer(op, "wgrad", op.in_shapes[1], g.dtype)
            rt.contribute(op.ins[1], np.matmul(x.T, support, out=wgrad))
        if op.in_requires[0]:
            xgrad = _state_buffer(op, "xgrad", op.in_shapes[0], g.dtype)
            rt.contribute(op.ins[0], np.matmul(support, weight.T, out=xgrad))


_register(OpImpl("spmm_bias_act", _fwd_spmm_bias_act, _bwd_spmm_bias_act,
                 out_mode="buffer", bwd_reads_in=True))


def _gspmm_operands(op, rt):
    """Resolve the (lhs, rhs) replay values of a gspmm/gsddmm record."""
    position = 0
    lhs = rhs = None
    lhs_index = rhs_index = None
    if op.meta["has_lhs"]:
        lhs_index = position
        lhs = rt.values[op.ins[position]]
        position += 1
    if op.meta["has_rhs"]:
        rhs_index = position
        rhs = rt.values[op.ins[position]]
    return lhs, rhs, lhs_index, rhs_index


def _fwd_gspmm(op, rt):
    # The forward recomputes the exact expressions of kernels.gspmm_forward;
    # only the max reduction's argmax mask and tie counts persist (they are
    # private fresh arrays) — the mul/mean intermediates are re-derived from
    # the live input slots at backward time (bwd_reads_in keeps them alive),
    # so no state entry ever aliases a reusable arena buffer.
    lhs, rhs, _, _ = _gspmm_operands(op, rt)
    state = {} if op.needs_backward and op.meta["reduce"] == "max" else None
    out = _kernels.gspmm_forward(op.meta["block"], op.meta["op"],
                                 op.meta["reduce"], lhs, rhs, state=state)
    if state is not None:
        op.state["argmax_mask"] = state["argmax_mask"]
        op.state["tie_counts"] = state["tie_counts"]
    _out(op, rt, out)


def _bwd_gspmm(op, rt, g):
    block = op.meta["block"]
    reduce = op.meta["reduce"]
    lhs, rhs, lhs_index, rhs_index = _gspmm_operands(op, rt)
    state = {}
    if op.meta["op"] == "mul":
        gathered = lhs[block.u]
        state["gathered"] = gathered
        state["rhs_b"] = _kernels._broadcast_edge_operand(rhs, gathered.ndim)
    if reduce == "mean":
        inv_deg = block.inverse_degrees(g.dtype)
        state["inv_deg"] = inv_deg.reshape((block.num_nodes,)
                                           + (1,) * (g.ndim - 1))
    elif reduce == "max":
        state["argmax_mask"] = op.state["argmax_mask"]
        state["tie_counts"] = op.state["tie_counts"]
    lhs_shape = op.in_shapes[lhs_index] \
        if lhs_index is not None and op.in_requires[lhs_index] else None
    rhs_shape = op.in_shapes[rhs_index] \
        if rhs_index is not None and op.in_requires[rhs_index] else None
    grad_lhs, grad_rhs = _kernels.gspmm_backward(
        block, op.meta["op"], reduce, g, state, lhs_shape, rhs_shape)
    if grad_lhs is not None:
        rt.contribute(op.ins[lhs_index], grad_lhs)
    if grad_rhs is not None:
        rt.contribute(op.ins[rhs_index], grad_rhs)


_register(OpImpl("gspmm", _fwd_gspmm, _bwd_gspmm, bwd_reads_in=True))


def _fwd_gsddmm(op, rt):
    lhs, rhs, _, _ = _gspmm_operands(op, rt)
    _out(op, rt, _kernels.gsddmm_forward(
        op.meta["block"], op.meta["op"], lhs, rhs,
        op.meta["lhs_target"], op.meta["rhs_target"]))


def _bwd_gsddmm(op, rt, g):
    block = op.meta["block"]
    kind = op.meta["op"]
    lhs, rhs, lhs_index, rhs_index = _gspmm_operands(op, rt)
    state = {}
    if kind in ("mul", "dot"):
        # Re-gather the operands the product rule reads (cheap views/takes
        # from the still-live input slots, never stale state).
        if lhs is not None:
            state["left"] = _kernels._gsddmm_operand(
                block, lhs, op.meta["lhs_target"])
        if rhs is not None:
            state["right"] = _kernels._gsddmm_operand(
                block, rhs, op.meta["rhs_target"])
    lhs_shape = op.in_shapes[lhs_index] \
        if lhs_index is not None and op.in_requires[lhs_index] else None
    rhs_shape = op.in_shapes[rhs_index] \
        if rhs_index is not None and op.in_requires[rhs_index] else None
    grad_lhs, grad_rhs = _kernels.gsddmm_backward(
        block, kind, g, state, lhs_shape, rhs_shape,
        op.meta["lhs_target"], op.meta["rhs_target"])
    if grad_lhs is not None:
        rt.contribute(op.ins[lhs_index], grad_lhs)
    if grad_rhs is not None:
        rt.contribute(op.ins[rhs_index], grad_rhs)


_register(OpImpl("gsddmm", _fwd_gsddmm, _bwd_gsddmm, bwd_reads_in=True))


# -- fused elementwise chains (created by the IR fusion pass) ----------------
def _stage_key(index: int, name: str) -> str:
    return f"s{index}_{name}"


def _fwd_ew_chain(op, rt):
    # One arena visit for a run of mask-backward elementwise ops, staged in
    # place on the output buffer.  Every stage evaluates exactly the
    # expressions of its standalone twin (same RNG draws, same masked
    # copies), reading its input *before* overwriting it, so the chain's
    # values — and every stage-local backward mask — are bit-identical to
    # the unfused program.
    values = rt.values
    buf = op.buffer
    needs = op.needs_backward
    leader = op.meta["leader"]
    if leader is not None:
        a, b = values[op.ins[0]], values[op.ins[1]]
        if leader == "add":
            np.add(a, b, out=buf)
        else:
            np.subtract(a, b, out=buf)
        src = buf
    else:
        src = values[op.ins[0]]
    for index, (kind, meta) in enumerate(op.meta["stages"]):
        if kind == "relu":
            if needs:
                mask = _state_buffer(op, _stage_key(index, "mask"),
                                     buf.shape, np.bool_)
                np.greater(src, 0, out=mask)
            np.maximum(src, 0.0, out=buf)
        elif kind == "leaky_relu":
            slope = meta["negative_slope"]
            positive = _state_buffer(op, _stage_key(index, "positive"),
                                     buf.shape, np.bool_)
            np.greater(src, 0, out=positive)
            if src is buf:
                negative = _state_buffer(op, _stage_key(index, "negative"),
                                         buf.shape, np.bool_)
                np.logical_not(positive, out=negative)
                np.multiply(buf, slope, out=buf, where=negative)
            else:
                np.multiply(src, slope, out=buf)
                np.copyto(buf, src, where=positive)
        elif kind == "elu":
            alpha = meta["alpha"]
            positive = _state_buffer(op, _stage_key(index, "positive"),
                                     buf.shape, np.bool_)
            np.greater(src, 0, out=positive)
            if needs:
                # The gradient local must come from the pre-activation value.
                local = _state_buffer(op, _stage_key(index, "local"),
                                      buf.shape, buf.dtype)
                np.minimum(src, 0.0, out=local)
                np.exp(local, out=local)
                np.multiply(alpha, local, out=local)
                local[positive] = 1.0
            if src is buf:
                scratch = _state_buffer(op, _stage_key(index, "scratch"),
                                        buf.shape, buf.dtype)
                np.minimum(buf, 0.0, out=scratch)
                np.expm1(scratch, out=scratch)
                scratch *= alpha
                negative = _state_buffer(op, _stage_key(index, "negative"),
                                         buf.shape, np.bool_)
                np.logical_not(positive, out=negative)
                np.copyto(buf, scratch, where=negative)
            else:
                np.minimum(src, 0.0, out=buf)
                np.expm1(buf, out=buf)
                buf *= alpha
                np.copyto(buf, src, where=positive)
        elif kind == "dropout":
            p = meta["p"]
            uniform = _state_buffer(op, _stage_key(index, "uniform"),
                                    buf.shape, np.float64)
            keep = _state_buffer(op, _stage_key(index, "keep"),
                                 buf.shape, np.bool_)
            mask = _state_buffer(op, _stage_key(index, "mask"),
                                 buf.shape, buf.dtype)
            meta["rng"].random(out=uniform)
            np.greater_equal(uniform, p, out=keep)
            # bool upcasts to exact 0.0 / 1.0 inside the divide (one pass).
            np.divide(keep, 1.0 - p, out=mask)
            np.multiply(src, mask, out=buf)
        else:  # drop_node — fresh per-epoch mask, like the standalone twin
            p = meta["p"]
            mask = _as_array(
                (meta["rng"].random((buf.shape[0], 1)) >= p) / (1.0 - p))
            op.state[_stage_key(index, "mask")] = mask
            np.multiply(src, mask, out=buf)
        src = buf
    _out(op, rt, buf)


def _bwd_ew_chain(op, rt, g):
    stages = op.meta["stages"]
    for index in range(len(stages) - 1, -1, -1):
        kind, meta = stages[index]
        if kind == "leaky_relu":
            grad = _state_buffer(op, _stage_key(index, "grad"), g.shape, g.dtype)
            np.multiply(g, meta["negative_slope"], out=grad)
            np.copyto(grad, g, where=op.state[_stage_key(index, "positive")])
            g = grad
        elif kind == "drop_node":
            g = g * op.state[_stage_key(index, "mask")]
        else:   # relu / elu / dropout: g × stage-local mask
            local = op.state[_stage_key(
                index, "local" if kind == "elu" else "mask")]
            g = np.multiply(g, local, out=_state_buffer(
                op, _stage_key(index, "grad"), g.shape, g.dtype))
    leader = op.meta["leader"]
    if leader is None:
        if op.in_requires[0]:
            rt.contribute(op.ins[0], g)
        return
    sa, sb = op.in_shapes
    if op.in_requires[0]:
        rt.contribute(op.ins[0], _unbroadcast(g, sa))
    if op.in_requires[1]:
        rt.contribute(op.ins[1], _unbroadcast(g if leader == "add" else -g, sb))


_register(OpImpl("ew_chain", _fwd_ew_chain, _bwd_ew_chain, out_mode="buffer"))
_register(OpImpl("ew_chain_rng", _fwd_ew_chain, _bwd_ew_chain,
                 out_mode="buffer", rng=True))


# -- BatchNorm running statistics (effectful identity) -----------------------
def _fwd_bn_stats(op, rt):
    # Mirror of modules.BatchNorm's training-mode stat update: same
    # mean/var reductions, same in-place exponential moving average (the
    # dynamic side updates the registered buffers in place, so the arrays
    # this op's meta holds are the module's own buffers).
    x = rt.values[op.ins[0]]
    momentum = op.meta["momentum"]
    mean = _state_buffer(op, "mean", x.shape[1:], x.dtype)
    var = _state_buffer(op, "var", x.shape[1:], x.dtype)
    tmp = _state_buffer(op, "tmp", x.shape[1:], x.dtype)
    np.mean(x, axis=0, out=mean)
    np.var(x, axis=0, out=var)
    running_mean = op.meta["running_mean"]
    running_var = op.meta["running_var"]
    running_mean *= (1.0 - momentum)
    np.multiply(mean, momentum, out=tmp)
    running_mean += tmp
    running_var *= (1.0 - momentum)
    np.multiply(var, momentum, out=tmp)
    running_var += tmp
    _out(op, rt, x)


def _bwd_bn_stats(op, rt, g):
    rt.contribute(op.ins[0], g)


_register(OpImpl("bn_stats", _fwd_bn_stats, _bwd_bn_stats,
                 out_mode="view", effectful=True))
