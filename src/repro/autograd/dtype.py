"""Process-level compute-dtype policy for the autograd engine.

Every float array the engine creates — tensor data, parameter
initialisations, sparse propagation operators, gradients — is materialised
in one *compute dtype*.  The default is float64, which keeps the seed
implementation's bit-exact behaviour; float32 is an opt-in that halves
memory traffic and roughly doubles BLAS/sparse throughput on CPU, at the
cost of ~7 decimal digits of precision (plenty for the architecture-search
experiments, see ``tests/test_perf_core.py`` for the parity tolerances).

The policy is deliberately **process-wide**, not per-tensor: mixing dtypes
inside one autograd graph silently upcasts through NumPy promotion and
destroys both the memory savings and cross-backend determinism.  Set it once
before building datasets/models (``AutoHEnsGNNConfig.compute_dtype`` does
this for the pipeline), or use :func:`compute_dtype_scope` in tests.

Worker propagation: thread-backend workers read the same module global;
process-backend workers created *after* the policy is set inherit it through
``fork`` (the ``ProcessBackend`` pool is created lazily on first use).
Switching dtype while a process pool is live requires a fresh backend.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: The dtypes the engine supports as a compute dtype.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_COMPUTE_DTYPE: np.dtype = np.dtype(np.float64)


def _coerce(dtype: DTypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(f"unsupported compute dtype {dtype!r}; choose from {supported}")
    return resolved


def compute_dtype() -> np.dtype:
    """The dtype every new float array in the engine is created with."""
    return _COMPUTE_DTYPE


def compute_dtype_name() -> str:
    """The compute dtype as a string (``"float64"`` / ``"float32"``)."""
    return _COMPUTE_DTYPE.name


def set_compute_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the process-wide compute dtype; returns the resolved ``np.dtype``.

    Call this *before* building graphs, tensors or models: arrays created
    under the previous policy keep their dtype and mixing the two upcasts
    through NumPy promotion.
    """
    global _COMPUTE_DTYPE
    _COMPUTE_DTYPE = _coerce(dtype)
    return _COMPUTE_DTYPE


@contextlib.contextmanager
def compute_dtype_scope(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the compute dtype (pipelines, tests, benchmarks)."""
    previous = _COMPUTE_DTYPE
    set_compute_dtype(dtype)
    try:
        yield _COMPUTE_DTYPE
    finally:
        set_compute_dtype(previous)
