"""Stateless differentiable operations used by the GNN layers.

Everything here takes and returns :class:`~repro.autograd.tensor.Tensor`
objects (or plain arrays, which are promoted to constant tensors).  Besides
the usual dense-NN functions, the module contains the scatter/segment
primitives needed for message passing on edge lists: :func:`index_select`,
:func:`scatter_add`, :func:`scatter_mean`, :func:`scatter_max` and
:func:`segment_softmax` (per-destination softmax over incoming edges used by
attention aggregators such as GAT).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor, _as_array, _record_op, is_grad_enabled

ArrayLike = Union[Tensor, np.ndarray, float, int]


def _ensure(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ---------------------------------------------------------------------------
# Elementwise nonlinearities
# ---------------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return _ensure(x).relu()


def _elu_forward(data: np.ndarray, alpha: float, positive: np.ndarray) -> np.ndarray:
    """Shared ELU forward (Tensor path and raw-ndarray inference path)."""
    return np.where(positive, data, alpha * np.expm1(np.minimum(data, 0.0)))


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    x = _ensure(x)
    data = x.data
    positive = data > 0
    out_data = _elu_forward(data, alpha, positive)
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        # Backward-only local derivative: alpha * exp(min(x, 0)) on the
        # negative side, 1 on the positive side.  Built only when grad is
        # recorded — evaluation passes skip both temporaries entirely.
        local = alpha * np.exp(np.minimum(data, 0.0))
        local[positive] = 1.0

        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * local)

        out._backward = _backward
    _record_op("elu", out, (x,), alpha=alpha)
    return out


def _leaky_relu_forward(data: np.ndarray, negative_slope: float,
                        positive: np.ndarray) -> np.ndarray:
    """Shared LeakyReLU forward (Tensor path and raw-ndarray inference path)."""
    return np.where(positive, data, negative_slope * data)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    x = _ensure(x)
    data = x.data
    positive = data > 0
    out_data = _leaky_relu_forward(data, negative_slope, positive)
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(np.where(positive, grad, negative_slope * grad))

        out._backward = _backward
    _record_op("leaky_relu", out, (x,), negative_slope=negative_slope)
    return out


def sigmoid(x: Tensor) -> Tensor:
    return _ensure(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return _ensure(x).tanh()


def identity(x: Tensor) -> Tensor:
    return _ensure(x)


ACTIVATIONS = {
    "relu": relu,
    "elu": elu,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "identity": identity,
    "none": identity,
}


def activation(name: str):
    """Look up an activation function by name (raises ``KeyError`` if unknown)."""
    return ACTIVATIONS[name]


# ---------------------------------------------------------------------------
# Raw-ndarray activations for the inference fast path
# ---------------------------------------------------------------------------
# Each of these computes bit-for-bit the same forward value as its Tensor
# counterpart above (same NumPy expressions, same order of operations), so
# ``GNNModel.forward_inference`` matches the Tensor forward exactly.
def _relu_array(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _elu_array(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return _elu_forward(x, alpha, x > 0)


def _leaky_relu_array(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    return _leaky_relu_forward(x, negative_slope, x > 0)


def _sigmoid_array(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _identity_array(x: np.ndarray) -> np.ndarray:
    return x


def softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """NumPy softmax matching :func:`softmax` bit-for-bit."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """NumPy log-softmax matching :func:`log_softmax` bit-for-bit."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


ACTIVATIONS_ARRAY = {
    "relu": _relu_array,
    "elu": _elu_array,
    "leaky_relu": _leaky_relu_array,
    "sigmoid": _sigmoid_array,
    "tanh": np.tanh,
    "identity": _identity_array,
    "none": _identity_array,
}


def activation_array(name: str):
    """The raw-ndarray twin of :func:`activation` (inference fast path)."""
    return ACTIVATIONS_ARRAY[name]


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _ensure(x)
    # Delegate to the array twin so the Tensor and inference fast paths can
    # never drift apart bit-wise.
    out_data = softmax_array(x.data, axis=axis)
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

        out._backward = _backward
    _record_op("softmax", out, (x,), axis=axis)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _ensure(x)
    out_data = log_softmax_array(x.data, axis=axis)
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        soft = np.exp(out_data)

        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

        out._backward = _backward
    _record_op("log_softmax", out, (x,), axis=axis)
    return out


# ---------------------------------------------------------------------------
# Normalisation statistics
# ---------------------------------------------------------------------------
def batch_norm_stats(x: Tensor, running_mean: np.ndarray,
                     running_var: np.ndarray, momentum: float) -> Tensor:
    """Update BatchNorm running statistics as a recordable identity op.

    Returns ``x`` unchanged (the gradient passes straight through); the side
    effect is the in-place exponential moving average of the batch mean/var
    into ``running_mean`` / ``running_var``.  Exposing the update as a
    first-class op (instead of a hidden attribute rebind inside the module)
    lets the capture engine re-run it on every replayed epoch — the buffers
    are updated in place, so the arrays the tape holds stay the module's own
    registered buffers.
    """
    x = _ensure(x)
    data = x.data
    batch_mean = data.mean(axis=0)
    batch_var = data.var(axis=0)
    running_mean *= (1.0 - momentum)
    running_mean += momentum * batch_mean
    running_var *= (1.0 - momentum)
    running_var += momentum * batch_var
    out = Tensor(data, requires_grad=x.requires_grad,
                 _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad)

        out._backward = _backward
    _record_op("bn_stats", out, (x,), running_mean=running_mean,
               running_var=running_var, momentum=momentum)
    return out


# ---------------------------------------------------------------------------
# Regularisation
# ---------------------------------------------------------------------------
def dropout(x: Tensor, p: float, training: bool = True, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` and rescale."""
    x = _ensure(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    # The RNG draws float64 uniforms regardless of compute dtype, so the
    # consumed stream (and therefore replica determinism) is dtype-invariant.
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out = Tensor(x.data * mask, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * mask)

        out._backward = _backward
    _record_op("dropout", out, (x,), p=p, rng=rng)
    return out


def drop_node(x: Tensor, p: float, training: bool = True,
              rng: Optional[np.random.Generator] = None) -> Tensor:
    """DropNode (GRAND-style): zero whole feature rows and rescale the rest.

    Equivalent to multiplying by an inverted-dropout mask of shape
    ``(num_rows, 1)``; exposed as a first-class op (rather than a constant
    mask times a tensor) so the capture engine can re-draw the mask from the
    seeded RNG stream on every replayed epoch, exactly like the dynamic
    engine would.
    """
    x = _ensure(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("drop_node probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = _as_array((rng.random((x.shape[0], 1)) >= p) / (1.0 - p))
    out = Tensor(x.data * mask, requires_grad=x.requires_grad,
                 _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * mask)

        out._backward = _backward
    _record_op("drop_node", out, (x,), p=p, rng=rng)
    return out


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def nll_loss(log_probs: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer targets given log-probabilities."""
    log_probs = _ensure(log_probs)
    target = np.asarray(target, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), target]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def _cross_entropy_forward(logits_data: np.ndarray, target: np.ndarray,
                           reduction: str) -> tuple:
    """Fused forward of softmax cross-entropy, shared with the capture engine.

    Computes, in one pass, exactly what the historical
    ``nll_loss(log_softmax(logits))`` composition computed — same NumPy
    expressions in the same order, so the fusion is bit-identical — and
    returns ``(loss, log_probs)`` (the log-probabilities feed the closed-form
    backward).
    """
    log_probs = log_softmax_array(logits_data, axis=-1)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), target]
    loss = -picked
    if reduction == "none":
        return loss, log_probs
    total = np.asarray(loss.sum(axis=None, keepdims=False), dtype=log_probs.dtype)
    if reduction == "sum":
        return total, log_probs
    if reduction == "mean":
        # The composition multiplied the summed Tensor by Tensor(1/n); the
        # scalar cast and multiply below reproduce that bit-for-bit.
        return total * np.asarray(1.0 / n, dtype=log_probs.dtype), log_probs
    raise ValueError(f"unknown reduction {reduction!r}")


def _cross_entropy_backward(grad: np.ndarray, log_probs: np.ndarray,
                            soft: np.ndarray, target: np.ndarray,
                            reduction: str) -> np.ndarray:
    """Closed-form gradient of :func:`_cross_entropy_forward` w.r.t. logits.

    Mirrors the historical mean → sum → neg → gather → log-softmax backward
    chain step by step (the broadcast copy, the ``np.add.at`` scatter, the
    row-sum correction), so the fused gradient matches the composition to the
    bit.
    """
    n = log_probs.shape[0]
    if reduction == "mean":
        per_row = np.broadcast_to(grad * np.asarray(1.0 / n, dtype=log_probs.dtype),
                                  (n,)).copy()
    elif reduction == "sum":
        per_row = np.broadcast_to(grad, (n,)).copy()
    else:
        per_row = grad
    picked_grad = -per_row
    scattered = np.zeros(log_probs.shape, dtype=log_probs.dtype)
    # One target per row, so fancy assignment scatters exactly what the
    # composition's ``np.add.at`` onto zeros produced — minus its unbuffered
    # per-element loop.
    scattered[np.arange(n), target] = picked_grad
    return scattered - soft * scattered.sum(axis=-1, keepdims=True)


def cross_entropy(logits: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer targets.

    One fused op (single array pass + closed-form backward) rather than the
    ``log_softmax`` → gather → ``mean`` composition it replaces; values and
    gradients are bit-identical to that composition (asserted in
    ``tests/test_capture.py``), and the capture engine records it as a single
    program step.
    """
    logits = _ensure(logits)
    target = np.asarray(target, dtype=np.int64)
    out_data, log_probs = _cross_entropy_forward(logits.data, target, reduction)
    out = Tensor(out_data, requires_grad=logits.requires_grad,
                 _prev=(logits,) if logits.requires_grad else ())
    if out.requires_grad:
        soft = np.exp(log_probs)

        def _backward(grad: np.ndarray) -> None:
            logits._accumulate(_cross_entropy_backward(grad, log_probs, soft,
                                                       target, reduction))

        out._backward = _backward
    _record_op("cross_entropy", out, (logits,), target=target, reduction=reduction)
    return out


def soft_cross_entropy(log_probs: Tensor, soft_target: np.ndarray) -> Tensor:
    """Cross-entropy against a soft (probability) target distribution."""
    log_probs = _ensure(log_probs)
    soft_target = np.asarray(soft_target, dtype=log_probs.data.dtype)
    return -(Tensor(soft_target) * log_probs).sum(axis=-1).mean()


def mse_loss(prediction: Tensor, target: ArrayLike, reduction: str = "mean") -> Tensor:
    prediction = _ensure(prediction)
    diff = prediction - _ensure(target).detach()
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    return squared


def binary_cross_entropy_with_logits(logits: Tensor, target: ArrayLike, reduction: str = "mean") -> Tensor:
    """Numerically stable sigmoid + binary cross entropy."""
    logits = _ensure(logits)
    target_arr = np.asarray(target.data if isinstance(target, Tensor) else target,
                            dtype=logits.data.dtype)
    x = logits.data
    loss_data = np.maximum(x, 0.0) - x * target_arr + np.log1p(np.exp(-np.abs(x)))
    out = Tensor(loss_data, requires_grad=logits.requires_grad, _prev=(logits,) if logits.requires_grad else ())
    if out.requires_grad:
        sig = 1.0 / (1.0 + np.exp(-x))

        def _backward(grad: np.ndarray) -> None:
            logits._accumulate(grad * (sig - target_arr))

        out._backward = _backward
    # No replay twin: recording the kind makes a capture trace bail out
    # (softly) instead of silently dropping the op from the program.
    _record_op("bce_logits", out, (logits,))
    if reduction == "mean":
        return out.mean()
    if reduction == "sum":
        return out.sum()
    return out


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    tensors = [_ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    if requires:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        out._backward = _backward
    _record_op("concat", out, tuple(tensors), axis=axis)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_ensure(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    if requires:
        def _backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                tensor._accumulate(piece)

        out._backward = _backward
    _record_op("stack", out, tuple(tensors), axis=axis)
    return out


# ---------------------------------------------------------------------------
# Gather / scatter primitives for message passing
# ---------------------------------------------------------------------------
def _scatter_sum(values: np.ndarray, index: np.ndarray, dim_size: int,
                 aggregate) -> np.ndarray:
    """Sum ``values`` rows into ``dim_size`` buckets.

    With ``aggregate`` (a CSR built by ``GraphTensors.edge_scatter``) the
    scatter is one sparse matmul; the ``np.add.at`` fallback accumulates in
    the same edge order, so both paths are bit-identical.
    """
    if aggregate is not None:
        flat = values.reshape(values.shape[0], -1)
        return np.asarray(aggregate @ flat).reshape((dim_size,) + values.shape[1:])
    out = np.zeros((dim_size,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, index, values)
    return out


def index_select(x: Tensor, index: np.ndarray, scatter=None) -> Tensor:
    """Select rows of ``x`` (equivalent to ``x[index]`` along axis 0).

    ``scatter`` optionally provides the CSR scatter operator for the
    backward pass (rows of the gradient summed back into ``x``).
    """
    x = _ensure(x)
    index = np.asarray(index, dtype=np.int64)
    out = Tensor(x.data[index], requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(_scatter_sum(grad, index, x.shape[0], scatter))

        out._backward = _backward
    _record_op("index_select", out, (x,), index=index, scatter=scatter)
    return out


def scatter_add(src: Tensor, index: np.ndarray, dim_size: int, aggregate=None) -> Tensor:
    """Sum rows of ``src`` into ``dim_size`` buckets given by ``index``."""
    src = _ensure(src)
    index = np.asarray(index, dtype=np.int64)
    out_data = _scatter_sum(src.data, index, dim_size, aggregate)
    out = Tensor(out_data, requires_grad=src.requires_grad, _prev=(src,) if src.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            src._accumulate(grad[index])

        out._backward = _backward
    _record_op("scatter_add", out, (src,), index=index, dim_size=dim_size,
               aggregate=aggregate)
    return out


def scatter_mean(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Average rows of ``src`` into ``dim_size`` buckets given by ``index``."""
    src = _ensure(src)
    index = np.asarray(index, dtype=np.int64)
    counts = np.bincount(index, minlength=dim_size).astype(src.data.dtype)
    counts = np.maximum(counts, 1.0).reshape((dim_size,) + (1,) * (len(src.shape) - 1))
    summed = scatter_add(src, index, dim_size)
    return summed * Tensor(1.0 / counts)


def scatter_max(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Per-bucket maximum of rows of ``src`` (empty buckets yield zero)."""
    src = _ensure(src)
    index = np.asarray(index, dtype=np.int64)
    out_shape = (dim_size,) + src.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=src.data.dtype)
    np.maximum.at(out_data, index, src.data)
    empty = ~np.isfinite(out_data)
    out_data[empty] = 0.0
    out = Tensor(out_data, requires_grad=src.requires_grad, _prev=(src,) if src.requires_grad else ())
    if out.requires_grad:
        argmax_mask = (src.data == out_data[index]) & ~empty[index]
        # Split gradient evenly between ties to keep the op well defined.
        tie_counts = np.zeros(out_shape, dtype=src.data.dtype)
        np.add.at(tie_counts, index, argmax_mask.astype(src.data.dtype))
        tie_counts = np.maximum(tie_counts, 1.0)

        def _backward(grad: np.ndarray) -> None:
            src._accumulate(argmax_mask * grad[index] / tie_counts[index])

        out._backward = _backward
    _record_op("scatter_max", out, (src,), index=index, dim_size=dim_size)
    return out


def scatter_add_array(src: np.ndarray, index: np.ndarray, dim_size: int,
                      aggregate=None) -> np.ndarray:
    """Raw-ndarray forward of :func:`scatter_add` (inference fast path)."""
    return _scatter_sum(src, index, dim_size, aggregate)


def scatter_max_array(src: np.ndarray, index: np.ndarray, dim_size: int) -> np.ndarray:
    """Raw-ndarray forward of :func:`scatter_max` (inference fast path)."""
    out = np.full((dim_size,) + src.shape[1:], -np.inf, dtype=src.dtype)
    np.maximum.at(out, index, src)
    out[~np.isfinite(out)] = 0.0
    return out


def segment_softmax(scores: Tensor, index: np.ndarray, dim_size: int,
                    aggregate=None) -> Tensor:
    """Softmax over groups of entries sharing the same ``index`` value.

    Used for attention coefficients: ``scores`` holds one value per edge and
    ``index`` holds the destination node of each edge; the result sums to one
    over the incoming edges of every node.
    """
    scores = _ensure(scores)
    index = np.asarray(index, dtype=np.int64)
    out_data = segment_softmax_array(scores.data, index, dim_size, aggregate)

    out = Tensor(out_data, requires_grad=scores.requires_grad, _prev=(scores,) if scores.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            weighted = grad * out_data
            group_dot = _scatter_sum(weighted, index, dim_size, aggregate)
            scores._accumulate(out_data * (grad - group_dot[index]))

        out._backward = _backward
    _record_op("segment_softmax", out, (scores,), index=index, dim_size=dim_size,
               aggregate=aggregate)
    return out


def segment_softmax_array(scores: np.ndarray, index: np.ndarray, dim_size: int,
                          aggregate=None) -> np.ndarray:
    """Raw-ndarray forward of :func:`segment_softmax` (inference fast path)."""
    group_shape = (dim_size,) + scores.shape[1:]
    group_max = np.full(group_shape, -np.inf, dtype=scores.dtype)
    np.maximum.at(group_max, index, scores)
    group_max[~np.isfinite(group_max)] = 0.0
    shifted = scores - group_max[index]
    exp = np.exp(shifted)
    denom = np.maximum(_scatter_sum(exp, index, dim_size, aggregate), 1e-16)
    return exp / denom[index]


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------
def weighted_sum(tensors: Sequence[Tensor], weights: Tensor) -> Tensor:
    """Weighted sum ``sum_i weights[i] * tensors[i]`` with differentiable weights."""
    stacked = stack(list(tensors), axis=0)
    n = stacked.shape[0]
    w = weights.reshape((n,) + (1,) * (stacked.ndim - 1))
    return (stacked * w).sum(axis=0)


def l2_penalty(parameters) -> Tensor:
    """Sum of squared entries of every parameter (used for weight decay in losses)."""
    total = Tensor(0.0)
    for param in parameters:
        total = total + (param * param).sum()
    return total
