"""Stateless differentiable operations used by the GNN layers.

Everything here takes and returns :class:`~repro.autograd.tensor.Tensor`
objects (or plain arrays, which are promoted to constant tensors).  Besides
the usual dense-NN functions, the module contains the scatter/segment
primitives needed for message passing on edge lists: :func:`index_select`,
:func:`scatter_add`, :func:`scatter_mean`, :func:`scatter_max` and
:func:`segment_softmax` (per-destination softmax over incoming edges used by
attention aggregators such as GAT).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor, is_grad_enabled

ArrayLike = Union[Tensor, np.ndarray, float, int]


def _ensure(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ---------------------------------------------------------------------------
# Elementwise nonlinearities
# ---------------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return _ensure(x).relu()


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    x = _ensure(x)
    positive = (x.data > 0).astype(np.float64)
    exp_part = np.exp(np.minimum(x.data, 0.0))
    out_data = np.where(x.data > 0, x.data, alpha * (exp_part - 1.0))
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        local = positive + (1.0 - positive) * alpha * exp_part

        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * local)

        out._backward = _backward
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    x = _ensure(x)
    local = np.where(x.data > 0, 1.0, negative_slope)
    out = Tensor(x.data * local, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * local)

        out._backward = _backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    return _ensure(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return _ensure(x).tanh()


def identity(x: Tensor) -> Tensor:
    return _ensure(x)


ACTIVATIONS = {
    "relu": relu,
    "elu": elu,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "identity": identity,
    "none": identity,
}


def activation(name: str):
    """Look up an activation function by name (raises ``KeyError`` if unknown)."""
    return ACTIVATIONS[name]


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _ensure(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _ensure(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        soft = np.exp(out_data)

        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

        out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# Regularisation
# ---------------------------------------------------------------------------
def dropout(x: Tensor, p: float, training: bool = True, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` and rescale."""
    x = _ensure(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    out = Tensor(x.data * mask, requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * mask)

        out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def nll_loss(log_probs: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer targets given log-probabilities."""
    log_probs = _ensure(log_probs)
    target = np.asarray(target, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), target]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer targets."""
    return nll_loss(log_softmax(logits, axis=-1), target, reduction=reduction)


def soft_cross_entropy(log_probs: Tensor, soft_target: np.ndarray) -> Tensor:
    """Cross-entropy against a soft (probability) target distribution."""
    log_probs = _ensure(log_probs)
    soft_target = np.asarray(soft_target, dtype=np.float64)
    return -(Tensor(soft_target) * log_probs).sum(axis=-1).mean()


def mse_loss(prediction: Tensor, target: ArrayLike, reduction: str = "mean") -> Tensor:
    prediction = _ensure(prediction)
    diff = prediction - _ensure(target).detach()
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    return squared


def binary_cross_entropy_with_logits(logits: Tensor, target: ArrayLike, reduction: str = "mean") -> Tensor:
    """Numerically stable sigmoid + binary cross entropy."""
    logits = _ensure(logits)
    target_arr = np.asarray(target.data if isinstance(target, Tensor) else target, dtype=np.float64)
    x = logits.data
    loss_data = np.maximum(x, 0.0) - x * target_arr + np.log1p(np.exp(-np.abs(x)))
    out = Tensor(loss_data, requires_grad=logits.requires_grad, _prev=(logits,) if logits.requires_grad else ())
    if out.requires_grad:
        sig = 1.0 / (1.0 + np.exp(-x))

        def _backward(grad: np.ndarray) -> None:
            logits._accumulate(grad * (sig - target_arr))

        out._backward = _backward
    if reduction == "mean":
        return out.mean()
    if reduction == "sum":
        return out.sum()
    return out


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    tensors = [_ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    if requires:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_ensure(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    if requires:
        def _backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                tensor._accumulate(piece)

        out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# Gather / scatter primitives for message passing
# ---------------------------------------------------------------------------
def index_select(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows of ``x`` (equivalent to ``x[index]`` along axis 0)."""
    x = _ensure(x)
    index = np.asarray(index, dtype=np.int64)
    out = Tensor(x.data[index], requires_grad=x.requires_grad, _prev=(x,) if x.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            full = np.zeros_like(x.data)
            np.add.at(full, index, grad)
            x._accumulate(full)

        out._backward = _backward
    return out


def scatter_add(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Sum rows of ``src`` into ``dim_size`` buckets given by ``index``."""
    src = _ensure(src)
    index = np.asarray(index, dtype=np.int64)
    out_shape = (dim_size,) + src.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, index, src.data)
    out = Tensor(out_data, requires_grad=src.requires_grad, _prev=(src,) if src.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            src._accumulate(grad[index])

        out._backward = _backward
    return out


def scatter_mean(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Average rows of ``src`` into ``dim_size`` buckets given by ``index``."""
    index = np.asarray(index, dtype=np.int64)
    counts = np.bincount(index, minlength=dim_size).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((dim_size,) + (1,) * (len(_ensure(src).shape) - 1))
    summed = scatter_add(src, index, dim_size)
    return summed * Tensor(1.0 / counts)


def scatter_max(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Per-bucket maximum of rows of ``src`` (empty buckets yield zero)."""
    src = _ensure(src)
    index = np.asarray(index, dtype=np.int64)
    out_shape = (dim_size,) + src.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out_data, index, src.data)
    empty = ~np.isfinite(out_data)
    out_data[empty] = 0.0
    out = Tensor(out_data, requires_grad=src.requires_grad, _prev=(src,) if src.requires_grad else ())
    if out.requires_grad:
        argmax_mask = (src.data == out_data[index]) & ~empty[index]
        # Split gradient evenly between ties to keep the op well defined.
        tie_counts = np.zeros(out_shape, dtype=np.float64)
        np.add.at(tie_counts, index, argmax_mask.astype(np.float64))
        tie_counts = np.maximum(tie_counts, 1.0)

        def _backward(grad: np.ndarray) -> None:
            src._accumulate(argmax_mask * grad[index] / tie_counts[index])

        out._backward = _backward
    return out


def segment_softmax(scores: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Softmax over groups of entries sharing the same ``index`` value.

    Used for attention coefficients: ``scores`` holds one value per edge and
    ``index`` holds the destination node of each edge; the result sums to one
    over the incoming edges of every node.
    """
    scores = _ensure(scores)
    index = np.asarray(index, dtype=np.int64)
    extra_dims = (1,) * (scores.data.ndim - 1)

    group_max = np.full((dim_size,) + scores.shape[1:], -np.inf, dtype=np.float64)
    np.maximum.at(group_max, index, scores.data)
    group_max[~np.isfinite(group_max)] = 0.0
    shifted = scores.data - group_max[index]
    exp = np.exp(shifted)
    denom = np.zeros((dim_size,) + scores.shape[1:], dtype=np.float64)
    np.add.at(denom, index, exp)
    denom = np.maximum(denom, 1e-16)
    out_data = exp / denom[index]

    out = Tensor(out_data, requires_grad=scores.requires_grad, _prev=(scores,) if scores.requires_grad else ())
    if out.requires_grad:
        def _backward(grad: np.ndarray) -> None:
            weighted = grad * out_data
            group_dot = np.zeros((dim_size,) + scores.shape[1:], dtype=np.float64)
            np.add.at(group_dot, index, weighted)
            scores._accumulate(out_data * (grad - group_dot[index]))

        out._backward = _backward
    del extra_dims
    return out


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------
def weighted_sum(tensors: Sequence[Tensor], weights: Tensor) -> Tensor:
    """Weighted sum ``sum_i weights[i] * tensors[i]`` with differentiable weights."""
    stacked = stack(list(tensors), axis=0)
    n = stacked.shape[0]
    w = weights.reshape((n,) + (1,) * (stacked.ndim - 1))
    return (stacked * w).sum(axis=0)


def l2_penalty(parameters) -> Tensor:
    """Sum of squared entries of every parameter (used for weight decay in losses)."""
    total = Tensor(0.0)
    for param in parameters:
        total = total + (param * param).sum()
    return total
