"""Numerical gradient checking used by the autograd test-suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(func: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs)`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data)
        flat[i] = original - eps
        minus = float(func(*inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(func: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-6, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare analytic gradients against central differences.

    Returns ``True`` when every gradient matches; raises ``AssertionError``
    with a helpful message otherwise so pytest failures are informative.
    """
    inputs = list(inputs)
    for tensor in inputs:
        tensor.grad = None
    output = func(*inputs)
    if output.data.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()

    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}"
            )
    return True
