"""Weight initialisers.

Graph self-ensemble (GSE) builds several replicas of the same architecture
with *different initialisation seeds*, so every initialiser takes an explicit
``rng`` to make that reproducible and controllable from the ensemble code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.dtype import compute_dtype


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def _cast(array: np.ndarray) -> np.ndarray:
    """Cast a freshly sampled float64 array into the compute dtype.

    Sampling always happens in float64 so the RNG stream consumption (and
    therefore replica/seed determinism) is identical under every compute
    dtype; only the stored representation changes.
    """
    return array.astype(compute_dtype(), copy=False)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=compute_dtype())


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=compute_dtype())


def uniform(shape: Tuple[int, ...], low: float = -0.1, high: float = 0.1,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return _cast(_rng(rng).uniform(low, high, size=shape))


def normal(shape: Tuple[int, ...], std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return _cast(_rng(rng).normal(0.0, std, size=shape))


def glorot_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Xavier/Glorot uniform initialisation (the PyG default for GNN layers)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(_rng(rng).uniform(-limit, limit, size=shape))


def glorot_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(_rng(rng).normal(0.0, std, size=shape))


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _cast(_rng(rng).uniform(-limit, limit, size=shape))


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out


INITIALIZERS = {
    "zeros": zeros,
    "ones": ones,
    "uniform": uniform,
    "normal": normal,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "kaiming_uniform": kaiming_uniform,
}
