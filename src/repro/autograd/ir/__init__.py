"""Graph-program IR for the capture-and-replay engine.

The traced tape lowers to a :class:`~repro.autograd.ir.program.Program`
(typed ops with explicit slot def/use metadata), gets verified, runs
through the optimization pass pipeline
(:mod:`repro.autograd.ir.passes`: operator fusion, inference stripping)
and plans its buffers through the cross-member arena pool
(:mod:`repro.autograd.ir.arena`).
"""

from repro.autograd.ir.arena import (ArenaPool, global_pool, plan_arena,
                                     pooling_disabled)
from repro.autograd.ir.passes import (DEFAULT_PASSES, fuse_attention_gather,
                                      fuse_elementwise_chains,
                                      fuse_spmm_linear, run_passes,
                                      strip_training)
from repro.autograd.ir.program import (IRVerificationError, OpImpl, OpRecord,
                                       Program, SlotInfo, mark_variance,
                                       verify_program)

__all__ = [
    "ArenaPool", "global_pool", "plan_arena", "pooling_disabled",
    "DEFAULT_PASSES", "fuse_attention_gather", "fuse_elementwise_chains",
    "fuse_spmm_linear",
    "run_passes", "strip_training",
    "IRVerificationError", "OpImpl", "OpRecord", "Program", "SlotInfo",
    "mark_variance", "verify_program",
]
