"""Arena planning and the cross-member buffer pool.

:func:`plan_arena` runs lifetime analysis over a :class:`~.program.Program`
and assigns shared storage to arena-backed ops (two slots share a buffer iff
their live ranges do not overlap).  The buffers themselves come from an
:class:`ArenaPool` — a process-wide, thread-safe free list keyed by
``(shape, dtype)`` — so the K bagged/GSE members of one ensemble replay
through a single pool sized by the *maximum* live-set across members instead
of K private arenas.  A replay leases its buffers at plan time and releases
them when the trainer is done with it; sequential members (and sequential
proxy evaluations) then recycle each other's storage.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.autograd.ir.program import OpRecord, Program


class ArenaPool:
    """Process-wide lease pool for arena buffers, keyed by (shape, dtype).

    ``lease`` hands out an exclusively-owned array (recycled when a
    compatible one was released, freshly allocated otherwise); ``release``
    returns arrays to the free list, bounded by ``max_retained_bytes`` so
    one oversized program cannot pin memory forever.  All byte counters are
    exact (``ndarray.nbytes``), which is what the ensemble memory study
    reports: ``high_water_bytes`` is the max total of simultaneously leased
    buffers — the pooled analogue of summing per-member arena footprints.
    """

    def __init__(self, max_retained_bytes: int = 512 << 20,
                 enabled: bool = True) -> None:
        self.max_retained_bytes = int(max_retained_bytes)
        self.enabled = enabled
        self._lock = threading.Lock()
        self._free: Dict[Tuple[tuple, str], List[np.ndarray]] = {}
        self._retained_bytes = 0
        self._outstanding_bytes = 0
        self._stats = {"leases": 0, "reuses": 0, "allocated_bytes": 0,
                       "reused_bytes": 0, "high_water_bytes": 0}

    def lease(self, shape: tuple, dtype) -> np.ndarray:
        """Return an exclusively-owned uninitialised array of the given spec."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            self._stats["leases"] += 1
            array = None
            if self.enabled:
                bucket = self._free.get((tuple(shape), dtype.str))
                if bucket:
                    array = bucket.pop()
                    self._retained_bytes -= nbytes
                    self._stats["reuses"] += 1
                    self._stats["reused_bytes"] += nbytes
            if array is None:
                array = np.empty(shape, dtype)
                self._stats["allocated_bytes"] += nbytes
            self._outstanding_bytes += nbytes
            if self._outstanding_bytes > self._stats["high_water_bytes"]:
                self._stats["high_water_bytes"] = self._outstanding_bytes
        return array

    def release(self, arrays: Iterable[np.ndarray]) -> None:
        """Return leased arrays to the pool (dropped beyond the byte bound)."""
        with self._lock:
            for array in arrays:
                self._outstanding_bytes = max(
                    0, self._outstanding_bytes - array.nbytes)
                if (not self.enabled
                        or self._retained_bytes + array.nbytes
                        > self.max_retained_bytes):
                    continue
                key = (array.shape, array.dtype.str)
                self._free.setdefault(key, []).append(array)
                self._retained_bytes += array.nbytes

    def clear(self) -> None:
        """Drop every retained free buffer (outstanding leases unaffected)."""
        with self._lock:
            self._free.clear()
            self._retained_bytes = 0

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = {"leases": 0, "reuses": 0, "allocated_bytes": 0,
                           "reused_bytes": 0,
                           "high_water_bytes": self._outstanding_bytes}

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self._stats)
            out["retained_bytes"] = self._retained_bytes
            out["outstanding_bytes"] = self._outstanding_bytes
            return out


_GLOBAL_POOL = ArenaPool()


def global_pool() -> ArenaPool:
    """The process-wide pool shared by every captured replay."""
    return _GLOBAL_POOL


@contextlib.contextmanager
def pooling_disabled(pool: Optional[ArenaPool] = None):
    """Temporarily disable cross-replay buffer reuse (for paired A/B studies)."""
    pool = pool or _GLOBAL_POOL
    previous = pool.enabled
    pool.enabled = False
    try:
        yield pool
    finally:
        pool.enabled = previous


def plan_arena(program: Program, forward_ops: List[OpRecord],
               bwd_slots: List[int], terminal_slots: Iterable[int],
               pool: Optional[ArenaPool] = None):
    """Lifetime analysis + greedy buffer assignment for arena-backed slots.

    Steps are numbered forward ops first, then the terminal reads (loss /
    retained output), then the backward schedule.  A slot's value dies at
    its last reading step — forward consumers, plus the backward steps of
    ops whose gradient formula still reads it (``bwd_reads_in`` /
    ``bwd_reads_out``).  Views extend the life of their base.  Buffers are
    then assigned by a linear scan: two slots share storage iff their live
    ranges do not overlap.  Returns ``(plan, leased)`` where ``leased`` is
    the list of pool-leased arrays backing this program.
    """
    pool = pool or _GLOBAL_POOL
    slots = program.slots

    def base(slot: int) -> int:
        vb = slots[slot].view_base
        return slot if vb is None else vb

    last_use: Dict[int, int] = {}
    birth: Dict[int, int] = {}

    def touch(slot: int, step: int) -> None:
        slot = base(slot)
        if step > last_use.get(slot, -1):
            last_use[slot] = step

    for step, op in enumerate(forward_ops):
        for s in op.ins:
            touch(s, step)
        touch(op.out, step)
        if op.mode == "buffer":
            birth[op.out] = step
    terminal_step = len(forward_ops)
    for slot in terminal_slots:
        touch(slot, terminal_step)

    step = terminal_step + 1
    producer = program.producer_map()
    for slot in bwd_slots:
        op = producer.get(slot)
        if op is None or not op.needs_backward:
            continue
        if op.impl.bwd_reads_in:
            for s in op.ins:
                touch(s, step)
        if op.impl.bwd_reads_out:
            touch(op.out, step)
        step += 1

    # Greedy linear scan over births; a freed buffer is reusable only
    # strictly after its previous owner's death step, so an op can never
    # be handed one of its own inputs as the output buffer.
    entries: List[Dict[str, object]] = []
    leased: List[np.ndarray] = []
    buffer_bytes = 0
    demand_bytes = 0
    for op in forward_ops:
        if op.mode != "buffer":
            continue
        info = slots[op.out]
        born = birth[op.out]
        dies = last_use.get(op.out, born)
        key = (info.shape, info.dtype)
        nbytes = int(np.prod(info.shape, dtype=np.int64)) * info.dtype.itemsize
        demand_bytes += nbytes
        # Most-recently-freed fit: among compatible dead buffers, pick the
        # one whose last writer ran latest — it is the hottest in cache, so
        # the full overwrite that follows hits lines already resident
        # instead of pulling a cold buffer through memory.
        chosen = None
        for entry in entries:
            if (entry["key"] == key and entry["free_after"] < born
                    and (chosen is None
                         or entry["free_after"] > chosen["free_after"])):
                chosen = entry
        if chosen is None:
            array = pool.lease(info.shape, info.dtype)
            chosen = {"key": key, "array": array}
            entries.append(chosen)
            leased.append(array)
            buffer_bytes += nbytes
        chosen["free_after"] = dies
        op.buffer = chosen["array"]

    plan = {
        "ops_recorded": len(program.ops),
        "ops_replayed": len(forward_ops),
        "ops_constant_folded": len(program.ops) - len(forward_ops),
        "arena_buffers": len(entries),
        "arena_bytes": buffer_bytes,
        "arena_demand_bytes": demand_bytes,
    }
    return plan, leased
