"""Optimization passes over the graph-program IR.

Every pass takes a :class:`~.program.Program` plus the replay-op registry and
rewrites the program in place (returning a stats dict), under one hard
contract: **replayed values must stay bit-identical** to the untransformed
program — which is itself bit-identical to the dynamic engine.  The passes
therefore only perform rewrites whose float semantics are provably unchanged:

* :func:`fuse_spmm_linear` collapses a traced ``spmm → matmul [→ +bias]
  [→ act]`` chain (or the transform-first ``matmul → spmm`` order) into one
  ``spmm_bias_act`` visit.  The fused twin evaluates the *same* products in
  the *same* association order (``prop_first`` is chosen from which op came
  first in the trace, never from FLOP count), adds the bias with the same
  ufunc and applies the activation with the same masked expressions, so
  every float matches.  Fusion requires each intermediate to have exactly
  one consumer: that makes the chain contiguous in the mirrored backward
  DFS, so collapsing it cannot reorder gradient accumulation anywhere else.
* :func:`fuse_elementwise_chains` collapses consecutive runs of
  mask-backward elementwise ops (``relu``/``leaky_relu``/``elu``/
  ``dropout``/``drop_node``, optionally led by a broadcasting
  ``add``/``sub``) into one in-place kernel visit.  Stage masks are drawn
  from the same seeded RNG stream in the same order (members must be
  consecutive tape records), and each stage's backward multiply mirrors the
  dynamic closure exactly.
* :func:`fuse_attention_gather` collapses the per-edge attention
  aggregation GAT-style layers trace — ``index_select → reshape(α) → mul →
  scatter_add`` — into one ``attn_gather_scatter`` visit that runs the
  exact same gather/multiply/segment-sum kernels through private scratch.
* :func:`strip_training` derives an inference-only program: stochastic
  regularisers are rewired out (inverted dropout's eval semantics), the
  loss head and everything only the backward pass needed are dropped, and
  the program is re-rooted at the recorded logits slot.

Passes never fuse epoch-invariant ops — those are better served by constant
folding, which fusion would defeat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.autograd.ir.program import (IRVerificationError, OpRecord, Program,
                                       SlotInfo, verify_program)

#: Activation kinds (and the meta values kernels hard-code) that the fused
#: ``spmm_bias_act`` twin can apply in place.
_FUSABLE_ACTIVATIONS = {
    "relu": {},
    "leaky_relu": {"negative_slope": 0.2},
    "elu": {"alpha": 1.0},
}

#: Shape-preserving ops whose backward is ``g * stage-local mask`` — safe to
#: run back to back on one buffer.
_CHAIN_STAGES = ("relu", "leaky_relu", "elu", "dropout", "drop_node")

#: Binary ops allowed to lead an elementwise chain (bias add / residual sub).
_CHAIN_LEADERS = ("add", "sub")


def _kill_slot(info: SlotInfo) -> None:
    """Mark a fused-away intermediate: never materialised, never read."""
    info.dead = True
    info.producer = None
    info.tensor = None
    info.variant = False
    info.view_base = None


def _protected_slots(program: Program) -> set:
    return {s for s in (program.loss_slot, program.output_slot) if s is not None}


def _single_use(op: OpRecord, uses: Dict[int, int], protected: set) -> bool:
    return uses.get(op.out, 0) == 1 and op.out not in protected


def _activation_matches(op: OpRecord) -> bool:
    """The fused kernel hard-codes the functional defaults; require them."""
    expected = _FUSABLE_ACTIVATIONS.get(op.kind)
    if expected is None:
        return False
    return all(op.meta.get(key) == value for key, value in expected.items())


# ---------------------------------------------------------------------------
# spmm + linear fusion
# ---------------------------------------------------------------------------
def _match_spmm_group(program: Program, start: int, uses: Dict[int, int],
                      protected: set):
    """Match ``spmm→matmul`` / ``matmul→spmm`` (+bias, +act) at ``start``.

    Returns ``(members, x_slot, w_slot, bias_slot, activation, prop_first,
    sparse)`` or ``None``.  Members must be consecutive tape records, every
    intermediate single-consumer, and every output epoch-variant (an
    invariant link would otherwise lose constant folding).
    """
    ops, slots = program.ops, program.slots
    first = ops[start]
    if start + 1 >= len(ops):
        return None
    second = ops[start + 1]
    if (first.kind == "spmm" and second.kind == "matmul"
            and second.ins[0] == first.out):
        prop_first = True
        x_slot, w_slot = first.ins[0], second.ins[1]
        sparse = first.meta["sparse"]
    elif (first.kind == "matmul" and second.kind == "spmm"
            and second.ins[0] == first.out):
        prop_first = False
        x_slot, w_slot = first.ins[0], first.ins[1]
        sparse = second.meta["sparse"]
    else:
        return None
    # Both links must be 2-D buffer-mode ops (the fused kernel's contract)
    # and the handoff single-consumer so the collapse is invisible outside.
    if first.mode != "buffer" or second.mode != "buffer":
        return None
    if not _single_use(first, uses, protected):
        return None
    members = [first, second]

    bias_slot = None
    position = start + 2
    if position < len(ops):
        candidate = ops[position]
        if (candidate.kind == "add" and candidate.ins[0] == members[-1].out
                and _single_use(members[-1], uses, protected)
                and len(slots[candidate.ins[1]].shape) == 1
                and slots[candidate.ins[0]].shape == slots[candidate.out].shape):
            bias_slot = candidate.ins[1]
            members.append(candidate)
            position += 1

    activation = None
    if position < len(ops):
        candidate = ops[position]
        if (candidate.kind in _FUSABLE_ACTIVATIONS
                and candidate.ins == (members[-1].out,)
                and _single_use(members[-1], uses, protected)
                and _activation_matches(candidate)):
            activation = candidate.kind
            members.append(candidate)

    if any(not slots[m.out].variant for m in members):
        return None
    return members, x_slot, w_slot, bias_slot, activation, prop_first, sparse


def fuse_spmm_linear(program: Program, registry: Dict[str, object]) -> dict:
    """Collapse propagate/transform(+bias)(+act) chains into ``spmm_bias_act``."""
    impl = registry.get("spmm_bias_act")
    stats = {"pass": "fuse_spmm_linear", "fused": 0, "ops_removed": 0}
    if impl is None:
        return stats
    slots = program.slots
    uses = program.use_counts()
    protected = _protected_slots(program)
    new_ops: List[OpRecord] = []
    index = 0
    ops = program.ops
    while index < len(ops):
        group = _match_spmm_group(program, index, uses, protected)
        if group is None:
            new_ops.append(ops[index])
            index += 1
            continue
        members, x_slot, w_slot, bias_slot, activation, prop_first, sparse = group
        last = members[-1]
        ins = (x_slot, w_slot) if bias_slot is None else (x_slot, w_slot, bias_slot)
        fused = OpRecord(
            kind="spmm_bias_act", impl=impl, out=last.out, ins=ins,
            prev=ins,
            in_requires=tuple(slots[s].requires_grad for s in ins),
            in_shapes=tuple(slots[s].shape for s in ins),
            needs_backward=last.needs_backward,
            meta={"operator": sparse, "activation": activation,
                  "prop_first": prop_first},
            mode="buffer")
        slots[last.out].producer = fused
        for member in members[:-1]:
            _kill_slot(slots[member.out])
        new_ops.append(fused)
        index += len(members)
        stats["fused"] += 1
        stats["ops_removed"] += len(members) - 1
    program.ops = new_ops
    return stats


# ---------------------------------------------------------------------------
# elementwise chain fusion
# ---------------------------------------------------------------------------
def _match_chain(program: Program, start: int, uses: Dict[int, int],
                 protected: set):
    """Match a maximal elementwise chain beginning at op ``start``."""
    ops, slots = program.ops, program.slots
    first = ops[start]
    leader = first.kind if first.kind in _CHAIN_LEADERS else None
    if leader is not None:
        # The chain runs in place on the leader's output buffer, so the
        # leader's broadcast must not change the first operand's shape.
        if (first.mode != "buffer"
                or slots[first.ins[0]].shape != slots[first.out].shape):
            return None
    elif first.kind not in _CHAIN_STAGES:
        return None
    members = [first]
    position = start + 1
    while position < len(ops):
        candidate = ops[position]
        if candidate.kind not in _CHAIN_STAGES:
            break
        if candidate.ins != (members[-1].out,):
            break
        if not _single_use(members[-1], uses, protected):
            break
        if slots[candidate.out].shape != slots[members[0].out].shape:
            break
        members.append(candidate)
        position += 1
    stages = members[1:] if leader is not None else members
    if not stages or len(members) < 2:
        return None
    if any(not slots[m.out].variant for m in members):
        return None
    return members, leader, stages


def fuse_elementwise_chains(program: Program,
                            registry: Dict[str, object]) -> dict:
    """Collapse consecutive elementwise runs into one in-place kernel visit."""
    stats = {"pass": "fuse_elementwise_chains", "fused": 0, "ops_removed": 0}
    plain = registry.get("ew_chain")
    with_rng = registry.get("ew_chain_rng")
    if plain is None or with_rng is None:
        return stats
    slots = program.slots
    uses = program.use_counts()
    protected = _protected_slots(program)
    new_ops: List[OpRecord] = []
    index = 0
    ops = program.ops
    while index < len(ops):
        group = _match_chain(program, index, uses, protected)
        if group is None:
            new_ops.append(ops[index])
            index += 1
            continue
        members, leader, stages = group
        first, last = members[0], members[-1]
        ins = first.ins if leader is not None else (first.ins[0],)
        stage_descs = tuple((stage.kind, stage.meta) for stage in stages)
        impl = (with_rng if any(stage.impl.rng for stage in stages) else plain)
        fused = OpRecord(
            kind="ew_chain", impl=impl, out=last.out, ins=ins,
            prev=ins,
            in_requires=tuple(slots[s].requires_grad for s in ins),
            in_shapes=tuple(slots[s].shape for s in ins),
            needs_backward=last.needs_backward,
            meta={"leader": leader, "stages": stage_descs},
            mode="buffer")
        slots[last.out].producer = fused
        for member in members[:-1]:
            _kill_slot(slots[member.out])
        new_ops.append(fused)
        index += len(members)
        stats["fused"] += 1
        stats["ops_removed"] += len(members) - 1
    program.ops = new_ops
    return stats


# ---------------------------------------------------------------------------
# attention aggregation fusion
# ---------------------------------------------------------------------------
def _match_attention_group(program: Program, start: int, uses: Dict[int, int],
                           protected: set):
    """Match ``index_select → reshape(α) → mul → scatter_add`` at ``start``.

    The per-edge attention aggregation GAT-style layers trace: gather the
    source features, broadcast-multiply by the (reshaped) attention
    coefficients, segment-sum to the destinations.  Members must be
    consecutive tape records with single-consumer handoffs and
    epoch-variant outputs, and the multiply must take the gathered features
    as its first operand with the gathered shape (so the fused backward
    mirrors ``_bwd_mul``'s no-reduction branch for that side).
    """
    ops, slots = program.ops, program.slots
    if start + 3 >= len(ops):
        return None
    isel, rshp, mul, scat = ops[start:start + 4]
    if (isel.kind != "index_select" or rshp.kind != "reshape"
            or mul.kind != "mul" or scat.kind != "scatter_add"):
        return None
    if isel.mode != "buffer":
        return None
    if mul.ins != (isel.out, rshp.out) or scat.ins != (mul.out,):
        return None
    if mul.mode != "buffer":
        return None
    if slots[mul.out].shape != slots[isel.out].shape:
        return None
    members = [isel, rshp, mul, scat]
    for member in members[:-1]:
        if not _single_use(member, uses, protected):
            return None
    if any(not slots[m.out].variant for m in members):
        return None
    return members


def fuse_attention_gather(program: Program,
                          registry: Dict[str, object]) -> dict:
    """Collapse per-edge attention aggregation into ``attn_gather_scatter``."""
    impl = registry.get("attn_gather_scatter")
    stats = {"pass": "fuse_attention_gather", "fused": 0, "ops_removed": 0}
    if impl is None:
        return stats
    slots = program.slots
    uses = program.use_counts()
    protected = _protected_slots(program)
    new_ops: List[OpRecord] = []
    index = 0
    ops = program.ops
    while index < len(ops):
        members = _match_attention_group(program, index, uses, protected)
        if members is None:
            new_ops.append(ops[index])
            index += 1
            continue
        isel, rshp, mul, scat = members
        ins = (isel.ins[0], rshp.ins[0])
        fused = OpRecord(
            kind="attn_gather_scatter", impl=impl, out=scat.out, ins=ins,
            prev=ins,
            in_requires=tuple(slots[s].requires_grad for s in ins),
            in_shapes=tuple(slots[s].shape for s in ins),
            needs_backward=scat.needs_backward,
            meta={"gather_index": isel.meta["index"],
                  "gather_scatter": isel.meta["scatter"],
                  "alpha_shape": rshp.meta["shape"],
                  "index": scat.meta["index"],
                  "dim_size": scat.meta["dim_size"],
                  "aggregate": scat.meta["aggregate"]},
            mode=scat.mode)
        slots[scat.out].producer = fused
        for member in members[:-1]:
            _kill_slot(slots[member.out])
        new_ops.append(fused)
        index += len(members)
        stats["fused"] += 1
        stats["ops_removed"] += len(members) - 1
    program.ops = new_ops
    return stats


# ---------------------------------------------------------------------------
# inference stripping
# ---------------------------------------------------------------------------
_STOCHASTIC = ("dropout", "drop_node")


def strip_training(program: Program) -> Optional[Program]:
    """Derive the inference-only program rooted at the recorded output.

    Stochastic regularisers are identity at eval time (inverted dropout), so
    their outputs are rewired to their inputs; everything not reachable from
    the output slot — the loss head, training-index gathers, every op that
    existed only for the backward pass — is dropped.  Returns ``None`` when
    the program has no recorded output or contains effectful ops (BatchNorm
    stats: eval-mode normalisation uses running stats, which no rewrite of
    the training-mode tape reproduces).

    The returned program *shares* slot metadata with its parent (read-only)
    but owns fresh :class:`OpRecord` instances, so planning buffers for it
    never disturbs the training replay.
    """
    if program.output_slot is None:
        return None
    if any(op.impl.effectful for op in program.ops):
        return None

    alias: Dict[int, int] = {}

    def resolve(slot: int) -> int:
        while slot in alias:
            slot = alias[slot]
        return slot

    for op in program.ops:
        if op.kind == "ew_chain" and all(
                kind in _STOCHASTIC for kind, _ in op.meta["stages"]):
            if op.meta["leader"] is None:
                alias[op.out] = resolve(op.ins[0])
        elif op.kind in _STOCHASTIC:
            alias[op.out] = resolve(op.ins[0])

    target = resolve(program.output_slot)
    producer = program.producer_map()
    needed = set()
    stack = [target]
    while stack:
        slot = stack.pop()
        if slot in needed:
            continue
        needed.add(slot)
        op = producer.get(slot)
        if op is not None and op.out not in alias:
            stack.extend(resolve(s) for s in op.ins)

    new_ops: List[OpRecord] = []
    for op in program.ops:
        if op.out in alias or op.out not in needed:
            continue
        kind, meta = op.kind, op.meta
        if kind == "ew_chain":
            kept = tuple((k, m) for k, m in meta["stages"]
                         if k not in _STOCHASTIC)
            if len(kept) != len(meta["stages"]):
                meta = {"leader": meta["leader"], "stages": kept}
        new_ops.append(OpRecord(
            kind=kind, impl=op.impl, out=op.out,
            ins=tuple(resolve(s) for s in op.ins),
            prev=tuple(resolve(s) for s in op.prev),
            in_requires=op.in_requires, in_shapes=op.in_shapes,
            needs_backward=False, meta=meta, state={}, mode=op.mode))
    return Program(slots=program.slots, ops=new_ops,
                   loss_slot=None, output_slot=target)


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------
DEFAULT_PASSES: Tuple = (fuse_spmm_linear, fuse_elementwise_chains,
                         fuse_attention_gather)


def run_passes(program: Program, registry: Dict[str, object],
               passes: Optional[Sequence] = None) -> List[dict]:
    """Run ``passes`` (default pipeline if ``None``) and verify after each."""
    results = []
    for one_pass in (DEFAULT_PASSES if passes is None else passes):
        results.append(one_pass(program, registry))
        verify_program(program)
    return results
