"""Graph-program IR: the typed representation behind capture-and-replay.

A traced iteration lowers to a :class:`Program` — a flat, single-assignment
sequence of :class:`OpRecord` ops over integer *slots* (:class:`SlotInfo`).
The IR makes the def/use structure of the tape explicit so that passes
(:mod:`repro.autograd.ir.passes`) can rewrite it between trace and replay:
each op names the slot it defines (``out``), the slots it reads (``ins``),
the autograd graph edges it contributes (``prev``, mirroring the dynamic
engine's ``Tensor._prev`` tuples) and the replay twin that executes it
(:class:`OpImpl`).

The contract every rewrite must preserve is *bit-identity*: replaying a
transformed program produces exactly the floats the dynamic engine would.
:func:`verify_program` checks the structural half of that contract —
single assignment, defined-before-use, dead slots genuinely dead — after
every pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


class IRVerificationError(ValueError):
    """A structural invariant of the graph-program IR was violated."""


@dataclass
class OpImpl:
    """Replay twin of one dynamic op kind.

    ``forward(op, rt)`` recomputes the op's output into ``rt.values[op.out]``
    (through ``op.buffer`` when the op is arena-backed); ``backward(op, rt,
    g)`` mirrors the dynamic ``_backward`` closure, contributing gradients
    via ``Replay.contribute``.  The ``bwd_reads_*`` flags feed the
    lifetime analysis: they declare which *values* the backward pass still
    needs, so everything else can die (and donate its buffer) right after
    its last forward use.
    """

    kind: str
    forward: Callable
    backward: Optional[Callable] = None
    out_mode: str = "fresh"           # "buffer" | "fresh" | "view"
    rng: bool = False                 # consumes the seeded RNG stream per epoch
    effectful: bool = False           # mutates external state (e.g. BN stats)
    bwd_reads_in: bool = False
    bwd_reads_out: bool = False
    mode_fn: Optional[Callable] = None


@dataclass
class OpRecord:
    """One recorded op: kind + slot wiring + metadata captured at trace time."""

    kind: str
    impl: OpImpl
    out: int
    ins: Tuple[int, ...]
    prev: Tuple[int, ...]
    in_requires: Tuple[bool, ...]
    in_shapes: Tuple[tuple, ...]
    needs_backward: bool
    meta: Dict[str, object] = field(default_factory=dict)
    state: Dict[str, object] = field(default_factory=dict)
    mode: str = "fresh"
    buffer: Optional[np.ndarray] = None


@dataclass
class SlotInfo:
    """Static facts about one value slot of the captured program."""

    index: int
    shape: tuple
    dtype: np.dtype
    requires_grad: bool
    tensor: Optional[object] = None       # kept for leaves (params / constants)
    producer: Optional[OpRecord] = None
    variant: bool = False
    view_base: Optional[int] = None
    dead: bool = False                    # killed by a pass; never materialised


@dataclass
class Program:
    """A flat single-assignment graph program: slots + ops + root slots."""

    slots: List[SlotInfo]
    ops: List[OpRecord]
    loss_slot: Optional[int] = None
    output_slot: Optional[int] = None

    def producer_map(self) -> Dict[int, OpRecord]:
        return {op.out: op for op in self.ops}

    def use_counts(self) -> Dict[int, int]:
        """How many op operands read each slot (root reads not included)."""
        uses: Dict[int, int] = {}
        for op in self.ops:
            for s in op.ins:
                uses[s] = uses.get(s, 0) + 1
        return uses


def mark_variance(program: Program) -> None:
    """Epoch-variance analysis over the program, in place.

    Parameters change under the optimiser, RNG ops draw fresh masks and
    effectful ops must re-run for their side effects; everything downstream
    of any of those must be recomputed each epoch.  The rest is a pure
    function of graph constants and can be folded into the values captured
    during the trace.  Also resolves ``view_base`` chains for view ops.
    """
    slots = program.slots
    for info in slots:
        if info.producer is None:
            info.variant = info.requires_grad and not info.dead
    for op in program.ops:
        info = slots[op.out]
        info.variant = (op.impl.rng or op.impl.effectful
                        or any(slots[s].variant for s in op.ins))
        if op.mode == "view":
            base = op.ins[0]
            info.view_base = (slots[base].view_base
                              if slots[base].view_base is not None else base)


def verify_program(program: Program, check_producers: bool = True) -> None:
    """Check the structural invariants of the IR; raise on violation.

    Invariants: slots indexed densely; ops are single-assignment and read
    only already-defined slots; operand tuples are internally consistent;
    dead slots are never read, never defined and never a root; root slots
    (loss/output) are defined.  ``check_producers=False`` relaxes the
    ``slots[op.out].producer is op`` identity for derived programs (e.g.
    inference programs) that share slot metadata with their parent.
    """
    slots, ops = program.slots, program.ops
    n = len(slots)
    for index, info in enumerate(slots):
        if info.index != index:
            raise IRVerificationError(f"slot {index} carries index {info.index}")
    defined = set()
    for info in slots:
        if info.producer is None and not info.dead:
            defined.add(info.index)
    for position, op in enumerate(ops):
        if not (len(op.ins) == len(op.in_requires) == len(op.in_shapes)):
            raise IRVerificationError(
                f"op {position} ({op.kind}): operand tuples disagree")
        if op.mode not in ("buffer", "fresh", "view"):
            raise IRVerificationError(
                f"op {position} ({op.kind}): unknown mode {op.mode!r}")
        for s in op.ins:
            if not 0 <= s < n:
                raise IRVerificationError(
                    f"op {position} ({op.kind}) reads out-of-range slot {s}")
            if slots[s].dead:
                raise IRVerificationError(
                    f"op {position} ({op.kind}) reads dead slot {s}")
            if s not in defined:
                raise IRVerificationError(
                    f"op {position} ({op.kind}) reads slot {s} before definition")
        if not 0 <= op.out < n:
            raise IRVerificationError(
                f"op {position} ({op.kind}) defines out-of-range slot {op.out}")
        if op.out in defined:
            raise IRVerificationError(
                f"op {position} ({op.kind}) redefines slot {op.out}")
        if slots[op.out].dead:
            raise IRVerificationError(
                f"op {position} ({op.kind}) defines dead slot {op.out}")
        if check_producers and slots[op.out].producer is not op:
            raise IRVerificationError(
                f"op {position} ({op.kind}): slots[{op.out}].producer mismatch")
        defined.add(op.out)
    for name, root in (("loss", program.loss_slot), ("output", program.output_slot)):
        if root is None:
            continue
        if not 0 <= root < n or root not in defined:
            raise IRVerificationError(f"{name} slot {root} is not defined")
        if slots[root].dead:
            raise IRVerificationError(f"{name} slot {root} is dead")
