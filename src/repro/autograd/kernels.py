"""Fused, ordering-aware kernels for the message-passing hot path.

A graph convolution is a three-operand product ``act(A @ X @ W + b)`` with a
sparse propagation operator ``A`` (n x n, ``nnz`` stored entries), dense node
states ``X`` (n x f) and a weight matrix ``W`` (f x h).  Evaluating it as a
chain of generic autograd ops — as the seed implementation's
``spmm(A, linear(x))`` did — costs one graph node, one closure and one
temporary per step, and always multiplies in the same order.

:func:`spmm_bias_act` fuses the chain into a single autograd node and picks
the cheaper association from the operand shapes:

* **transform-first** ``A @ (X W)``: ``n*f*h + nnz*h`` FLOPs,
* **propagate-first** ``(A X) @ W``: ``nnz*f + n*f*h`` FLOPs.

The ``n*f*h`` dense product appears in both, so the choice reduces to
``nnz*h`` vs ``nnz*f``: propagate first exactly when the input width is
smaller than the output width (ties keep the seed's transform-first order).
The decision depends only on shapes, so it is deterministic across the
serial/thread/process backends and between the Tensor forward and the
raw-ndarray inference fast path (both call :func:`spmm_bias_act_forward`).

The bias is added *after* propagation (``A X W + b``), matching the standard
GCNConv formulation; the seed applied it before propagation, which would
forbid the propagate-first order entirely.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.sparse import SparseTensor
from repro.autograd.tensor import Tensor, _record_op, is_grad_enabled

#: Activations the fused kernel can apply in-place on the forward buffer
#: ("none" is the public alias of "identity" in ``functional.ACTIVATIONS``).
#: leaky_relu/elu are fused at the library defaults only — the fused call
#: takes a name, not parameters, so the hyper-parameters are pinned here and
#: must match ``functional.leaky_relu`` / ``functional.elu`` defaults.
FUSED_ACTIVATIONS = (None, "identity", "none", "relu", "leaky_relu", "elu")

#: Pinned hyper-parameters of the parameterised fused activations.
FUSED_NEGATIVE_SLOPE = 0.2
FUSED_ELU_ALPHA = 1.0


def apply_fused_activation(out: np.ndarray, activation: Optional[str]) -> None:
    """Apply a fused activation in place on the pre-activation buffer.

    Every branch is bit-identical to the unfused functional op on the same
    input: relu is the same ``np.maximum``; leaky_relu multiplies only the
    non-positive entries by the slope (IEEE multiplication is commutative,
    so ``out * slope`` matches the functional ``slope * out``); elu
    overwrites the non-positive entries with ``expm1(min(out, 0))`` — the
    ``alpha == 1.0`` scale is a bitwise no-op and therefore skipped.
    """
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    elif activation == "leaky_relu":
        np.multiply(out, FUSED_NEGATIVE_SLOPE, out=out,
                    where=np.logical_not(out > 0))
    elif activation == "elu":
        negative = np.logical_not(out > 0)
        np.copyto(out, np.expm1(np.minimum(out, 0.0)), where=negative)


def propagate_first(operator: SparseTensor, in_features: int, out_features: int) -> bool:
    """FLOP-count decision between ``(A X) W`` and ``A (X W)``.

    Both orders share the dense ``n*f*h`` product; the sparse side costs
    ``nnz*f`` when propagating first and ``nnz*h`` when transforming first,
    so the comparison is just ``f < h``.  Shape-only, hence deterministic.
    """
    del operator  # the decision is independent of nnz; kept for signature clarity
    return in_features < out_features


def spmm_bias_act_forward(
    matrix,
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    activation: Optional[str],
    prop_first: bool,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Raw-ndarray forward shared by the Tensor op and the inference fast path.

    Returns ``(out, propagated)`` where ``propagated`` is the intermediate
    ``A @ X`` (needed by the backward pass of the propagate-first order;
    ``None`` otherwise).
    """
    if prop_first:
        propagated = matrix @ x
        out = propagated @ weight
    else:
        propagated = None
        out = matrix @ (x @ weight)
    if bias is not None:
        out += bias
    apply_fused_activation(out, activation)
    return out, propagated


def spmm_bias_act(
    operator: SparseTensor,
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """Differentiable fused ``act(A @ X @ W + b)`` with FLOP-ordered products.

    ``operator`` is a constant (no gradient), like :func:`~repro.autograd.
    sparse.spmm`.  ``activation`` must be one of :data:`FUSED_ACTIVATIONS`;
    anything else belongs outside the kernel.
    """
    if activation not in FUSED_ACTIVATIONS:
        raise ValueError(
            f"unsupported fused activation {activation!r}; choose from {FUSED_ACTIVATIONS}")
    if not isinstance(operator, SparseTensor):
        operator = SparseTensor(operator)
    if not isinstance(x, Tensor):
        x = Tensor(x)

    prop_first = propagate_first(operator, x.shape[-1], weight.shape[-1])
    bias_data = None if bias is None else bias.data

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        out_data, propagated = spmm_bias_act_forward(
            operator.matrix, x.data, weight.data, bias_data, activation, prop_first)
        out = Tensor(out_data, requires_grad=False)
        _record_op("spmm_bias_act", out, parents, operator=operator,
                   activation=activation, prop_first=prop_first)
        return out

    # Gradient path: the elu backward local must come from the
    # *pre-activation* value (``exp(min(pre, 0))`` cannot be reconstructed
    # bit-exactly from ``expm1``), so stage the activation here instead of
    # inside ``spmm_bias_act_forward``.
    out_data, propagated = spmm_bias_act_forward(
        operator.matrix, x.data, weight.data, bias_data, None, prop_first)
    relu_mask = positive = elu_local = None
    if activation == "relu":
        apply_fused_activation(out_data, activation)
        relu_mask = out_data > 0
    elif activation == "leaky_relu":
        positive = out_data > 0
        apply_fused_activation(out_data, activation)
    elif activation == "elu":
        positive = out_data > 0
        # alpha == 1.0: the functional op's ``alpha * exp(...)`` scale is a
        # bitwise no-op, so the local derivative skips it too.
        elu_local = np.exp(np.minimum(out_data, 0.0))
        elu_local[positive] = 1.0
        apply_fused_activation(out_data, activation)
    out = Tensor(out_data, requires_grad=True, _prev=parents)

    def _backward(grad: np.ndarray) -> None:
        if relu_mask is not None:
            grad = grad * relu_mask
        elif activation == "leaky_relu":
            grad = np.where(positive, grad, FUSED_NEGATIVE_SLOPE * grad)
        elif activation == "elu":
            grad = grad * elu_local
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))
        if prop_first:
            # out = (A X) W: dW = (A X)^T g, dX = A^T (g W^T)
            if weight.requires_grad:
                weight._accumulate(propagated.T @ grad)
            if x.requires_grad:
                x._accumulate(operator.transposed_csr @ (grad @ weight.data.T))
        else:
            # out = A (X W): shared dS = A^T g, then dW = X^T dS, dX = dS W^T
            support_grad = operator.transposed_csr @ grad
            if weight.requires_grad:
                weight._accumulate(x.data.T @ support_grad)
            if x.requires_grad:
                x._accumulate(support_grad @ weight.data.T)

    out._backward = _backward
    _record_op("spmm_bias_act", out, parents, operator=operator,
               activation=activation, prop_first=prop_first)
    return out
