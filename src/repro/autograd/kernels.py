"""Fused, ordering-aware kernels for the message-passing hot path.

A graph convolution is a three-operand product ``act(A @ X @ W + b)`` with a
sparse propagation operator ``A`` (n x n, ``nnz`` stored entries), dense node
states ``X`` (n x f) and a weight matrix ``W`` (f x h).  Evaluating it as a
chain of generic autograd ops — as the seed implementation's
``spmm(A, linear(x))`` did — costs one graph node, one closure and one
temporary per step, and always multiplies in the same order.

:func:`spmm_bias_act` fuses the chain into a single autograd node and picks
the cheaper association from the operand shapes:

* **transform-first** ``A @ (X W)``: ``n*f*h + nnz*h`` FLOPs,
* **propagate-first** ``(A X) @ W``: ``nnz*f + n*f*h`` FLOPs.

The ``n*f*h`` dense product appears in both, so the choice reduces to
``nnz*h`` vs ``nnz*f``: propagate first exactly when the input width is
smaller than the output width (ties keep the seed's transform-first order).
The decision depends only on shapes, so it is deterministic across the
serial/thread/process backends and between the Tensor forward and the
raw-ndarray inference fast path (both call :func:`spmm_bias_act_forward`).

The bias is added *after* propagation (``A X W + b``), matching the standard
GCNConv formulation; the seed applied it before propagation, which would
forbid the propagate-first order entirely.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.functional import _scatter_sum
from repro.autograd.sparse import SparseTensor, spmm
from repro.autograd.tensor import Tensor, _record_op, is_grad_enabled

#: Activations the fused kernel can apply in-place on the forward buffer
#: ("none" is the public alias of "identity" in ``functional.ACTIVATIONS``).
#: leaky_relu/elu are fused at the library defaults only — the fused call
#: takes a name, not parameters, so the hyper-parameters are pinned here and
#: must match ``functional.leaky_relu`` / ``functional.elu`` defaults.
FUSED_ACTIVATIONS = (None, "identity", "none", "relu", "leaky_relu", "elu")

#: Pinned hyper-parameters of the parameterised fused activations.
FUSED_NEGATIVE_SLOPE = 0.2
FUSED_ELU_ALPHA = 1.0


def apply_fused_activation(out: np.ndarray, activation: Optional[str]) -> None:
    """Apply a fused activation in place on the pre-activation buffer.

    Every branch is bit-identical to the unfused functional op on the same
    input: relu is the same ``np.maximum``; leaky_relu multiplies only the
    non-positive entries by the slope (IEEE multiplication is commutative,
    so ``out * slope`` matches the functional ``slope * out``); elu
    overwrites the non-positive entries with ``expm1(min(out, 0))`` — the
    ``alpha == 1.0`` scale is a bitwise no-op and therefore skipped.
    """
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    elif activation == "leaky_relu":
        np.multiply(out, FUSED_NEGATIVE_SLOPE, out=out,
                    where=np.logical_not(out > 0))
    elif activation == "elu":
        negative = np.logical_not(out > 0)
        np.copyto(out, np.expm1(np.minimum(out, 0.0)), where=negative)


def propagate_first(operator: SparseTensor, in_features: int, out_features: int) -> bool:
    """FLOP-count decision between ``(A X) W`` and ``A (X W)``.

    Both orders share the dense ``n*f*h`` product; the sparse side costs
    ``nnz*f`` when propagating first and ``nnz*h`` when transforming first,
    so the comparison is just ``f < h``.  Shape-only, hence deterministic.
    """
    del operator  # the decision is independent of nnz; kept for signature clarity
    return in_features < out_features


def spmm_bias_act_forward(
    matrix,
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    activation: Optional[str],
    prop_first: bool,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Raw-ndarray forward shared by the Tensor op and the inference fast path.

    Returns ``(out, propagated)`` where ``propagated`` is the intermediate
    ``A @ X`` (needed by the backward pass of the propagate-first order;
    ``None`` otherwise).
    """
    if prop_first:
        propagated = matrix @ x
        out = propagated @ weight
    else:
        propagated = None
        out = matrix @ (x @ weight)
    if bias is not None:
        out += bias
    apply_fused_activation(out, activation)
    return out, propagated


def spmm_bias_act(
    operator: SparseTensor,
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """Differentiable fused ``act(A @ X @ W + b)`` with FLOP-ordered products.

    ``operator`` is a constant (no gradient), like :func:`~repro.autograd.
    sparse.spmm`.  ``activation`` must be one of :data:`FUSED_ACTIVATIONS`;
    anything else belongs outside the kernel.
    """
    if activation not in FUSED_ACTIVATIONS:
        raise ValueError(
            f"unsupported fused activation {activation!r}; choose from {FUSED_ACTIVATIONS}")
    if not isinstance(operator, SparseTensor):
        operator = SparseTensor(operator)
    if not isinstance(x, Tensor):
        x = Tensor(x)

    prop_first = propagate_first(operator, x.shape[-1], weight.shape[-1])
    bias_data = None if bias is None else bias.data

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        out_data, propagated = spmm_bias_act_forward(
            operator.matrix, x.data, weight.data, bias_data, activation, prop_first)
        out = Tensor(out_data, requires_grad=False)
        _record_op("spmm_bias_act", out, parents, operator=operator,
                   activation=activation, prop_first=prop_first)
        return out

    # Gradient path: the elu backward local must come from the
    # *pre-activation* value (``exp(min(pre, 0))`` cannot be reconstructed
    # bit-exactly from ``expm1``), so stage the activation here instead of
    # inside ``spmm_bias_act_forward``.
    out_data, propagated = spmm_bias_act_forward(
        operator.matrix, x.data, weight.data, bias_data, None, prop_first)
    relu_mask = positive = elu_local = None
    if activation == "relu":
        apply_fused_activation(out_data, activation)
        relu_mask = out_data > 0
    elif activation == "leaky_relu":
        positive = out_data > 0
        apply_fused_activation(out_data, activation)
    elif activation == "elu":
        positive = out_data > 0
        # alpha == 1.0: the functional op's ``alpha * exp(...)`` scale is a
        # bitwise no-op, so the local derivative skips it too.
        elu_local = np.exp(np.minimum(out_data, 0.0))
        elu_local[positive] = 1.0
        apply_fused_activation(out_data, activation)
    out = Tensor(out_data, requires_grad=True, _prev=parents)

    def _backward(grad: np.ndarray) -> None:
        if relu_mask is not None:
            grad = grad * relu_mask
        elif activation == "leaky_relu":
            grad = np.where(positive, grad, FUSED_NEGATIVE_SLOPE * grad)
        elif activation == "elu":
            grad = grad * elu_local
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))
        if prop_first:
            # out = (A X) W: dW = (A X)^T g, dX = A^T (g W^T)
            if weight.requires_grad:
                weight._accumulate(propagated.T @ grad)
            if x.requires_grad:
                x._accumulate(operator.transposed_csr @ (grad @ weight.data.T))
        else:
            # out = A (X W): shared dS = A^T g, then dW = X^T dS, dX = dS W^T
            support_grad = operator.transposed_csr @ grad
            if weight.requires_grad:
                weight._accumulate(x.data.T @ support_grad)
            if x.requires_grad:
                x._accumulate(support_grad @ weight.data.T)

    out._backward = _backward
    _record_op("spmm_bias_act", out, parents, operator=operator,
               activation=activation, prop_first=prop_first)
    return out


# ---------------------------------------------------------------------------
# Generalized sampled message passing: gspmm / gsddmm over relation blocks
# ---------------------------------------------------------------------------
#: Binary message operators understood by :func:`gspmm`.
GSPMM_OPS = ("copy_lhs", "copy_rhs", "mul", "add")

#: Per-destination reductions understood by :func:`gspmm`.
GSPMM_REDUCES = ("sum", "mean", "max")

#: Edge-wise operators understood by :func:`gsddmm`.
GSDDMM_OPS = ("add", "sub", "mul", "dot", "copy_lhs", "copy_rhs")

#: Operand targets for :func:`gsddmm` (`u` = edge source row, ``v`` = edge
#: destination row, ``e`` = the edge itself).
GSDDMM_TARGETS = ("u", "v", "e")


class RelationBlock:
    """Edge-parallel view of one canonical relation's adjacency block.

    A block is the kernel-facing representation of a single relation: the
    edge endpoint arrays in deterministic CSR (row-major) order, the stored
    edge weights, and lazily built scatter/aggregate operators.  The scatter
    CSRs follow the exact recipe of ``GraphTensors.edge_scatter`` — ``S[node,
    edge] = 1`` with edges in id order — so scatter sums through a block are
    bit-identical to the homogeneous attention path.
    """

    __slots__ = ("u", "v", "num_nodes", "edge_weight",
                 "_scatters", "_aggregates", "_inverse_degrees")

    def __init__(self, u: np.ndarray, v: np.ndarray, num_nodes: int,
                 edge_weight: Optional[np.ndarray] = None) -> None:
        self.u = np.asarray(u, dtype=np.int64)
        self.v = np.asarray(v, dtype=np.int64)
        self.num_nodes = int(num_nodes)
        self.edge_weight = edge_weight
        self._scatters: Dict[Tuple[str, str], sp.csr_matrix] = {}
        self._aggregates: Dict[str, SparseTensor] = {}
        self._inverse_degrees: Dict[str, np.ndarray] = {}

    @classmethod
    def from_structure(cls, structure: sp.spmatrix) -> "RelationBlock":
        """Build a block from a sparse structure matrix (row = u, col = v)."""
        coo = structure.tocoo()
        return cls(coo.row, coo.col, structure.shape[0], edge_weight=coo.data)

    @property
    def num_edges(self) -> int:
        return int(self.u.shape[0])

    def endpoint(self, target: str) -> np.ndarray:
        """The per-edge node index for target ``"u"`` or ``"v"``."""
        if target == "u":
            return self.u
        if target == "v":
            return self.v
        raise ValueError(f"unknown endpoint target {target!r}")

    def scatter(self, target: str, dtype) -> sp.csr_matrix:
        """CSR operator summing per-edge values into their ``u``/``v`` node."""
        key = (target, np.dtype(dtype).name)
        if key not in self._scatters:
            index = self.endpoint(target)
            matrix = sp.csr_matrix(
                (np.ones(self.num_edges, dtype=dtype),
                 (index, np.arange(self.num_edges))),
                shape=(self.num_nodes, self.num_edges))
            self._scatters[key] = matrix
        return self._scatters[key]

    def aggregate_operator(self, dtype) -> SparseTensor:
        """The ``(num_nodes, num_nodes)`` CSR computing ``out[v] = sum_u lhs[u]``.

        Used by the degenerate ``(copy_lhs, sum)`` lowering of :func:`gspmm`:
        within a row of the CSR the columns are sorted ascending, which is the
        edge-id order of this block, so the matmul accumulates in exactly the
        order of the generic scatter path.
        """
        key = np.dtype(dtype).name
        if key not in self._aggregates:
            matrix = sp.csr_matrix(
                (np.ones(self.num_edges, dtype=dtype), (self.v, self.u)),
                shape=(self.num_nodes, self.num_nodes))
            matrix.sort_indices()
            matrix.data.setflags(write=False)
            self._aggregates[key] = SparseTensor(matrix)
        return self._aggregates[key]

    def inverse_degrees(self, dtype) -> np.ndarray:
        """``1 / max(in_degree(v), 1)`` used by the mean reduction."""
        key = np.dtype(dtype).name
        if key not in self._inverse_degrees:
            degrees = np.bincount(self.v, minlength=self.num_nodes).astype(dtype)
            self._inverse_degrees[key] = 1.0 / np.maximum(degrees, 1.0)
        return self._inverse_degrees[key]


def _broadcast_edge_operand(rhs: np.ndarray, ndim: int) -> np.ndarray:
    """View an edge operand with trailing length-1 axes up to ``ndim``."""
    if rhs.ndim < ndim:
        return rhs.reshape(rhs.shape + (1,) * (ndim - rhs.ndim))
    return rhs


def _reduce_to(array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``array`` over its broadcast axes down to ``shape`` (grad helper)."""
    if array.shape == tuple(shape):
        return array
    extra = array.ndim - len(shape)
    if extra > 0:
        array = array.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (have, want) in enumerate(zip(array.shape, shape))
                 if want == 1 and have != 1)
    if axes:
        array = array.sum(axis=axes, keepdims=True)
    return array


def gspmm_forward(block: RelationBlock, op: str, reduce: str,
                  lhs: Optional[np.ndarray], rhs: Optional[np.ndarray],
                  out: Optional[np.ndarray] = None,
                  state: Optional[Dict[str, np.ndarray]] = None) -> np.ndarray:
    """Raw-ndarray forward of :func:`gspmm` (inference path / capture twin).

    ``out``, when given, receives the result in place.  ``state``, when
    given, is filled with the intermediates the backward pass reads (the
    gathered lhs rows, the broadcast rhs view, the mean scaling, and the
    argmax mask/tie counts of the max reduction).
    """
    keep = state if state is not None else {}
    if op == "copy_rhs":
        message = rhs
    else:
        gathered = lhs[block.u]
        if op == "copy_lhs":
            message = gathered
        else:
            rhs_b = _broadcast_edge_operand(rhs, gathered.ndim)
            message = gathered * rhs_b if op == "mul" else gathered + rhs_b
            keep["gathered"] = gathered
            keep["rhs_b"] = rhs_b
    n = block.num_nodes
    if reduce == "max":
        result = np.full((n,) + message.shape[1:], -np.inf, dtype=message.dtype)
        np.maximum.at(result, block.v, message)
        empty = ~np.isfinite(result)
        result[empty] = 0.0
        if state is not None:
            argmax_mask = (message == result[block.v]) & ~empty[block.v]
            tie_counts = np.zeros(result.shape, dtype=message.dtype)
            np.add.at(tie_counts, block.v, argmax_mask.astype(message.dtype))
            keep["argmax_mask"] = argmax_mask
            keep["tie_counts"] = np.maximum(tie_counts, 1.0)
    else:
        result = _scatter_sum(message, block.v, n,
                              block.scatter("v", message.dtype))
        if reduce == "mean":
            inv_deg = block.inverse_degrees(message.dtype)
            inv_deg = inv_deg.reshape((n,) + (1,) * (message.ndim - 1))
            result = result * inv_deg
            keep["inv_deg"] = inv_deg
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def gspmm_backward(block: RelationBlock, op: str, reduce: str,
                   grad: np.ndarray, state: Dict[str, np.ndarray],
                   lhs_shape: Optional[Tuple[int, ...]],
                   rhs_shape: Optional[Tuple[int, ...]]
                   ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Shared backward of :func:`gspmm` (dynamic closure and capture twin).

    Returns ``(grad_lhs, grad_rhs)`` with ``None`` for absent operands.
    """
    if reduce == "sum":
        grad_message = grad[block.v]
    elif reduce == "mean":
        grad_message = (grad * state["inv_deg"])[block.v]
    else:
        grad_message = (state["argmax_mask"] * grad[block.v]
                        / state["tie_counts"][block.v])
    grad_lhs = grad_rhs = None
    if lhs_shape is not None:
        contrib = grad_message if op != "mul" else grad_message * state["rhs_b"]
        grad_lhs = _scatter_sum(contrib, block.u, block.num_nodes,
                                block.scatter("u", contrib.dtype))
    if rhs_shape is not None:
        contrib = grad_message if op != "mul" else grad_message * state["gathered"]
        # The rhs broadcasts with *trailing* length-1 axes (see
        # ``_broadcast_edge_operand``), so reduce to that padded shape first.
        padded = tuple(rhs_shape) + (1,) * (contrib.ndim - len(rhs_shape))
        grad_rhs = _reduce_to(contrib, padded).reshape(rhs_shape)
    return grad_lhs, grad_rhs


def gspmm(block: RelationBlock, op: str, reduce: str,
          lhs: Optional[Tensor] = None, rhs: Optional[Tensor] = None) -> Tensor:
    """Generalized sparse message passing: ``out[v] = reduce_e op(lhs[u], rhs[e])``.

    The DGL-style message-compute kernel over one relation block: every edge
    ``e = (u, v)`` produces a message by combining the source-node operand
    ``lhs`` with the per-edge operand ``rhs`` (``op`` from
    :data:`GSPMM_OPS`), and messages are reduced into their destination node
    (``reduce`` from :data:`GSPMM_REDUCES`).  A 1-D-per-edge ``rhs`` (or any
    rhs with fewer axes than the message) broadcasts over the trailing
    message axes, which is how attention coefficients weight multi-head
    messages.

    The degenerate ``(copy_lhs, sum)`` combination lowers onto the fused CSR
    ``spmm`` fast path (one sparse matmul, already understood by the capture
    engine); every other combination records a single fused ``"gspmm"`` op.
    """
    if op not in GSPMM_OPS:
        raise ValueError(f"unsupported gspmm op {op!r}; choose from {GSPMM_OPS}")
    if reduce not in GSPMM_REDUCES:
        raise ValueError(
            f"unsupported gspmm reduce {reduce!r}; choose from {GSPMM_REDUCES}")
    if op != "copy_rhs" and lhs is None:
        raise ValueError(f"gspmm op {op!r} requires the lhs node operand")
    if op != "copy_lhs" and rhs is None:
        raise ValueError(f"gspmm op {op!r} requires the rhs edge operand")
    if lhs is not None and not isinstance(lhs, Tensor):
        lhs = Tensor(lhs)
    if rhs is not None and not isinstance(rhs, Tensor):
        rhs = Tensor(rhs)
    if rhs is not None and rhs.shape[0] != block.num_edges:
        raise ValueError(
            f"gspmm rhs has {rhs.shape[0]} rows but the block has "
            f"{block.num_edges} edges")

    if op == "copy_lhs" and reduce == "sum":
        # Plain neighbour sum: one CSR matmul through the existing fused
        # spmm path (bit-identical — within a destination row the CSR
        # accumulates in ascending source order, which is edge-id order).
        return spmm(block.aggregate_operator(lhs.data.dtype), lhs)

    parents = tuple(t for t in (lhs, rhs) if t is not None)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    state: Dict[str, np.ndarray] = {}
    out_data = gspmm_forward(block, op, reduce,
                             None if lhs is None else lhs.data,
                             None if rhs is None else rhs.data,
                             state=state if requires else None)
    out = Tensor(out_data, requires_grad=requires,
                 _prev=parents if requires else ())
    if requires:
        lhs_shape = None if lhs is None or not lhs.requires_grad else lhs.shape
        rhs_shape = None if rhs is None or not rhs.requires_grad else rhs.shape

        def _backward(grad: np.ndarray) -> None:
            grad_lhs, grad_rhs = gspmm_backward(
                block, op, reduce, grad, state, lhs_shape, rhs_shape)
            if grad_lhs is not None:
                lhs._accumulate(grad_lhs)
            if grad_rhs is not None:
                rhs._accumulate(grad_rhs)

        out._backward = _backward
    _record_op("gspmm", out, parents, block=block, op=op, reduce=reduce,
               has_lhs=lhs is not None, has_rhs=rhs is not None)
    return out


def _gsddmm_operand(block: RelationBlock, data: np.ndarray, target: str) -> np.ndarray:
    """Gather a gsddmm operand onto the edges (``e`` operands pass through)."""
    if target == "e":
        return data
    return data[block.endpoint(target)]


def gsddmm_forward(block: RelationBlock, op: str,
                   lhs: Optional[np.ndarray], rhs: Optional[np.ndarray],
                   lhs_target: str = "u", rhs_target: str = "v",
                   out: Optional[np.ndarray] = None,
                   state: Optional[Dict[str, np.ndarray]] = None) -> np.ndarray:
    """Raw-ndarray forward of :func:`gsddmm` (inference path / capture twin)."""
    keep = state if state is not None else {}
    left = right = None
    if lhs is not None:
        left = _gsddmm_operand(block, lhs, lhs_target)
        keep["left"] = left
    if rhs is not None:
        right = _gsddmm_operand(block, rhs, rhs_target)
        keep["right"] = right
    if op == "add":
        result = left + right
    elif op == "sub":
        result = left - right
    elif op == "mul":
        result = left * right
    elif op == "dot":
        result = (left * right).sum(axis=-1)
    elif op == "copy_lhs":
        result = left if lhs_target != "e" else left.copy()
    else:  # copy_rhs
        result = right if rhs_target != "e" else right.copy()
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def gsddmm_backward(block: RelationBlock, op: str, grad: np.ndarray,
                    state: Dict[str, np.ndarray],
                    lhs_shape: Optional[Tuple[int, ...]],
                    rhs_shape: Optional[Tuple[int, ...]],
                    lhs_target: str, rhs_target: str
                    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Shared backward of :func:`gsddmm` (dynamic closure and capture twin)."""

    def _route(contrib: np.ndarray, target: str, shape: Tuple[int, ...]) -> np.ndarray:
        if target == "e":
            return _reduce_to(contrib, shape).reshape(shape)
        per_edge = _reduce_to(contrib, (contrib.shape[0],) + tuple(shape[1:])) \
            .reshape((contrib.shape[0],) + tuple(shape[1:]))
        return _scatter_sum(per_edge, block.endpoint(target), shape[0],
                            block.scatter(target, per_edge.dtype))

    grad_lhs = grad_rhs = None
    if lhs_shape is not None:
        if op in ("add", "sub", "copy_lhs"):
            contrib = grad
        elif op == "mul":
            contrib = grad * state["right"]
        else:  # dot
            contrib = grad[..., None] * state["right"]
        grad_lhs = _route(contrib, lhs_target, lhs_shape)
    if rhs_shape is not None:
        if op in ("add", "copy_rhs"):
            contrib = grad
        elif op == "sub":
            contrib = -grad
        elif op == "mul":
            contrib = grad * state["left"]
        else:  # dot
            contrib = grad[..., None] * state["left"]
        grad_rhs = _route(contrib, rhs_target, rhs_shape)
    return grad_lhs, grad_rhs


def gsddmm(block: RelationBlock, op: str,
           lhs: Optional[Tensor] = None, rhs: Optional[Tensor] = None,
           lhs_target: str = "u", rhs_target: str = "v") -> Tensor:
    """Generalized sampled dense-dense product: per-edge ``op(lhs_t, rhs_t)``.

    Each operand is gathered onto the edges of the block from its target
    (``"u"`` source row, ``"v"`` destination row, or ``"e"`` for data already
    per-edge) and combined edge-wise with ``op`` from :data:`GSDDMM_OPS`
    (``dot`` contracts the trailing axis).  This is the attention-score
    pattern: ``gsddmm(block, "add", score_src, score_dst)`` computes
    ``score_src[u_e] + score_dst[v_e]`` as one fused, capture-recordable op.
    """
    if op not in GSDDMM_OPS:
        raise ValueError(f"unsupported gsddmm op {op!r}; choose from {GSDDMM_OPS}")
    for target in (lhs_target, rhs_target):
        if target not in GSDDMM_TARGETS:
            raise ValueError(
                f"unsupported gsddmm target {target!r}; choose from {GSDDMM_TARGETS}")
    if op != "copy_rhs" and lhs is None:
        raise ValueError(f"gsddmm op {op!r} requires the lhs operand")
    if op != "copy_lhs" and rhs is None:
        raise ValueError(f"gsddmm op {op!r} requires the rhs operand")
    if op == "copy_lhs":
        rhs = None
    if op == "copy_rhs":
        lhs = None
    if lhs is not None and not isinstance(lhs, Tensor):
        lhs = Tensor(lhs)
    if rhs is not None and not isinstance(rhs, Tensor):
        rhs = Tensor(rhs)

    parents = tuple(t for t in (lhs, rhs) if t is not None)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    state: Dict[str, np.ndarray] = {}
    out_data = gsddmm_forward(block, op,
                              None if lhs is None else lhs.data,
                              None if rhs is None else rhs.data,
                              lhs_target, rhs_target, state=state)
    out = Tensor(out_data, requires_grad=requires,
                 _prev=parents if requires else ())
    if requires:
        lhs_shape = None if lhs is None or not lhs.requires_grad else lhs.shape
        rhs_shape = None if rhs is None or not rhs.requires_grad else rhs.shape

        def _backward(grad: np.ndarray) -> None:
            grad_lhs, grad_rhs = gsddmm_backward(
                block, op, grad, state, lhs_shape, rhs_shape,
                lhs_target, rhs_target)
            if grad_lhs is not None:
                lhs._accumulate(grad_lhs)
            if grad_rhs is not None:
                rhs._accumulate(grad_rhs)

        out._backward = _backward
    _record_op("gsddmm", out, parents, block=block, op=op,
               lhs_target=lhs_target, rhs_target=rhs_target,
               has_lhs=lhs is not None, has_rhs=rhs is not None)
    return out
