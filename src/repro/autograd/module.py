"""Parameter containers mirroring the familiar ``torch.nn.Module`` contract.

A :class:`Module` automatically registers every :class:`Parameter` and
sub-module assigned as an attribute, exposes ``parameters()`` /
``named_parameters()`` iterators, a ``train()`` / ``eval()`` switch, and
``state_dict`` / ``load_state_dict`` for seed-controlled re-initialisation of
ensemble members and for the fitted-ensemble artifacts of
:mod:`repro.core.artifact`.

Non-trainable array state (e.g. ``BatchNorm`` running statistics) is tracked
through :meth:`Module.register_buffer` so snapshots and saved artifacts carry
it alongside the parameters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is flagged as trainable and picked up by ``Module``."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network building blocks."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        elif name in self.__dict__.get("_buffers", ()):
            # Re-assigning a registered buffer keeps the registry in sync.
            # (Running statistics are updated in place these days, so the
            # array identity the capture engine relies on is preserved.)
            self._buffers[name] = np.asarray(value)
            value = self._buffers[name]
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array as part of the module's state.

        Buffers travel with ``state_dict`` / ``load_state_dict`` (and hence
        with trainer best-epoch snapshots and saved artifacts) but are
        invisible to ``parameters()`` and the optimisers.  Plain attribute
        assignment to the same name afterwards updates the buffer.
        """
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield prefix + name, buffer
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self, copy: bool = True) -> Dict[str, np.ndarray]:
        """Every parameter and registered buffer as ``{name: ndarray}``.

        ``copy=True`` (the default) returns **deep copies** and is the only
        safe mode for snapshots that must survive further training: the
        optimisers (:mod:`repro.autograd.optim`) update ``param.data``
        strictly in place, so an aliased snapshot would silently track every
        subsequent step instead of freezing the recorded epoch.
        ``copy=False`` returns aliased views for read-only consumers that
        immediately materialise the arrays elsewhere (e.g.
        ``np.savez`` in :mod:`repro.core.artifact`), halving peak memory.
        """
        entries = list(self.named_parameters())
        state = {name: (param.data.copy() if copy else param.data)
                 for name, param in entries}
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy() if copy else buffer
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters and buffers from :meth:`state_dict` output.

        Arrays are copied in (never aliased), so the caller's dict remains a
        valid independent snapshot afterwards.
        """
        own = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = (set(own) | set(buffers)) - set(state)
        unexpected = set(state) - (set(own) | set(buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].copy()
        for name, buffer in buffers.items():
            if buffer.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {buffer.shape} vs {state[name].shape}"
                )
            # In place, not a rebind: captured replays hold references to the
            # registered buffer arrays, so restoring a snapshot must preserve
            # array identity.
            np.copyto(buffer, state[name])

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def infer(self, *args, **kwargs):
        """Raw-ndarray inference: take/return plain arrays, no graph recording.

        The base implementation wraps ndarray arguments into constant
        tensors, runs :meth:`forward` under ``no_grad`` and unwraps the
        result, so every module supports ``infer`` with identical values.
        Hot modules (``Linear``, the message-passing convolutions) override
        it with pure-NumPy bodies that skip Tensor construction entirely —
        overrides must compute bit-for-bit the same result as ``forward``.
        """
        from repro.autograd.tensor import no_grad

        with no_grad():
            wrapped = tuple(
                Tensor(argument) if isinstance(argument, np.ndarray) else argument
                for argument in args
            )
            out = self.forward(*wrapped, **kwargs)
        return out.data if isinstance(out, Tensor) else out

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """A list of sub-modules that is properly registered for parameter discovery."""

    def __init__(self, modules=None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply a sequence of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.add_module(str(len(self._items)), module)
            self._items.append(module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)
