"""Parameter containers mirroring the familiar ``torch.nn.Module`` contract.

A :class:`Module` automatically registers every :class:`Parameter` and
sub-module assigned as an attribute, exposes ``parameters()`` /
``named_parameters()`` iterators, a ``train()`` / ``eval()`` switch, and
``state_dict`` / ``load_state_dict`` for seed-controlled re-initialisation of
ensemble members.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is flagged as trainable and picked up by ``Module``."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network building blocks."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def infer(self, *args, **kwargs):
        """Raw-ndarray inference: take/return plain arrays, no graph recording.

        The base implementation wraps ndarray arguments into constant
        tensors, runs :meth:`forward` under ``no_grad`` and unwraps the
        result, so every module supports ``infer`` with identical values.
        Hot modules (``Linear``, the message-passing convolutions) override
        it with pure-NumPy bodies that skip Tensor construction entirely —
        overrides must compute bit-for-bit the same result as ``forward``.
        """
        from repro.autograd.tensor import no_grad

        with no_grad():
            wrapped = tuple(
                Tensor(argument) if isinstance(argument, np.ndarray) else argument
                for argument in args
            )
            out = self.forward(*wrapped, **kwargs)
        return out.data if isinstance(out, Tensor) else out

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """A list of sub-modules that is properly registered for parameter discovery."""

    def __init__(self, modules=None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply a sequence of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.add_module(str(len(self._items)), module)
            self._items.append(module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)
