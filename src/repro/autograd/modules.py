"""Dense building-block layers used throughout the GNN model zoo."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.module import Module, Parameter
from repro.autograd.tensor import Tensor


class Linear(Module):
    """Affine transform ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def reset_parameters(self, rng: Optional[np.random.Generator] = None) -> None:
        self.weight.data = init.glorot_uniform((self.in_features, self.out_features), rng=rng)
        if self.bias is not None:
            self.bias.data = init.zeros((self.out_features,))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out


class Dropout(Module):
    """Inverted dropout; a no-op when the module is in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must lie in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)

    def infer(self, x: np.ndarray) -> np.ndarray:
        if self.training and self.p > 0.0:
            # Inference callers run in eval mode; keep exact RNG parity with
            # the Tensor path if someone does call this while training.
            return F.dropout(Tensor(x), self.p, training=True, rng=self.rng).data
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ELU(Module):
    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return F.elu(x, alpha=self.alpha)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class BatchNorm(Module):
    """Batch normalisation over the first dimension (node dimension)."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        # Registered buffers so best-epoch snapshots and saved artifacts
        # carry the running statistics alongside the affine parameters.
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            # The running-stat update is a first-class recorded op (updating
            # the registered buffers in place) so captured replays re-run it
            # each epoch instead of bailing out on a hidden side effect.
            x = F.batch_norm_stats(x, self.running_mean, self.running_var,
                                   self.momentum)
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            normed = centered * ((var + self.eps) ** -0.5)
        else:
            normed = (x - Tensor(self.running_mean)) * Tensor(
                1.0 / np.sqrt(self.running_var + self.eps)
            )
        return normed * self.gamma + self.beta


class MLP(Module):
    """Multi-layer perceptron with configurable depth, used by GIN and baselines."""

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 num_layers: int = 2, dropout: float = 0.0, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("MLP needs at least one layer")
        self.activation = F.activation(activation)
        self.activation_array = F.activation_array(activation)
        self.dropout = Dropout(dropout, rng=rng)
        from repro.autograd.module import ModuleList

        self.layers = ModuleList()
        if num_layers == 1:
            self.layers.append(Linear(in_features, out_features, rng=rng))
        else:
            self.layers.append(Linear(in_features, hidden, rng=rng))
            for _ in range(num_layers - 2):
                self.layers.append(Linear(hidden, hidden, rng=rng))
            self.layers.append(Linear(hidden, out_features, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self.activation(x)
                x = self.dropout(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for i, layer in enumerate(self.layers):
            x = layer.infer(x)
            if i < len(self.layers) - 1:
                x = self.activation_array(x)
                x = self.dropout.infer(x)
        return x
