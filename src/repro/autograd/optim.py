"""Optimisers and learning-rate schedulers.

The paper trains every candidate model with Adam (β1=0.9, β2=0.98, ε=1e-9),
weight decay 5e-4 and a step learning-rate decay of 0.9 every 3 epochs, so
those are the defaults exposed here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.module import Parameter


class Optimizer:
    """Base optimiser: holds parameters and implements ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled gradient weight decay (paper defaults)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 betas: tuple = (0.9, 0.98), eps: float = 1e-9,
                 weight_decay: float = 5e-4) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 3, gamma: float = 0.9) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class ConstantLR:
    """A scheduler that never changes the learning rate (useful default)."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def step(self) -> None:
        return None

    @property
    def lr(self) -> float:
        return self.optimizer.lr
