"""Optimisers and learning-rate schedulers.

The paper trains every candidate model with Adam (β1=0.9, β2=0.98, ε=1e-9),
weight decay 5e-4 and a step learning-rate decay of 0.9 every 3 epochs, so
those are the defaults exposed here.

All update rules run **in place**: moments, velocities and parameters are
mutated through ``out=`` ufunc calls and augmented assignment against two
per-parameter scratch buffers, so a step allocates nothing after the first
call.  The classic functional formulation (``param.data = param.data - ...``,
``grad = grad + weight_decay * param.data``) allocated four to six fresh
parameter-sized arrays per parameter per step, which multiplied across the
thousands of small training runs an AutoHEnsGNN pipeline performs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.module import Parameter


class Optimizer:
    """Base optimiser: holds parameters and implements ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser received an empty parameter list")
        self.lr = lr
        # Two scratch buffers per parameter, allocated lazily on first use:
        # one holds the weight-decayed gradient, one the temporary of the
        # moment/update arithmetic.
        self._scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._scratch2: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            # Tensor.zero_grad parks the gradient buffer for reuse by the
            # next backward pass instead of dropping it on the floor.
            param.zero_grad()

    def _buffer(self, store: List[Optional[np.ndarray]], index: int,
                param: Parameter) -> np.ndarray:
        """One lazily allocated scratch buffer; allocated only when requested
        so e.g. ``SGD(weight_decay=0)`` never materialises a decay buffer."""
        buf = store[index]
        if buf is None or buf.shape != param.data.shape or buf.dtype != param.data.dtype:
            buf = store[index] = np.empty_like(param.data)
        return buf

    def _decayed_grad(self, param: Parameter, buf: np.ndarray,
                      weight_decay: float) -> np.ndarray:
        """``grad + weight_decay * param`` computed into ``buf`` (no temporaries)."""
        np.multiply(param.data, weight_decay, out=buf)
        buf += param.grad
        return buf

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, (param, velocity) in enumerate(zip(self.parameters, self._velocity)):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = self._decayed_grad(
                    param, self._buffer(self._scratch, index, param), self.weight_decay)
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            tmp = self._buffer(self._scratch2, index, param)
            np.multiply(grad, self.lr, out=tmp)
            param.data -= tmp


class Adam(Optimizer):
    """Adam with decoupled gradient weight decay (paper defaults)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 betas: tuple = (0.9, 0.98), eps: float = 1e-9,
                 weight_decay: float = 5e-4) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, (param, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if param.grad is None:
                continue
            # Adam needs both buffers unconditionally: ``tmp`` for the moment
            # arithmetic and ``buf`` for the final update term.
            buf = self._buffer(self._scratch, index, param)
            tmp = self._buffer(self._scratch2, index, param)
            grad = param.grad
            if self.weight_decay:
                grad = self._decayed_grad(param, buf, self.weight_decay)
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(grad, 1.0 - self.beta1, out=tmp)
            m *= self.beta1
            m += tmp
            # v = beta2 * v + (1 - beta2) * grad^2
            np.multiply(grad, grad, out=tmp)
            tmp *= 1.0 - self.beta2
            v *= self.beta2
            v += tmp
            # param -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=tmp)
            np.sqrt(tmp, out=tmp)
            tmp += self.eps
            np.divide(m, bias1, out=buf)
            buf /= tmp
            buf *= self.lr
            param.data -= buf


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 3, gamma: float = 0.9) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class ConstantLR:
    """A scheduler that never changes the learning rate (useful default)."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def step(self) -> None:
        return None

    @property
    def lr(self) -> float:
        return self.optimizer.lr
