"""Constant sparse operands for graph propagation.

GNN layers repeatedly multiply a (normalised) adjacency matrix against dense
node-feature tensors.  The adjacency matrix itself is never a trainable
quantity in any of the models this repository reproduces, so we wrap a SciPy
CSR matrix in :class:`SparseTensor` and expose a differentiable
``sparse @ dense`` product (:func:`spmm`) whose gradient only flows into the
dense operand.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.dtype import compute_dtype
from repro.autograd.tensor import Tensor, _record_op


class SparseTensor:
    """An immutable sparse matrix used as a constant in autograd expressions."""

    __slots__ = ("matrix", "_transposed_csr", "_fingerprint")

    def __init__(self, matrix: Union[sp.spmatrix, np.ndarray]) -> None:
        dtype = compute_dtype()
        if sp.issparse(matrix):
            # Zero-copy alias only for matrices whose buffers are already
            # read-only (the ComputeCache freezes its values): each graph
            # then shares one CSR per operator, and an in-place write through
            # any alias raises instead of corrupting concurrent trainings.
            # Caller-owned (writable) matrices are copied, as the seed
            # implementation always did, so constructing a SparseTensor
            # never freezes or aliases a matrix the caller may still mutate.
            if isinstance(matrix, sp.csr_matrix) and matrix.dtype == dtype \
                    and not matrix.data.flags.writeable:
                self.matrix = matrix
            else:
                self.matrix = matrix.tocsr().astype(dtype)
        else:
            self.matrix = sp.csr_matrix(np.asarray(matrix, dtype=dtype))
        self._transposed_csr = None
        self._fingerprint = None

    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def transposed_csr(self) -> sp.csr_matrix:
        """The CSR transpose, built once and reused by every backward pass.

        The matrix is an immutable constant, so the transpose never goes
        stale; computing it per ``spmm`` call (as the seed implementation
        did) redid an O(nnz) conversion on every gradient-requiring forward.
        """
        if self._transposed_csr is None:
            self._transposed_csr = self.matrix.T.tocsr()
        return self._transposed_csr

    @property
    def fingerprint(self) -> str:
        """Content hash identifying this matrix in the shared compute cache."""
        if self._fingerprint is None:
            from repro.parallel.cache import csr_fingerprint

            self._fingerprint = csr_fingerprint(self.matrix)
        return self._fingerprint

    def __getstate__(self) -> dict:
        # Derived fields are cheap to rebuild; keep pickles (sent to process
        # backend workers) small by dropping them.
        return {"matrix": self.matrix}

    def __setstate__(self, state: dict) -> None:
        self.matrix = state["matrix"]
        self._transposed_csr = None
        self._fingerprint = None

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.matrix.todense())

    def transpose(self) -> "SparseTensor":
        return SparseTensor(self.matrix.T)

    @property
    def T(self) -> "SparseTensor":
        return self.transpose()

    def __matmul__(self, dense: Tensor) -> Tensor:
        return spmm(self, dense)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"SparseTensor(shape={self.shape}, nnz={self.nnz})"


def spmm(sparse: SparseTensor, dense: Tensor) -> Tensor:
    """Differentiable product of a constant sparse matrix and a dense tensor.

    Gradients flow only into ``dense``; the sparse operand is a constant.
    """
    if not isinstance(sparse, SparseTensor):
        sparse = SparseTensor(sparse)
    if not isinstance(dense, Tensor):
        dense = Tensor(dense)

    out_data = sparse.matrix @ dense.data
    out = Tensor(out_data, requires_grad=dense.requires_grad, _prev=(dense,) if dense.requires_grad else ())
    if out.requires_grad:
        transposed = sparse.transposed_csr

        def _backward(grad: np.ndarray) -> None:
            dense._accumulate(transposed @ grad)

        out._backward = _backward
    _record_op("spmm", out, (dense,), sparse=sparse)
    return out
