"""Constant sparse operands for graph propagation.

GNN layers repeatedly multiply a (normalised) adjacency matrix against dense
node-feature tensors.  The adjacency matrix itself is never a trainable
quantity in any of the models this repository reproduces, so we wrap a SciPy
CSR matrix in :class:`SparseTensor` and expose a differentiable
``sparse @ dense`` product (:func:`spmm`) whose gradient only flows into the
dense operand.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor


class SparseTensor:
    """An immutable sparse matrix used as a constant in autograd expressions."""

    __slots__ = ("matrix",)

    def __init__(self, matrix: Union[sp.spmatrix, np.ndarray]) -> None:
        if sp.issparse(matrix):
            self.matrix = matrix.tocsr().astype(np.float64)
        else:
            self.matrix = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))

    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.matrix.todense())

    def transpose(self) -> "SparseTensor":
        return SparseTensor(self.matrix.T)

    @property
    def T(self) -> "SparseTensor":
        return self.transpose()

    def __matmul__(self, dense: Tensor) -> Tensor:
        return spmm(self, dense)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"SparseTensor(shape={self.shape}, nnz={self.nnz})"


def spmm(sparse: SparseTensor, dense: Tensor) -> Tensor:
    """Differentiable product of a constant sparse matrix and a dense tensor.

    Gradients flow only into ``dense``; the sparse operand is a constant.
    """
    if not isinstance(sparse, SparseTensor):
        sparse = SparseTensor(sparse)
    if not isinstance(dense, Tensor):
        dense = Tensor(dense)

    out_data = sparse.matrix @ dense.data
    out = Tensor(out_data, requires_grad=dense.requires_grad, _prev=(dense,) if dense.requires_grad else ())
    if out.requires_grad:
        transposed = sparse.matrix.T.tocsr()

        def _backward(grad: np.ndarray) -> None:
            dense._accumulate(transposed @ grad)

        out._backward = _backward
    return out
