"""Core ``Tensor`` type implementing reverse-mode automatic differentiation.

The implementation follows the classic tape-less design: every operation
returns a new :class:`Tensor` holding references to its inputs and a closure
that propagates the output gradient to them.  Calling :meth:`Tensor.backward`
runs a topological sort of the recorded graph and accumulates gradients into
the ``grad`` attribute of every leaf that has ``requires_grad=True``.

Arrays are materialised in the process-wide *compute dtype*
(:mod:`repro.autograd.dtype`): float64 by default — double precision is
affordable on graphs of a few tens of thousands of nodes and removes an
entire class of numerical-stability questions from the architecture-search
experiments — with float32 as a memory-bandwidth-halving opt-in.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.autograd.dtype import compute_dtype

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Grad mode is thread-local so that one thread evaluating under ``no_grad()``
# (e.g. the per-epoch validation pass) cannot switch off graph recording for
# models being trained concurrently on other threads by the parallel
# execution backends.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


# Capture tracing (repro.autograd.capture): while a tape is installed for
# this thread, every op constructed below also records itself (kind, operand
# tensors, metadata) so the epoch can later be replayed without Tensors or
# closures.  Recording is purely observational — with no tape installed the
# only cost is one thread-local attribute read per op.
_TRACE = threading.local()


def _record_op(kind: str, out: "Tensor", inputs: tuple, **meta) -> None:
    tape = getattr(_TRACE, "tape", None)
    if tape is not None:
        tape.record(kind, out, inputs, meta)


def _as_array(value: ArrayLike) -> np.ndarray:
    dtype = compute_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _reduce_extra_dims(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum leading batch dimensions so ``grad`` matches ``shape``.

    Needed by batched matrix products where one operand (typically a weight
    matrix) participates in a broadcasted 3-D product.
    """
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    return grad


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size one.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name",
                 "_grad_buffer")
    __array_priority__ = 100  # make NumPy defer to our reflected operators

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Iterable["Tensor"] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: tuple = tuple(_prev)
        self.name = name
        self._grad_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Clear the gradient, parking its buffer for reuse by the next backward.

        Long-lived tensors (parameters) accumulate a same-shaped gradient
        every training step; recycling the buffer removes one full-parameter
        allocation per parameter per step.
        """
        if self.grad is not None:
            self._grad_buffer = self.grad
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"]) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            buffer = self._grad_buffer
            if buffer is not None and isinstance(grad, np.ndarray) \
                    and buffer.shape == grad.shape:
                # Recycle the buffer parked by ``zero_grad`` instead of
                # allocating a fresh copy (hot path: every parameter, every
                # training step).
                np.copyto(buffer, grad)
                self.grad = buffer
                self._grad_buffer = None
            else:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        elif isinstance(grad, np.ndarray) and grad.shape == self.grad.shape:
            # In-place: the first accumulation always copies, so ``self.grad``
            # is owned by this tensor and never aliases an incoming array.
            self.grad += grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate through the recorded graph starting from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        tape = getattr(_TRACE, "tape", None)
        if tape is not None:
            tape.note_backward(self)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(_unbroadcast(grad, self.shape))
                other._accumulate(_unbroadcast(grad, other.shape))
            out._backward = _backward
        _record_op("add", out, (self, other))
        return out

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data - other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(_unbroadcast(grad, self.shape))
                other._accumulate(_unbroadcast(-grad, other.shape))
            out._backward = _backward
        _record_op("sub", out, (self, other))
        return out

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
                other._accumulate(_unbroadcast(grad * self.data, other.shape))
            out._backward = _backward
        _record_op("mul", out, (self, other))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )
            out._backward = _backward
        _record_op("div", out, (self, other))
        return out

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(-grad)
            out._backward = _backward
        _record_op("neg", out, (self,))
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make(self.data ** exponent, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        _record_op("pow", out, (self,), exponent=exponent)
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    if other.data.ndim == 1:
                        grad_self = (np.outer(grad, other.data)
                                     if grad.ndim == 1 else grad[..., None] * other.data)
                    else:
                        grad_self = grad @ other.data.swapaxes(-1, -2)
                    self._accumulate(_reduce_extra_dims(grad_self, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        grad_other = np.outer(self.data, grad)
                    else:
                        grad_other = self.data.swapaxes(-1, -2) @ grad
                    other._accumulate(_reduce_extra_dims(grad_other, other.shape))
            out._backward = _backward
        _record_op("matmul", out, (self, other))
        return out

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__matmul__(other)

    def transpose(self, *axes: int) -> "Tensor":
        axes_arg = axes if axes else None
        out = self._make(np.transpose(self.data, axes_arg), (self,))
        if out.requires_grad:
            if axes_arg is None:
                inverse = None
            else:
                inverse = tuple(np.argsort(axes_arg))

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(np.transpose(grad, inverse))
            out._backward = _backward
        _record_op("transpose", out, (self,), axes=axes_arg)
        return out

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            original = self.shape

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(original))
            out._backward = _backward
        _record_op("reshape", out, (self,), shape=shape)
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)
            out._backward = _backward
        _record_op("getitem", out, (self,), index=index)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                expanded = grad
                if axis is not None and not keepdims:
                    expanded = np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(expanded, self.shape).copy())
            out._backward = _backward
        _record_op("sum", out, (self,), axis=axis, keepdims=keepdims)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                expanded_out = out_data
                expanded_grad = grad
                if axis is not None and not keepdims:
                    expanded_out = np.expand_dims(out_data, axis)
                    expanded_grad = np.expand_dims(grad, axis)
                mask = (self.data == expanded_out).astype(self.data.dtype)
                mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                self._accumulate(mask * expanded_grad)
            out._backward = _backward
        _record_op("max", out, (self,), axis=axis, keepdims=keepdims)
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (the rest live in ``functional``)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out_data)
            out._backward = _backward
        _record_op("exp", out, (self,))
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad / self.data)
            out._backward = _backward
        _record_op("log", out, (self,))
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:
            # The boolean mask is a backward-only local: skip it entirely
            # under ``no_grad`` and keep it 1 byte/element when recorded.
            mask = self.data > 0

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)
            out._backward = _backward
        _record_op("relu", out, (self,))
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * (1.0 - out_data ** 2))
            out._backward = _backward
        _record_op("tanh", out, (self,))
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out_data * (1.0 - out_data))
            out._backward = _backward
        _record_op("sigmoid", out, (self,))
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,))
        if out.requires_grad:
            sign = np.sign(self.data)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * sign)
            out._backward = _backward
        _record_op("abs", out, (self,))
        return out
