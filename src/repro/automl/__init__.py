"""AutoML runtime utilities: time budgets, hyper-parameter grids and the
competition-style runner that consumes AutoGraph-format dataset directories."""

from repro.automl.budget import TimeBudget, BudgetExceeded
from repro.automl.hyperparams import HyperparameterGrid, DEFAULT_GRID
from repro.automl.runner import AutoGraphRunner, CompetitionSubmission

__all__ = [
    "TimeBudget",
    "BudgetExceeded",
    "HyperparameterGrid",
    "DEFAULT_GRID",
    "AutoGraphRunner",
    "CompetitionSubmission",
]
