"""Wall-clock time-budget management.

The AutoGraph challenge aborts solutions that exceed a per-dataset time
budget, so the winning solution constantly checks remaining time and degrades
gracefully (fewer bagging rounds, the memory-light adaptive search) instead
of failing.  :class:`TimeBudget` provides that bookkeeping.
"""

from __future__ import annotations

import time
from typing import Optional


class BudgetExceeded(RuntimeError):
    """Raised when a stage starts after the time budget has already elapsed."""


class TimeBudget:
    """Tracks elapsed wall-clock time against an optional budget in seconds."""

    def __init__(self, budget_seconds: Optional[float] = None) -> None:
        self.budget_seconds = budget_seconds
        self.start_time = time.time()
        self.checkpoints: list[tuple[str, float]] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return time.time() - self.start_time

    def remaining(self) -> float:
        if self.budget_seconds is None:
            return float("inf")
        return max(self.budget_seconds - self.elapsed(), 0.0)

    def remaining_fraction(self) -> float:
        if self.budget_seconds is None:
            return 1.0
        return self.remaining() / self.budget_seconds

    def exhausted(self) -> bool:
        return self.remaining() <= 0.0

    # ------------------------------------------------------------------
    # Control flow helpers
    # ------------------------------------------------------------------
    def check(self, stage: str) -> None:
        """Record a checkpoint; raise :class:`BudgetExceeded` if out of time."""
        self.checkpoints.append((stage, self.elapsed()))
        if self.budget_seconds is not None and self.exhausted():
            raise BudgetExceeded(
                f"time budget of {self.budget_seconds:.0f}s exhausted after stage {stage!r}"
            )

    def has_time_for_another(self, elapsed_so_far: float, completed_rounds: int) -> bool:
        """Heuristic: is there room for one more round of the same average cost?"""
        if self.budget_seconds is None:
            return True
        if completed_rounds <= 0:
            return not self.exhausted()
        average_cost = elapsed_so_far / completed_rounds
        return self.remaining() > 1.5 * average_cost

    def report(self) -> dict:
        return {
            "budget_seconds": self.budget_seconds,
            "elapsed": self.elapsed(),
            "checkpoints": list(self.checkpoints),
        }
