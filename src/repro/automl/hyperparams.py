"""Hyper-parameter grids searched automatically by the AutoML layer.

Appendix A1 of the paper: dropout in {0.5, 0.25, 0.1}, learning rate in
{5e-2, 3e-2, 1e-2, 7.5e-3, 5e-3, 3e-3, 1e-3, 5e-4}, plus per-model variants
(e.g. GraphSAGE-mean vs GraphSAGE-pool, which live in the model zoo as
separate candidates).  ``budget_scale`` lets callers shrink the grid under a
tight time budget — the same reduction the winning submission applied on the
final challenge datasets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

#: The paper's full learning-rate grid (Appendix A1).
PAPER_LR_GRID: Sequence[float] = (5e-2, 3e-2, 1e-2, 7.5e-3, 5e-3, 3e-3, 1e-3, 5e-4)
#: The paper's dropout grid.
PAPER_DROPOUT_GRID: Sequence[float] = (0.5, 0.25, 0.1)


@dataclass
class HyperparameterGrid:
    """A named cartesian product of hyper-parameter values."""

    learning_rates: Sequence[float] = PAPER_LR_GRID
    dropouts: Sequence[float] = PAPER_DROPOUT_GRID
    hidden_sizes: Sequence[int] = (64,)
    extra: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        keys = ["lr", "dropout", "hidden"] + list(self.extra)
        value_lists: List[Sequence[object]] = [self.learning_rates, self.dropouts,
                                               self.hidden_sizes]
        value_lists.extend(self.extra.values())
        for combination in itertools.product(*value_lists):
            yield dict(zip(keys, combination))

    def __len__(self) -> int:
        size = len(self.learning_rates) * len(self.dropouts) * len(self.hidden_sizes)
        for values in self.extra.values():
            size *= len(values)
        return size

    def scaled(self, budget_scale: float) -> "HyperparameterGrid":
        """Return a grid shrunk to roughly ``budget_scale`` of the original size.

        The reduction keeps the extreme and the middle values of each axis,
        which is how the winning solution reduced its search space when the
        challenge time budget was tight (Section IV-E).
        """
        if not 0.0 < budget_scale <= 1.0:
            raise ValueError("budget_scale must lie in (0, 1]")
        if budget_scale == 1.0:
            return self

        def shrink(values: Sequence) -> Sequence:
            values = list(values)
            target = max(1, int(round(len(values) * budget_scale)))
            if target >= len(values):
                return values
            if target == 1:
                return [values[len(values) // 2]]
            step = (len(values) - 1) / (target - 1)
            return [values[int(round(i * step))] for i in range(target)]

        return HyperparameterGrid(
            learning_rates=shrink(self.learning_rates),
            dropouts=shrink(self.dropouts),
            hidden_sizes=shrink(self.hidden_sizes),
            extra={key: shrink(values) for key, values in self.extra.items()},
        )


#: Grid actually used by the offline reproduction (a mid-sized subset of the paper grid).
DEFAULT_GRID = HyperparameterGrid(
    learning_rates=(5e-2, 1e-2, 5e-3, 1e-3),
    dropouts=(0.5, 0.25, 0.1),
)
