"""Competition-style runner: AutoGraph dataset directory in, predictions out.

This is the "automatic prediction without human intervention" entry point of
Section IV-E: point :class:`AutoGraphRunner` at one or more dataset
directories laid out in the challenge format (Table X) and it loads each
graph, honours the per-dataset time budget from the metadata file, runs the
AutoHEnsGNN pipeline (the adaptive variant with a reduced search space, as
submitted to the competition) and writes one predicted class per test node.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from typing import TYPE_CHECKING

from repro.automl.budget import TimeBudget
from repro.core.config import AutoHEnsGNNConfig, ProxyConfig, SearchMethod
from repro.datasets.io import load_autograph_directory
from repro.graph.graph import Graph
from repro.tasks.metrics import accuracy

if TYPE_CHECKING:  # pragma: no cover - import cycle avoided at runtime
    from repro.core.pipeline import PipelineResult


@dataclass
class CompetitionSubmission:
    """Predictions for one dataset plus the bookkeeping the organisers would see."""

    dataset_name: str
    predictions: np.ndarray
    test_nodes: np.ndarray
    elapsed: float
    within_budget: bool
    result: Optional["PipelineResult"] = None
    #: Where the fitted ensemble was persisted (``None`` when the runner was
    #: constructed without ``artifact_dir``); re-scorable via ``rescore``.
    artifact_path: Optional[str] = None

    def accuracy_against(self, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        return accuracy(self.predictions, labels[self.test_nodes])

    def write(self, path: str) -> None:
        """Write ``node_index<TAB>predicted_class`` rows, the challenge output format."""
        from repro.datasets.io import write_predictions_tsv

        write_predictions_tsv(path, self.test_nodes, self.predictions)


def competition_config(time_budget: Optional[float], seed: int = 0,
                       backend: str = "serial",
                       max_workers: Optional[int] = None) -> AutoHEnsGNNConfig:
    """The configuration submitted to the challenge.

    The adaptive search is used (bounded GPU memory), the search space of α
    and the hyper-parameter grids are reduced, and a couple of bagging splits
    are kept only when the budget allows it.  ``backend`` selects the
    :mod:`repro.parallel` execution backend; under a tight budget, parallel
    candidate evaluation and member training are the main lever for staying
    inside the per-dataset wall clock.
    """
    tight_budget = time_budget is not None and time_budget < 150
    return AutoHEnsGNNConfig(
        search_method=SearchMethod.ADAPTIVE,
        pool_size=2 if tight_budget else 3,
        ensemble_size=2 if tight_budget else 3,
        max_layers=2 if tight_budget else 3,
        search_epochs=30 if tight_budget else 50,
        bagging_splits=1 if tight_budget else 2,
        proxy=ProxyConfig(dataset_fraction=0.3, bagging_rounds=1 if tight_budget else 2,
                          hidden_fraction=0.5, max_epochs=30, seed=seed),
        time_budget=time_budget,
        seed=seed,
        backend=backend,
        max_workers=max_workers,
    )


class AutoGraphRunner:
    """Run the automated pipeline over a collection of challenge-format datasets.

    With ``artifact_dir`` set, every fitted ensemble is persisted under
    ``{artifact_dir}/{dataset_name}`` so later submissions on re-built or
    refreshed graphs can reuse the paid-for AutoML run through
    :meth:`rescore` (seconds instead of minutes).
    """

    def __init__(self, candidate_models: Optional[Sequence[str]] = None, seed: int = 0,
                 backend: str = "serial", max_workers: Optional[int] = None,
                 artifact_dir: Optional[str] = None) -> None:
        self.candidate_models = candidate_models
        self.seed = seed
        self.backend = backend
        self.max_workers = max_workers
        self.artifact_dir = artifact_dir

    # ------------------------------------------------------------------
    # Single dataset
    # ------------------------------------------------------------------
    def run_graph(self, graph: Graph, time_budget: Optional[float] = None,
                  dataset_name: Optional[str] = None) -> CompetitionSubmission:
        """Run the pipeline on an in-memory graph (labels of test nodes ignored)."""
        # Imported here to avoid a circular import (core.pipeline uses the budget).
        from repro.core.pipeline import AutoHEnsGNN

        name = dataset_name or graph.name
        budget_seconds = time_budget if time_budget is not None \
            else graph.metadata.get("time_budget")
        config = competition_config(budget_seconds, seed=self.seed,
                                    backend=self.backend, max_workers=self.max_workers)
        if self.candidate_models is not None:
            config.candidate_models = list(self.candidate_models)
        budget = TimeBudget(budget_seconds)
        start = time.time()
        pipeline = AutoHEnsGNN(config)
        fitted = pipeline.fit(graph)
        result = fitted.fit_report
        elapsed = time.time() - start
        artifact_path = None
        if self.artifact_dir is not None:
            # Persisting the ensemble is not part of the challenge protocol,
            # so it happens after the budget clock stops.
            artifact_path = fitted.save(os.path.join(self.artifact_dir, name))
        test_nodes = graph.mask_indices("test") if graph.test_mask is not None \
            else np.where(graph.labels < 0)[0]
        return CompetitionSubmission(
            dataset_name=name,
            predictions=result.predictions[test_nodes],
            test_nodes=test_nodes,
            elapsed=elapsed,
            within_budget=budget_seconds is None or elapsed <= budget_seconds,
            result=result,
            artifact_path=artifact_path,
        )

    def rescore(self, artifact_path: str, graph: Graph,
                dataset_name: Optional[str] = None) -> CompetitionSubmission:
        """Score ``graph`` with a previously fitted ensemble — no AutoML re-run.

        The artifact's members answer through the inference fast path, so a
        refreshed or extended graph (same feature schema) is re-scored in
        the time of one forward pass per member instead of a full pipeline
        run.  The returned submission carries no ``result`` (there was no
        fit) but is otherwise interchangeable with :meth:`run_graph` output.
        """
        from repro.core.artifact import FittedEnsemble

        start = time.time()
        fitted = FittedEnsemble.load(artifact_path)
        predictions = fitted.predict(graph)
        elapsed = time.time() - start
        test_nodes = graph.mask_indices("test") if graph.test_mask is not None \
            else np.where(graph.labels < 0)[0]
        return CompetitionSubmission(
            dataset_name=dataset_name or graph.name,
            predictions=predictions[test_nodes],
            test_nodes=test_nodes,
            elapsed=elapsed,
            within_budget=True,
            artifact_path=artifact_path,
        )

    def run_directory(self, directory: str, output_path: Optional[str] = None
                      ) -> CompetitionSubmission:
        """Load an AutoGraph-format directory, predict and optionally write the output."""
        graph = load_autograph_directory(directory)
        submission = self.run_graph(graph, dataset_name=graph.name)
        if output_path is not None:
            submission.write(output_path)
        return submission

    # ------------------------------------------------------------------
    # A whole phase (several datasets), as in the final evaluation
    # ------------------------------------------------------------------
    def run_phase(self, graphs: Dict[str, Graph]) -> Dict[str, CompetitionSubmission]:
        """Run every dataset of a challenge phase and return the submissions."""
        submissions: Dict[str, CompetitionSubmission] = {}
        for name, graph in graphs.items():
            submissions[name] = self.run_graph(graph, dataset_name=name)
        return submissions
