"""AutoHEnsGNN — the paper's primary contribution.

The package mirrors Figure 1 of the paper:

1. :mod:`~repro.core.proxy` / :mod:`~repro.core.selection` — proxy evaluation
   of the candidate zoo and selection of the top-performing pool ``P_GNN``.
2. :mod:`~repro.core.gse` — graph self-ensemble (GSE): K replicas of one
   architecture with different seeds, aggregating all layer outputs through
   per-layer weights α (Eqns 1–3).
3. :mod:`~repro.core.hierarchical` — the weighted ensemble over different
   architectures with weights β (Eqn 4).
4. :mod:`~repro.core.gradient_search` — ``AutoHEnsGNN_Gradient``: bi-level,
   first-order gradient search of α and β (Algorithm 1).
5. :mod:`~repro.core.adaptive` — ``AutoHEnsGNN_Adaptive``: per-GSE grid search
   plus the accuracy/temperature softmax for β (Eqn 8).
6. :mod:`~repro.core.bagging` — bagging over random train/validation splits.
7. :mod:`~repro.core.baselines` — the ensemble baselines of the experiment
   section (D-ensemble, L-ensemble, random ensemble, Goyal et al. greedy).
8. :mod:`~repro.core.pipeline` — the end-to-end automated pipeline
   (:class:`AutoHEnsGNN`) used by the examples, benchmarks and the
   competition runner.
"""

from repro.core.artifact import ArtifactError, FittedEnsemble
from repro.core.config import AdaptiveConfig, AutoHEnsGNNConfig, ProxyConfig, SearchMethod
from repro.core.proxy import ProxyEvaluator, ProxyEvaluationReport, CandidateScore
from repro.core.selection import select_top_models
from repro.core.gse import GraphSelfEnsemble
from repro.core.hierarchical import HierarchicalEnsemble
from repro.core.adaptive import adaptive_beta, AdaptiveSearch
from repro.core.gradient_search import GradientSearch, GradientSearchResult
from repro.core.bagging import BaggingEnsemble
from repro.core.baselines import (
    DEnsemble,
    GoyalGreedyEnsemble,
    LEnsemble,
    RandomEnsemble,
    train_single_models,
)
from repro.core.pipeline import AutoHEnsGNN, PipelineResult

__all__ = [
    "ArtifactError",
    "FittedEnsemble",
    "AutoHEnsGNNConfig",
    "ProxyConfig",
    "AdaptiveConfig",
    "SearchMethod",
    "ProxyEvaluator",
    "ProxyEvaluationReport",
    "CandidateScore",
    "select_top_models",
    "GraphSelfEnsemble",
    "HierarchicalEnsemble",
    "adaptive_beta",
    "AdaptiveSearch",
    "GradientSearch",
    "GradientSearchResult",
    "BaggingEnsemble",
    "DEnsemble",
    "LEnsemble",
    "RandomEnsemble",
    "GoyalGreedyEnsemble",
    "train_single_models",
    "AutoHEnsGNN",
    "PipelineResult",
]
