"""``AutoHEnsGNN_Adaptive`` — grid-searched α plus the closed-form β of Eqn 8.

The adaptive variant avoids co-training the whole hierarchical ensemble:

1. every architecture of the pool is optimised *independently* (the search
   space drops from ``L^{K x N}`` to ``L^K``),
2. its layer choice α is found by a grid search over depths 1..L,
3. the ensemble weight β is not searched at all but computed from the
   validation accuracies with an annealed softmax whose temperature depends
   on the graph's average degree (Eqn 8) — sparse graphs get a sharper
   distribution that concentrates weight on the best models.

This is the variant submitted to the KDD Cup (Section IV-E) because its GPU
memory footprint equals a single model's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.gse import GraphSelfEnsemble, one_hot_alpha
from repro.core.hierarchical import HierarchicalEnsemble
from repro.graph.graph import Graph
from repro.nn.data import GraphTensors
from repro.nn.model_zoo import get_model_spec
from repro.parallel.backends import BackendLike, get_backend
from repro.resilience.policy import FailureReport, ResiliencePolicy
from repro.tasks.trainer import NodeClassificationTrainer, TrainConfig


def _score_depth(task) -> float:
    """Train one (architecture, depth) grid point; picklable for process pools."""
    (spec_name, depth, data, labels, train_index, val_index, num_classes,
     hidden, hidden_fraction, train_config, seed) = task
    spec = get_model_spec(spec_name)
    model = spec.build(
        in_features=data.num_features,
        num_classes=num_classes,
        hidden=hidden,
        num_layers=depth,
        hidden_fraction=hidden_fraction,
        seed=seed,
    )
    alpha = one_hot_alpha(model.num_layers, model.num_layers)
    result = NodeClassificationTrainer(train_config).train(
        model, data, labels, train_index, val_index, layer_weights=alpha)
    return result.best_val_accuracy


def adaptive_beta(accuracies: Sequence[float], num_edges: int, num_nodes: int,
                  config: Optional[AdaptiveConfig] = None) -> np.ndarray:
    """Ensemble weights from validation accuracies via the annealed softmax of Eqn 8.

    ``tau = 1 + (1 + min(eps, 1 + log(#edges/#nodes + 1))) * lambda / gamma``;
    the sparser the graph, the smaller ``tau`` and the sharper the resulting
    softmax (more weight on the most accurate models).
    """
    config = config or AdaptiveConfig()
    accuracies = np.asarray(list(accuracies), dtype=np.float64)
    if accuracies.size == 0:
        raise ValueError("adaptive_beta needs at least one accuracy")
    average_degree_term = 1.0 + np.log(num_edges / max(num_nodes, 1) + 1.0)
    tau = 1.0 + (1.0 + min(config.epsilon, average_degree_term)) * config.lam / config.gamma
    # Normalise accuracies so the softmax argument scale is comparable across datasets.
    spread = accuracies.max() - accuracies.min()
    normalised = (accuracies - accuracies.min()) / (spread + 1e-12) if spread > 0 else np.zeros_like(accuracies)
    logits = normalised / tau
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


@dataclass
class AdaptiveSearchResult:
    """Outcome of the adaptive search: per-model depth choices and β."""

    chosen_layers: Dict[str, int]
    layer_scores: Dict[str, List[float]]
    beta: np.ndarray
    validation_accuracies: List[float]
    #: Grid points dropped under a ``drop`` resilience policy.  An
    #: architecture whose *entire* depth column failed is absent from
    #: ``chosen_layers`` (the surviving pool is ``list(chosen_layers)``).
    failures: List[FailureReport] = field(default_factory=list)


class AdaptiveSearch:
    """Grid-search α per GSE, then compute β adaptively from accuracies."""

    def __init__(self, pool: Sequence[str], ensemble_size: int = 3, max_layers: int = 4,
                 hidden: int = 64, adaptive_config: Optional[AdaptiveConfig] = None,
                 train_config: Optional[TrainConfig] = None, seed: int = 0,
                 backend: BackendLike = None,
                 max_workers: Optional[int] = None,
                 policy: Optional[ResiliencePolicy] = None) -> None:
        self.pool = list(pool)
        self.ensemble_size = ensemble_size
        self.max_layers = max_layers
        self.hidden = hidden
        self.adaptive_config = adaptive_config or AdaptiveConfig()
        self.train_config = train_config or TrainConfig(lr=0.02, max_epochs=120, patience=15)
        self.seed = seed
        self.backend = get_backend(backend, max_workers=max_workers)
        # With on_failure="drop" a failing grid point loses only that depth;
        # an architecture survives as long as one of its depths trained.
        self.policy = policy

    def close(self) -> None:
        """Release pooled workers (use the search as a context manager)."""
        self.backend.close()

    def __enter__(self) -> "AdaptiveSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Full search
    # ------------------------------------------------------------------
    def search(self, graph: Graph, data: GraphTensors, labels: np.ndarray,
               train_index: np.ndarray, val_index: np.ndarray,
               num_classes: int, hidden_fraction: float = 0.5) -> AdaptiveSearchResult:
        """Choose a depth per architecture and compute the adaptive β.

        Every (architecture, depth) grid point is an independent training run,
        so the whole ``N x L`` grid is flattened onto the execution backend.
        """
        tasks = [
            (spec_name, depth, data, labels, train_index, val_index, num_classes,
             self.hidden, hidden_fraction, self.train_config, self.seed)
            for spec_name in self.pool
            for depth in range(1, self.max_layers + 1)
        ]
        report = self.backend.map(_score_depth, tasks, policy=self.policy)
        for failure in report.failures:
            failure.context.setdefault(
                "architecture", self.pool[failure.index // self.max_layers])
            failure.context.setdefault(
                "depth", failure.index % self.max_layers + 1)
        chosen_layers: Dict[str, int] = {}
        layer_scores: Dict[str, List[float]] = {}
        best_scores: List[float] = []
        for pool_index, spec_name in enumerate(self.pool):
            scores = list(report.results[pool_index * self.max_layers:
                                         (pool_index + 1) * self.max_layers])
            if any(score is None for score in scores):
                # Dropped grid points (resilience policy) lose only their
                # depth; an architecture with no surviving depth is excluded
                # from the pool entirely.
                scores = [-np.inf if score is None else score for score in scores]
                if not np.isfinite(max(scores)):
                    layer_scores[spec_name] = scores
                    continue
            chosen_layers[spec_name] = int(np.argmax(scores)) + 1
            layer_scores[spec_name] = scores
            best_scores.append(max(scores))
        if not chosen_layers:
            raise RuntimeError(
                "adaptive search lost every architecture: all grid points "
                "failed under the resilience policy "
                f"({len(report.failures)} failures recorded)")
        beta = adaptive_beta(best_scores, graph.num_edges, graph.num_nodes,
                             self.adaptive_config)
        return AdaptiveSearchResult(
            chosen_layers=chosen_layers,
            layer_scores=layer_scores,
            beta=beta,
            validation_accuracies=best_scores,
            failures=list(report.failures),
        )

    # ------------------------------------------------------------------
    # Materialise the hierarchical ensemble found by the search
    # ------------------------------------------------------------------
    def build_ensemble(self, result: AdaptiveSearchResult, dropout: float = 0.5,
                       hidden_fraction: float = 1.0) -> HierarchicalEnsemble:
        """Create the (untrained) hierarchical ensemble with searched depths and β."""
        hierarchical = HierarchicalEnsemble()
        for index, spec_name in enumerate(self.pool):
            if spec_name not in result.chosen_layers:
                # Architecture lost every grid point under a drop policy.
                # The enumerate index still advances so survivors keep the
                # exact member seeds they would get in a fault-free run.
                continue
            depth = result.chosen_layers[spec_name]
            alpha = one_hot_alpha(depth, depth)
            hierarchical.add(GraphSelfEnsemble(
                spec_name=spec_name,
                num_members=self.ensemble_size,
                hidden=self.hidden,
                num_layers=depth,
                dropout=dropout,
                hidden_fraction=hidden_fraction,
                base_seed=self.seed + 1000 * index,
                layer_weights=[alpha],
            ))
        hierarchical.set_beta(result.beta)
        return hierarchical
