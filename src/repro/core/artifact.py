"""Fitted-ensemble artifacts: the "fit once, serve many" half of the API.

The paper's pipeline ends at a single transductive prediction; the repo's
north star — serving heavy traffic — needs the opposite lifecycle.
:class:`FittedEnsemble` is what ``AutoHEnsGNN.fit`` returns: the searched
pool, the β weights and every bagged member's trained parameters, detached
from the search machinery.  It predicts through the raw-ndarray
``forward_inference`` fast path (no autograd anywhere), accepts the original
graph or a re-built one with the same feature schema, and round-trips through
a versioned on-disk artifact::

    artifact/
      manifest.json   # schema version, dtype, pool, β, per-member build recipe
      weights.npz     # one blob per parameter/buffer, keyed s{split}/g{gse}/m{member}/name

The manifest records everything needed to *reconstruct* the members through
the model zoo (spec name, depth, hidden width, seeds, α vectors) plus the
shape and dtype of every weight blob, so :meth:`FittedEnsemble.load` can
validate an artifact before instantiating anything and fail with a precise
:class:`ArtifactError` instead of a shape error five layers deep.

Loading rebuilds each member with the exact constructor arguments used at fit
time and then overwrites its parameters with the stored arrays, so a loaded
ensemble predicts **bit-for-bit** like the fitted one — in a fresh process,
on any machine with the same NumPy/SciPy stack.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.autograd.dtype import compute_dtype_scope
from repro.core.hierarchical import HierarchicalEnsemble
from repro.graph.graph import Graph
from repro.nn.data import GraphTensors
from repro.parallel.cache import ndarray_fingerprint
from repro.resilience import faults as _faults
from repro.tasks.metrics import accuracy

#: Bumped whenever the on-disk layout changes incompatibly.  ``load``
#: refuses any other version with a message naming both versions.
SCHEMA_VERSION = 1

#: Sanity marker distinguishing our manifests from arbitrary JSON files.
ARTIFACT_FORMAT = "autohensgnn-fitted-ensemble"

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"

GraphLike = Union[Graph, GraphTensors]


class ArtifactError(RuntimeError):
    """A saved ensemble artifact is missing, corrupted or incompatible."""


def _jsonable(value):
    """Recursively convert NumPy scalars/arrays so ``json.dump`` accepts them."""
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _member_key(split: int, gse: int, member: int, name: str) -> str:
    return f"s{split}/g{gse}/m{member}/{name}"


@dataclass
class FittedEnsemble:
    """A trained hierarchical ensemble, ready to answer inference requests.

    Produced by ``AutoHEnsGNN.fit``; reconstructed from disk by
    :meth:`load`.  ``ensembles`` holds one :class:`HierarchicalEnsemble` per
    bagging split; predictions average the splits exactly like the
    historical ``fit_predict`` did, so ``fit(g).predict_proba(g)`` is
    bit-identical to the fit-time probabilities.
    """

    ensembles: List[HierarchicalEnsemble]
    pool: List[str]
    beta: np.ndarray
    chosen_layers: Dict[str, object]
    num_features: int
    num_classes: int
    compute_dtype: str
    metadata: Dict[str, object] = field(default_factory=dict)
    #: The fit-time :class:`~repro.core.pipeline.PipelineResult` (timings,
    #: proxy ranking, fit-time probabilities).  Not persisted by ``save`` —
    #: a loaded artifact carries only what inference needs.
    fit_report: Optional[object] = None

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _as_tensors(self, graph: GraphLike) -> GraphTensors:
        if isinstance(graph, GraphTensors):
            data = graph
        elif isinstance(graph, Graph):
            data = GraphTensors.from_graph(graph)
        else:
            raise TypeError(
                f"predict expects a Graph or GraphTensors, got {type(graph).__name__}")
        if data.num_features != self.num_features:
            raise ArtifactError(
                f"feature schema mismatch: the ensemble was fitted on "
                f"{self.num_features} node features but the graph provides "
                f"{data.num_features}; rebuild the graph with the training "
                f"feature schema (node count may differ, feature count may not)")
        expected = np.dtype(self.compute_dtype)
        if data.features.data.dtype != expected:
            raise ArtifactError(
                f"dtype mismatch: the ensemble computes in {expected.name} but the "
                f"pre-built GraphTensors holds {data.features.data.dtype.name} "
                f"features; pass the Graph itself (tensors are then built under "
                f"the artifact's dtype) or rebuild the view inside "
                f"compute_dtype_scope({self.compute_dtype!r})")
        return data

    def predict_proba(self, graph: GraphLike) -> np.ndarray:
        """Class probabilities for every node, shape ``(num_nodes, num_classes)``.

        Runs entirely through the raw-ndarray ``forward_inference`` fast
        path (no autograd, no Tensor wrapping) under the artifact's compute
        dtype.  ``graph`` may be the training graph, a refreshed/extended
        graph with the same feature schema, or a pre-built
        :class:`GraphTensors` view in the matching dtype.
        """
        if not self.ensembles:
            raise ArtifactError("fitted ensemble has no trained splits")
        with compute_dtype_scope(self.compute_dtype):
            data = self._as_tensors(graph)
            split_probabilities = [ensemble.predict_proba(data)
                                   for ensemble in self.ensembles]
            # The exact reduction fit_predict used — np.mean over the split
            # axis — so serving reproduces fit-time probabilities bitwise.
            return np.mean(split_probabilities, axis=0)

    def predict(self, graph: GraphLike) -> np.ndarray:
        """Predicted class per node (argmax of :meth:`predict_proba`)."""
        return self.predict_proba(graph).argmax(axis=1)

    def test_accuracy(self, graph: GraphLike, labels: np.ndarray,
                      index: np.ndarray) -> float:
        """Accuracy of :meth:`predict_proba` on the nodes in ``index``."""
        index = np.asarray(index)
        return accuracy(self.predict_proba(graph)[index], np.asarray(labels)[index])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        """Total trained member models across every split and GSE."""
        return sum(len(gse.members) for ensemble in self.ensembles
                   for gse in ensemble.ensembles)

    def receptive_field(self) -> int:
        """Widest propagation depth (hops) over every member model.

        This is the halo width a sharded scorer needs: with halo rings out
        to this distance, every owned node's k-hop neighbourhood is complete
        inside its partition view, so partition-local propagation reproduces
        the global forward pass bitwise at owned rows (see
        :mod:`repro.graph.partition`).
        """
        hops = 1
        for ensemble in self.ensembles:
            for gse in ensemble.ensembles:
                for member in gse.members:
                    hops = max(hops, int(getattr(member, "receptive_field",
                                                 member.num_layers)))
        return hops

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary of the fitted ensemble (pool, β, size, dtype)."""
        return {
            "pool": list(self.pool),
            "beta": [float(b) for b in np.asarray(self.beta).ravel()],
            "chosen_layers": _jsonable(self.chosen_layers),
            "splits": len(self.ensembles),
            "members": self.num_members,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "compute_dtype": self.compute_dtype,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the artifact directory (``manifest.json`` + ``weights.npz``).

        The write is *atomic at the directory level*: everything is staged
        into a sibling temp directory and swapped into place with
        ``os.replace``-style renames, so a crash mid-save leaves either the
        previous artifact intact or no artifact at all — never a torn mix of
        new weights and old manifest.  Each weight blob's blake2b fingerprint
        is recorded in the manifest and re-verified by :meth:`load`.

        Returns ``path`` so call sites can chain
        ``FittedEnsemble.load(fitted.save(p))``.
        """
        from repro import __version__

        arrays: Dict[str, np.ndarray] = {}
        for split_index, hierarchical in enumerate(self.ensembles):
            for gse_index, gse in enumerate(hierarchical.ensembles):
                if not gse.members:
                    raise ArtifactError(
                        f"cannot save: GSE {gse.spec_name!r} of split {split_index} "
                        f"has no trained members")
                for member_index, member in enumerate(gse.members):
                    # copy=False: np.savez materialises to disk immediately,
                    # so aliased views never outlive the call.
                    state = member.state_dict(copy=False)
                    for name, array in state.items():
                        arrays[_member_key(split_index, gse_index,
                                           member_index, name)] = array
        manifest = {
            "format": ARTIFACT_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "repro_version": __version__,
            "compute_dtype": self.compute_dtype,
            "num_features": int(self.num_features),
            "num_classes": int(self.num_classes),
            "pool": list(self.pool),
            "beta": [float(b) for b in np.asarray(self.beta).ravel()],
            "chosen_layers": _jsonable(self.chosen_layers),
            "splits": [ensemble.manifest_entry() for ensemble in self.ensembles],
            "weights": {key: {"shape": list(array.shape),
                              "dtype": str(array.dtype),
                              # Content fingerprint; load() rejects any blob
                              # whose bytes no longer hash to this value.
                              "blake2b": ndarray_fingerprint(array)}
                        for key, array in arrays.items()},
            "metadata": _jsonable(self.metadata),
        }
        # Stage next to the destination (same filesystem, so the final
        # renames are atomic) under a pid-suffixed name that cannot collide
        # with a concurrent saver.
        staging = f"{path}.tmp-{os.getpid()}"
        if os.path.exists(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        try:
            weights_path = os.path.join(staging, WEIGHTS_NAME)
            np.savez(weights_path, **arrays)
            # Chaos hooks: corrupt the staged blobs / die before the swap.
            _faults.damage_file("artifact.weights", weights_path)
            with open(os.path.join(staging, MANIFEST_NAME), "w",
                      encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            _faults.fault_point("artifact.save")
            if os.path.exists(path):
                backup = f"{path}.old-{os.getpid()}"
                if os.path.exists(backup):
                    shutil.rmtree(backup)
                os.rename(path, backup)
                os.rename(staging, path)
                shutil.rmtree(backup)
            else:
                os.rename(staging, path)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "FittedEnsemble":
        """Reconstruct a fitted ensemble from :meth:`save` output.

        Validates the manifest (format marker, schema version, required
        fields) and every weight blob (presence, shape, dtype) *before*
        instantiating models, so a truncated download or a manifest from a
        newer schema fails with one precise :class:`ArtifactError`.
        """
        manifest = cls._read_manifest(path)
        weights_path = os.path.join(path, WEIGHTS_NAME)
        if not os.path.isfile(weights_path):
            raise ArtifactError(f"artifact at {path!r} is missing {WEIGHTS_NAME}")
        try:
            archive = np.load(weights_path)
        except Exception as error:
            raise ArtifactError(
                f"could not read weight blobs from {weights_path!r}: {error}") from error
        with archive:
            declared = manifest["weights"]
            stored = set(archive.files)
            missing = set(declared) - stored
            unexpected = stored - set(declared)
            if missing or unexpected:
                raise ArtifactError(
                    f"weight blobs disagree with the manifest: "
                    f"missing={sorted(missing)[:5]}, unexpected={sorted(unexpected)[:5]}")
            arrays: Dict[str, np.ndarray] = {}
            for key, meta in declared.items():
                try:
                    array = archive[key]
                except ArtifactError:
                    raise
                except Exception as error:
                    # A flipped byte inside the zip stream surfaces as a CRC
                    # or zlib error during decompression; corruption must
                    # never escape as anything but ArtifactError.
                    raise ArtifactError(
                        f"weight blob {key!r} is corrupted and cannot be "
                        f"decoded: {error}") from error
                if list(array.shape) != list(meta["shape"]) \
                        or str(array.dtype) != meta["dtype"]:
                    raise ArtifactError(
                        f"weight blob {key!r} is corrupted: stored "
                        f"{array.dtype}{array.shape}, manifest declares "
                        f"{meta['dtype']}{tuple(meta['shape'])}")
                declared_digest = meta.get("blake2b")
                if declared_digest is not None \
                        and ndarray_fingerprint(array) != declared_digest:
                    # Absent digest = artifact from a pre-checksum release;
                    # tolerated.  A present-but-wrong digest is corruption.
                    raise ArtifactError(
                        f"weight blob {key!r} failed its checksum: the stored "
                        f"bytes do not match the fingerprint recorded at save "
                        f"time — refusing to load a corrupted artifact")
                arrays[key] = array
        num_features = int(manifest["num_features"])
        num_classes = int(manifest["num_classes"])
        ensembles: List[HierarchicalEnsemble] = []
        # Members are rebuilt (and later predict) under the dtype the
        # ensemble was fitted with, regardless of the caller's policy.
        with compute_dtype_scope(manifest["compute_dtype"]):
            for split_index, split_entry in enumerate(manifest["splits"]):
                try:
                    hierarchical = HierarchicalEnsemble.from_manifest_entry(
                        split_entry, num_features, num_classes)
                except KeyError as error:
                    raise ArtifactError(
                        f"cannot rebuild split {split_index}: {error}") from error
                for gse_index, gse in enumerate(hierarchical.ensembles):
                    for member_index, member in enumerate(gse.members):
                        prefix = (split_index, gse_index, member_index)
                        state = {}
                        for name in member.state_dict(copy=False):
                            key = _member_key(*prefix, name)
                            if key not in arrays:
                                raise ArtifactError(
                                    f"weight blob {key!r} required by model "
                                    f"{gse.spec_name!r} is absent from the artifact")
                            state[name] = arrays[key]
                        try:
                            member.load_state_dict(state)
                        except (KeyError, ValueError) as error:
                            raise ArtifactError(
                                f"stored weights do not fit model {gse.spec_name!r} "
                                f"(split {split_index}, member {member_index}): "
                                f"{error}") from error
                ensembles.append(hierarchical)
        return cls(
            ensembles=ensembles,
            pool=list(manifest["pool"]),
            beta=np.asarray(manifest["beta"], dtype=np.float64),
            chosen_layers=dict(manifest["chosen_layers"]),
            num_features=num_features,
            num_classes=num_classes,
            compute_dtype=str(manifest["compute_dtype"]),
            metadata=dict(manifest.get("metadata", {})),
        )

    @staticmethod
    def _read_manifest(path: str) -> Dict[str, object]:
        if not os.path.isdir(path):
            raise ArtifactError(
                f"artifact directory {path!r} does not exist (expected a directory "
                f"containing {MANIFEST_NAME} and {WEIGHTS_NAME})")
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.isfile(manifest_path):
            raise ArtifactError(f"artifact at {path!r} is missing {MANIFEST_NAME}")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ArtifactError(
                f"could not parse {manifest_path!r}: {error}") from error
        if not isinstance(manifest, dict) \
                or manifest.get("format") != ARTIFACT_FORMAT:
            raise ArtifactError(
                f"{manifest_path!r} is not an AutoHEnsGNN ensemble manifest "
                f"(format marker {manifest.get('format') if isinstance(manifest, dict) else None!r})")
        version = manifest.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArtifactError(
                f"artifact schema version {version!r} is not supported: this build "
                f"reads version {SCHEMA_VERSION}; re-save the ensemble with a "
                f"matching repro release (artifact written by "
                f"{manifest.get('repro_version', 'unknown')})")
        required = ("compute_dtype", "num_features", "num_classes", "pool",
                    "beta", "splits", "weights")
        missing = [key for key in required if key not in manifest]
        if missing:
            raise ArtifactError(
                f"manifest {manifest_path!r} is missing required fields: {missing}")
        return manifest
