"""Bagging over random train/validation splits (Section IV-D1, Figure 5).

The nodes of a graph are not i.i.d., so different train/validation splits can
lead models to fit different data distributions; the paper reduces the
resulting variance by training the whole hierarchical ensemble on several
random splits and averaging the predicted probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.automl.budget import TimeBudget
from repro.graph.graph import Graph
from repro.graph.splits import random_split
from repro.nn.data import GraphTensors
from repro.parallel.backends import BackendLike, scoped_backend
from repro.resilience.policy import FailureReport, ResiliencePolicy
from repro.tasks.metrics import accuracy


def _fit_split(task) -> Dict[str, object]:
    """Train one bagging split; module-level so process workers can run it."""
    fit_predict_fn, graph, data, val_fraction, seed, labelled_pool, split_index = task
    split_graph = random_split(graph, val_fraction=val_fraction,
                               seed=seed + 7919 * split_index,
                               labelled_pool=labelled_pool)
    probabilities = fit_predict_fn(split_graph, data, split_index)
    return {
        "probabilities": np.asarray(probabilities),
        "description": {
            "split": split_index,
            "train_nodes": int(split_graph.train_mask.sum()),
            "val_nodes": int(split_graph.val_mask.sum()),
        },
    }


@dataclass
class BaggingEnsemble:
    """Average predictions of models trained on different data splits.

    ``fit_predict_fn(split_graph, data, split_index)`` must train whatever
    predictor the caller wants on the masks of ``split_graph`` and return a
    probability matrix for *all* nodes.  The bagging ensemble averages those
    matrices; it is agnostic to whether the per-split predictor is a single
    model, a GSE or a full hierarchical ensemble.

    Splits are independent, so they run concurrently on any
    :mod:`repro.parallel` backend (the process backend additionally requires
    ``fit_predict_fn`` to be picklable).  Under a nearly-exhausted
    :class:`TimeBudget` later splits are simply not dispatched; at least one
    split always trains.
    """

    num_splits: int = 2
    val_fraction: float = 0.2
    seed: int = 0
    probabilities: List[np.ndarray] = field(default_factory=list)
    split_descriptions: List[Dict[str, object]] = field(default_factory=list)
    #: Splits dropped by a resilience policy in the last :meth:`fit`; the
    #: average simply runs over the surviving splits.
    fit_failures: List[FailureReport] = field(default_factory=list)

    def fit(self, graph: Graph, data: GraphTensors,
            fit_predict_fn: Callable[[Graph, GraphTensors, int], np.ndarray],
            labelled_pool: Optional[np.ndarray] = None,
            backend: BackendLike = None,
            budget: Optional[TimeBudget] = None,
            policy: Optional[ResiliencePolicy] = None) -> "BaggingEnsemble":
        tasks = [
            (fit_predict_fn, graph, data, self.val_fraction, self.seed,
             labelled_pool, split_index)
            for split_index in range(self.num_splits)
        ]
        with scoped_backend(backend) as executor:
            report = executor.map(_fit_split, tasks, budget=budget, min_results=1,
                                  policy=policy)
        for failure in report.failures:
            failure.context.setdefault("split", failure.index)
        outcomes = [outcome for outcome in report.results if outcome is not None]
        if not outcomes:
            raise RuntimeError(
                "bagging lost every split under the resilience policy "
                f"({len(report.failures)} failures recorded)")
        self.probabilities = [outcome["probabilities"] for outcome in outcomes]
        self.split_descriptions = [outcome["description"] for outcome in outcomes]
        self.fit_failures = list(report.failures)
        return self

    def predict_proba(self) -> np.ndarray:
        if not self.probabilities:
            raise RuntimeError("bagging ensemble has not been fitted")
        return np.mean(self.probabilities, axis=0)

    def predict(self) -> np.ndarray:
        return self.predict_proba().argmax(axis=1)

    def evaluate(self, labels: np.ndarray, index: np.ndarray) -> float:
        index = np.asarray(index)
        return accuracy(self.predict_proba()[index], np.asarray(labels)[index])
