"""Bagging over random train/validation splits (Section IV-D1, Figure 5).

The nodes of a graph are not i.i.d., so different train/validation splits can
lead models to fit different data distributions; the paper reduces the
resulting variance by training the whole hierarchical ensemble on several
random splits and averaging the predicted probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.splits import random_split
from repro.nn.data import GraphTensors
from repro.tasks.metrics import accuracy


@dataclass
class BaggingEnsemble:
    """Average predictions of models trained on different data splits.

    ``fit_predict_fn(split_graph, data, split_index)`` must train whatever
    predictor the caller wants on the masks of ``split_graph`` and return a
    probability matrix for *all* nodes.  The bagging ensemble averages those
    matrices; it is agnostic to whether the per-split predictor is a single
    model, a GSE or a full hierarchical ensemble.
    """

    num_splits: int = 2
    val_fraction: float = 0.2
    seed: int = 0
    probabilities: List[np.ndarray] = field(default_factory=list)
    split_descriptions: List[Dict[str, object]] = field(default_factory=list)

    def fit(self, graph: Graph, data: GraphTensors,
            fit_predict_fn: Callable[[Graph, GraphTensors, int], np.ndarray],
            labelled_pool: Optional[np.ndarray] = None) -> "BaggingEnsemble":
        self.probabilities = []
        self.split_descriptions = []
        for split_index in range(self.num_splits):
            split_graph = random_split(graph, val_fraction=self.val_fraction,
                                       seed=self.seed + 7919 * split_index,
                                       labelled_pool=labelled_pool)
            probabilities = fit_predict_fn(split_graph, data, split_index)
            self.probabilities.append(np.asarray(probabilities))
            self.split_descriptions.append({
                "split": split_index,
                "train_nodes": int(split_graph.train_mask.sum()),
                "val_nodes": int(split_graph.val_mask.sum()),
            })
        return self

    def predict_proba(self) -> np.ndarray:
        if not self.probabilities:
            raise RuntimeError("bagging ensemble has not been fitted")
        return np.mean(self.probabilities, axis=0)

    def predict(self) -> np.ndarray:
        return self.predict_proba().argmax(axis=1)

    def evaluate(self, labels: np.ndarray, index: np.ndarray) -> float:
        index = np.asarray(index)
        return accuracy(self.predict_proba()[index], np.asarray(labels)[index])
