"""Ensemble baselines used throughout the experiment section.

* :class:`DEnsemble` — directly average the probabilities of the pool models.
* :class:`LEnsemble` — learn the ensemble weights on the validation set
  (gradient descent on a softmax-parameterised weight vector, Appendix A3).
* :class:`RandomEnsemble` — ensemble of randomly selected candidates (the
  "Random Ensemble" row of the ablation, Table IV).
* :class:`GoyalGreedyEnsemble` — greedy forward selection in the spirit of
  Goyal et al. (2019): repeatedly add the model whose inclusion improves the
  validation accuracy of the running average the most.
* :func:`train_single_models` — trains one model per pool entry and returns
  the individual scores (the "single model" rows of Tables II, III, V).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.data import GraphTensors
from repro.nn.model_zoo import get_model_spec
from repro.nn.models.base import GNNModel
from repro.tasks.metrics import accuracy
from repro.tasks.trainer import NodeClassificationTrainer, TrainConfig


def train_single_models(pool: Sequence[str], data: GraphTensors, labels: np.ndarray,
                        train_index: np.ndarray, val_index: np.ndarray, num_classes: int,
                        hidden: int = 64, train_config: Optional[TrainConfig] = None,
                        replicas: int = 1, seed: int = 0) -> Dict[str, Dict[str, object]]:
    """Train ``replicas`` differently-seeded copies of every pool model.

    Returns ``{name: {"models": [...], "probas": [...], "val_scores": [...]}}``;
    the ensemble baselines below consume this shared pool so every method in a
    table row comparison sees exactly the same trained models (as the paper
    does for fairness).
    """
    config = train_config or TrainConfig(lr=0.02, max_epochs=150, patience=20)
    outcome: Dict[str, Dict[str, object]] = {}
    for name in pool:
        spec = get_model_spec(name)
        models: List[GNNModel] = []
        probas: List[np.ndarray] = []
        val_scores: List[float] = []
        for replica in range(replicas):
            model = spec.build(in_features=data.num_features, num_classes=num_classes,
                               hidden=hidden, seed=seed + 31 * replica)
            trainer = NodeClassificationTrainer(config.with_overrides(seed=seed + replica))
            result = trainer.train(model, data, labels, train_index, val_index)
            models.append(model)
            probas.append(model.predict_proba(data))
            val_scores.append(result.best_val_accuracy)
        outcome[name] = {"models": models, "probas": probas, "val_scores": val_scores}
    return outcome


@dataclass
class _PoolEnsemble:
    """Shared plumbing: holds per-model probability predictions and weights."""

    probas: List[np.ndarray] = field(default_factory=list)
    names: List[str] = field(default_factory=list)
    weights: Optional[np.ndarray] = None

    def add(self, name: str, proba: np.ndarray) -> None:
        self.probas.append(np.asarray(proba))
        self.names.append(name)

    def predict_proba(self) -> np.ndarray:
        if not self.probas:
            raise RuntimeError("ensemble has no member predictions")
        weights = self.weights
        if weights is None:
            weights = np.full(len(self.probas), 1.0 / len(self.probas))
        total = None
        for weight, proba in zip(weights, self.probas):
            term = proba * weight
            total = term if total is None else total + term
        return total

    def evaluate(self, labels: np.ndarray, index: np.ndarray) -> float:
        index = np.asarray(index)
        return accuracy(self.predict_proba()[index], np.asarray(labels)[index])


class DEnsemble(_PoolEnsemble):
    """Direct average of the pool probabilities."""


class RandomEnsemble(_PoolEnsemble):
    """Average over a random subset of the *candidate zoo* (not the selected pool)."""

    @classmethod
    def from_pool(cls, pool_outcome: Dict[str, Dict[str, object]], size: int,
                  seed: int = 0) -> "RandomEnsemble":
        rng = np.random.default_rng(seed)
        names = list(pool_outcome)
        chosen = rng.choice(names, size=min(size, len(names)), replace=False)
        ensemble = cls()
        for name in chosen:
            for proba in pool_outcome[name]["probas"]:
                ensemble.add(name, proba)
        return ensemble


class LEnsemble(_PoolEnsemble):
    """Learn ensemble weights on the validation set by gradient descent.

    The weights are parameterised through a softmax so they stay on the
    simplex; optimisation minimises the validation cross-entropy of the mixed
    probabilities, mirroring Appendix A3 of the paper.
    """

    def fit_weights(self, labels: np.ndarray, val_index: np.ndarray, lr: float = 0.05,
                    epochs: int = 200, seed: int = 0) -> np.ndarray:
        from repro.autograd import functional as F
        from repro.autograd import optim
        from repro.autograd.module import Parameter
        from repro.autograd.tensor import Tensor

        labels = np.asarray(labels)
        val_index = np.asarray(val_index)
        logits = Parameter(np.zeros(len(self.probas)))
        optimizer = optim.Adam([logits], lr=lr, weight_decay=0.0)
        stacked = np.stack([proba[val_index] for proba in self.probas], axis=0)
        targets = labels[val_index]
        for _ in range(epochs):
            optimizer.zero_grad()
            weights = F.softmax(logits, axis=-1)
            mixture = F.weighted_sum(
                [Tensor(stacked[i]) for i in range(stacked.shape[0])], weights)
            loss = F.nll_loss((mixture + 1e-12).log(), targets)
            loss.backward()
            optimizer.step()
        exp = np.exp(logits.data - logits.data.max())
        self.weights = exp / exp.sum()
        return self.weights


class GoyalGreedyEnsemble(_PoolEnsemble):
    """Greedy forward selection of pool members (Goyal et al., 2019).

    Starting from the best single model, each step adds the member whose
    inclusion most improves the running-average validation accuracy; the
    procedure stops when no addition helps.
    """

    def fit_greedy(self, labels: np.ndarray, val_index: np.ndarray) -> List[int]:
        labels = np.asarray(labels)
        val_index = np.asarray(val_index)
        remaining = list(range(len(self.probas)))
        selected: List[int] = []

        def score(indices: List[int]) -> float:
            mixture = np.mean([self.probas[i][val_index] for i in indices], axis=0)
            return accuracy(mixture, labels[val_index])

        # Seed with the single best member.
        best_single = max(remaining, key=lambda i: score([i]))
        selected.append(best_single)
        remaining.remove(best_single)
        best_score = score(selected)
        improved = True
        while improved and remaining:
            improved = False
            best_candidate = None
            for candidate in remaining:
                candidate_score = score(selected + [candidate])
                if candidate_score > best_score:
                    best_score = candidate_score
                    best_candidate = candidate
                    improved = True
            if best_candidate is not None:
                selected.append(best_candidate)
                remaining.remove(best_candidate)
        weights = np.zeros(len(self.probas))
        weights[selected] = 1.0 / len(selected)
        self.weights = weights
        return selected
