"""Configuration objects for the AutoHEnsGNN pipeline.

Defaults follow the paper: proxy evaluation with ``D_proxy = 30 %``,
``B_proxy = 6`` and ``M_proxy = 50 %`` (Section IV-B2), a pool of ``N = 3``
architectures with ``K = 3`` replicas per graph self-ensemble (Figure 6), and
the adaptive-β hyper-parameters ``ε = 3``, ``γ = 8000``, ``λ = 5``
(Appendix A2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.tasks.trainer import TrainConfig


class SearchMethod(str, enum.Enum):
    """Which configuration-search algorithm the pipeline uses."""

    ADAPTIVE = "adaptive"
    GRADIENT = "gradient"


@dataclass
class ProxyConfig:
    """Parameters of the proxy task used for fast model selection."""

    dataset_fraction: float = 0.3      # D_proxy
    bagging_rounds: int = 6            # B_proxy (scaled down by benchmarks)
    hidden_fraction: float = 0.5       # M_proxy
    max_epochs: int = 60
    patience: int = 10
    lr: float = 0.01
    val_fraction: float = 0.2
    seed: int = 0


@dataclass
class AdaptiveConfig:
    """Hyper-parameters of the adaptive ensemble weight β (Eqn 8)."""

    epsilon: float = 3.0
    gamma: float = 8000.0
    lam: float = 5.0


@dataclass
class AutoHEnsGNNConfig:
    """Full pipeline configuration."""

    candidate_models: Optional[Sequence[str]] = None   # None = entire zoo
    pool_size: int = 3                                  # N
    ensemble_size: int = 3                              # K
    max_layers: int = 4                                 # L, depth of the alpha grid
    search_method: SearchMethod = SearchMethod.ADAPTIVE
    proxy: ProxyConfig = field(default_factory=ProxyConfig)
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    train: TrainConfig = field(default_factory=lambda: TrainConfig(lr=0.02, max_epochs=150,
                                                                   patience=20))
    # Gradient search (Algorithm 1) specifics.
    architecture_lr: float = 3e-4
    architecture_update_every: int = 1
    search_epochs: int = 60
    # Bagging over data splits (Section IV-C: two random splits for the
    # challenge datasets, none for the public fixed-split datasets).
    bagging_splits: int = 1
    val_fraction: float = 0.2
    hidden: int = 64
    time_budget: Optional[float] = None
    seed: int = 0
    verbose: bool = False
    # Parallel execution (repro.parallel): "serial", "thread" or "process".
    # Every backend produces bit-identical predictions at a fixed seed.
    backend: str = "serial"
    max_workers: Optional[int] = None
    # Engine compute dtype (repro.autograd.dtype): "float64" (default) or
    # "float32" (halves memory bandwidth; the pipeline sets the process-wide
    # policy before building graph tensors and models).  Within each dtype,
    # serial/thread/process backends stay bit-for-bit identical at a fixed
    # seed.  (Exact bit-parity with the pre-PR-2 seed engine is NOT
    # preserved: GCNConv now adds its bias after propagation — the standard
    # formulation — ELU uses expm1, and the in-place Adam associates its
    # update differently; accuracies are statistically indistinguishable,
    # see tests/test_perf_core.py.)
    compute_dtype: str = "float64"
