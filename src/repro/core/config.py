"""Configuration objects for the AutoHEnsGNN pipeline.

Defaults follow the paper: proxy evaluation with ``D_proxy = 30 %``,
``B_proxy = 6`` and ``M_proxy = 50 %`` (Section IV-B2), a pool of ``N = 3``
architectures with ``K = 3`` replicas per graph self-ensemble (Figure 6), and
the adaptive-β hyper-parameters ``ε = 3``, ``γ = 8000``, ``λ = 5``
(Appendix A2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.resilience.policy import ResiliencePolicy
from repro.tasks.trainer import TrainConfig


class SearchMethod(str, enum.Enum):
    """Which configuration-search algorithm the pipeline uses."""

    ADAPTIVE = "adaptive"
    GRADIENT = "gradient"


@dataclass
class ProxyConfig:
    """Parameters of the proxy task used for fast model selection.

    Parameters
    ----------
    dataset_fraction : float
        ``D_proxy`` — fraction of nodes kept in the class-stratified proxy
        sub-graph.
    bagging_rounds : int
        ``B_proxy`` — random train/val splits each candidate is scored on.
    hidden_fraction : float
        ``M_proxy`` — hidden-width fraction of the proxy models.
    max_epochs, patience, lr : int / float
        Training protocol of each proxy run.
    val_fraction : float
        Validation share of each proxy bagging split.
    batch_size : int, optional
        ``None`` (default) inherits the pipeline's ``batch_size`` when run
        through :class:`AutoHEnsGNN` (full-batch otherwise).  A positive
        integer switches proxy training to neighbour-sampled minibatches —
        on graphs whose proxy sub-graph is itself large, this is what keeps
        candidate ranking affordable.  ``0`` pins the proxy stage
        full-batch even under a minibatch pipeline.
    fanouts : tuple of int, optional
        Per-hop neighbour caps for minibatch proxy training (see
        :class:`~repro.tasks.trainer.TrainConfig`).
    capture : bool
        Capture-and-replay training for the proxy runs (see
        :class:`~repro.tasks.trainer.TrainConfig`); on by default, ANDed
        with the pipeline-level ``capture`` switch.
    seed : int
        Base seed for sampling and training.
    """

    dataset_fraction: float = 0.3      # D_proxy
    bagging_rounds: int = 6            # B_proxy (scaled down by benchmarks)
    hidden_fraction: float = 0.5       # M_proxy
    max_epochs: int = 60
    patience: int = 10
    lr: float = 0.01
    val_fraction: float = 0.2
    batch_size: Optional[int] = None
    fanouts: Optional[Tuple[int, ...]] = None
    capture: bool = True
    seed: int = 0


@dataclass
class AdaptiveConfig:
    """Hyper-parameters of the adaptive ensemble weight β (Eqn 8)."""

    epsilon: float = 3.0
    gamma: float = 8000.0
    lam: float = 5.0


@dataclass
class AutoHEnsGNNConfig:
    """Full pipeline configuration.

    Parameters
    ----------
    candidate_models : sequence of str, optional
        Candidate zoo for proxy evaluation (``None`` = every registered
        model).
    pool_size : int
        ``N`` — architectures kept after proxy ranking.
    ensemble_size : int
        ``K`` — seed replicas per graph self-ensemble.
    max_layers : int
        ``L`` — depth of the per-architecture α grid.
    search_method : SearchMethod
        ``ADAPTIVE`` (grid α + closed-form β, Eqn 8) or ``GRADIENT``
        (Algorithm 1).  Gradient search always trains full-batch.
    proxy, adaptive, train : dataclasses
        Stage-specific sub-configurations.
    bagging_splits, val_fraction : int, float
        Re-training bagging over random train/val splits (Section IV-C).
    hidden : int
        Hidden width of the re-trained members.
    time_budget : float, optional
        Wall-clock budget in seconds (challenge protocol).
    backend : str
        Execution backend for independent trainings: ``"serial"``,
        ``"thread"`` or ``"process"`` — bit-identical predictions at a
        fixed seed.
    max_workers : int, optional
        Worker cap for the thread/process backends.
    compute_dtype : str
        Engine-wide float policy, ``"float64"`` (default) or ``"float32"``
        (halves memory traffic; see ``repro.autograd.dtype``).
    batch_size : int, optional
        ``None`` (default) keeps every training stage full-batch —
        bit-for-bit the historical pipeline.  An integer turns on
        neighbour-sampled minibatch training (GraphSAGE-style) for the
        configuration search and the bagged re-training, with this many
        seed nodes per optimiser step; it is also inherited by ``train``
        and proxy evaluation wherever their own ``batch_size`` is ``None``
        (a stage passes ``0`` to stay full-batch explicitly).  Peak training
        memory then scales with ``batch_size * prod(fanouts)`` instead of
        the graph size, opening graphs that cannot afford a full-batch
        pass.  Prediction/evaluation always runs full-graph through the
        inference fast path.
    fanouts : tuple of int, optional
        Per-hop sampled-neighbour caps for minibatch mode, outermost hop
        first; ``None`` derives ``(10, 5, 5)`` sized to each model's
        receptive field but capped at three hops (deeper propagation sees
        a truncated neighbourhood — name fanouts explicitly to cover more).
    capture : bool
        Capture-and-replay full-batch training
        (:mod:`repro.autograd.capture`) across every stage that trains
        through :class:`~repro.tasks.trainer.NodeClassificationTrainer`;
        on by default and bit-identical to the dynamic engine at fixed
        seeds.  ``False`` forces the dynamic engine pipeline-wide (stage
        configs are ANDed with this switch).
    num_partitions : int, optional
        With a value ``> 1``, minibatch training stages group their seed
        batches per edge-cut partition
        (:func:`repro.graph.partition.partition_graph`) — see
        ``TrainConfig.num_partitions`` for the locality/trajectory
        trade-off.  Inherited by ``train`` wherever its own
        ``num_partitions`` is ``None``.  Ignored in full-batch mode.
    shared_graph : bool
        On the ``"process"`` backend, publish the graph tensors once to a
        shared-memory store (:mod:`repro.graph.shm`) and hand workers a
        small handle: each worker maps the CSR operators and feature
        blocks read-only instead of receiving a pickled copy, so per-worker
        RSS stays near the model size rather than the graph size.
        Bit-identical — the mapped bytes are exactly the published ones.
        No effect on in-process backends (they already share by
        reference).
    seed : int
        Master seed for every stage.
    verbose : bool
        Print stage progress.
    """

    candidate_models: Optional[Sequence[str]] = None   # None = entire zoo
    pool_size: int = 3                                  # N
    ensemble_size: int = 3                              # K
    max_layers: int = 4                                 # L, depth of the alpha grid
    search_method: SearchMethod = SearchMethod.ADAPTIVE
    proxy: ProxyConfig = field(default_factory=ProxyConfig)
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    train: TrainConfig = field(default_factory=lambda: TrainConfig(lr=0.02, max_epochs=150,
                                                                   patience=20))
    # Gradient search (Algorithm 1) specifics.
    architecture_lr: float = 3e-4
    architecture_update_every: int = 1
    search_epochs: int = 60
    # Bagging over data splits (Section IV-C: two random splits for the
    # challenge datasets, none for the public fixed-split datasets).
    bagging_splits: int = 1
    val_fraction: float = 0.2
    hidden: int = 64
    time_budget: Optional[float] = None
    seed: int = 0
    verbose: bool = False
    # Parallel execution (repro.parallel): "serial", "thread" or "process".
    # Every backend produces bit-identical predictions at a fixed seed.
    backend: str = "serial"
    max_workers: Optional[int] = None
    # Engine compute dtype (repro.autograd.dtype): "float64" (default) or
    # "float32" (halves memory bandwidth; the pipeline sets the process-wide
    # policy before building graph tensors and models).  Within each dtype,
    # serial/thread/process backends stay bit-for-bit identical at a fixed
    # seed.  (Exact bit-parity with the pre-PR-2 seed engine is NOT
    # preserved: GCNConv now adds its bias after propagation — the standard
    # formulation — ELU uses expm1, and the in-place Adam associates its
    # update differently; accuracies are statistically indistinguishable,
    # see tests/test_perf_core.py.)
    compute_dtype: str = "float64"
    # Minibatch neighbour-sampled training (repro.graph.sampling): None =
    # full-batch everywhere (bit-for-bit the historical behaviour).
    batch_size: Optional[int] = None
    fanouts: Optional[Tuple[int, ...]] = None
    # Partition-local minibatch seed batching (repro.graph.partition): None =
    # globally-shuffled batches (the historical trajectory).
    num_partitions: Optional[int] = None
    # Shared-memory graph publication for process workers (repro.graph.shm):
    # map-read-only instead of unpickling; bit-identical either way.
    shared_graph: bool = False
    # Capture-and-replay full-batch training (repro.autograd.capture):
    # record the epoch program once per training run, replay it with a
    # lifetime-planned buffer arena — bit-identical at fixed seeds.
    capture: bool = True
    # Supervised execution (repro.resilience): None = legacy dispatch,
    # bit-identical to a build without the resilience layer.  A
    # ResiliencePolicy adds bounded retries with seeded backoff, per-task
    # timeouts, broken-pool rebuild with process -> thread -> serial
    # degradation, and — with on_failure="drop" — partial results with
    # structured FailureReports in PipelineResult.details["failures"].
    resilience: Optional[ResiliencePolicy] = None

    def validate(self) -> "AutoHEnsGNNConfig":
        """Fail fast on configurations that would only error mid-pipeline.

        ``AutoHEnsGNN.fit`` calls this before any work starts, so a typo'd
        candidate name or an invalid dtype/backend string surfaces in
        seconds instead of after minutes of proxy evaluation.  Every problem
        is collected and reported in one :class:`ValueError`; returns
        ``self`` so call sites can chain.
        """
        from repro.nn.model_zoo import MODEL_ZOO, suggest_model_name
        from repro.parallel.backends import BACKENDS

        problems = []
        if self.candidate_models is not None:
            for name in self.candidate_models:
                if str(name).lower() not in MODEL_ZOO:
                    suggestion = suggest_model_name(str(name))
                    hint = f" (did you mean {suggestion!r}?)" if suggestion else ""
                    problems.append(f"unknown candidate model {name!r}{hint}; "
                                    f"known models: {sorted(MODEL_ZOO)}")
        for field_name in ("pool_size", "ensemble_size", "max_layers", "hidden",
                           "search_epochs"):
            value = getattr(self, field_name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                problems.append(f"{field_name} must be a positive integer, got {value!r}")
        # 0 is a documented sentinel ("no bagging": the pipeline still trains
        # one split via max(bagging_splits, 1)); only negatives are invalid.
        if not isinstance(self.bagging_splits, (int, np.integer)) or self.bagging_splits < 0:
            problems.append("bagging_splits must be a non-negative integer, "
                            f"got {self.bagging_splits!r}")
        def numeric(field_name: str, value) -> bool:
            # A non-numeric value (e.g. val_fraction="0.3") must land in the
            # aggregated report, not escape as a bare comparison TypeError.
            if isinstance(value, (int, float, np.integer, np.floating)) \
                    and not isinstance(value, bool):
                return True
            problems.append(f"{field_name} must be a number, got {value!r}")
            return False

        if numeric("val_fraction", self.val_fraction) \
                and not 0.0 < self.val_fraction < 1.0:
            problems.append(f"val_fraction must lie in (0, 1), got {self.val_fraction!r}")
        if numeric("proxy.dataset_fraction", self.proxy.dataset_fraction) \
                and not 0.0 < self.proxy.dataset_fraction <= 1.0:
            problems.append("proxy.dataset_fraction must lie in (0, 1], "
                            f"got {self.proxy.dataset_fraction!r}")
        if numeric("proxy.hidden_fraction", self.proxy.hidden_fraction) \
                and not 0.0 < self.proxy.hidden_fraction <= 1.0:
            problems.append("proxy.hidden_fraction must lie in (0, 1], "
                            f"got {self.proxy.hidden_fraction!r}")
        if numeric("proxy.bagging_rounds", self.proxy.bagging_rounds) \
                and self.proxy.bagging_rounds < 1:
            problems.append("proxy.bagging_rounds must be a positive integer, "
                            f"got {self.proxy.bagging_rounds!r}")
        if self.time_budget is not None \
                and numeric("time_budget", self.time_budget) and self.time_budget <= 0:
            problems.append(f"time_budget must be positive or None, got {self.time_budget!r}")
        try:
            np.dtype(self.compute_dtype)
        except TypeError:
            problems.append(f"compute_dtype is not a dtype: {self.compute_dtype!r}")
        else:
            if str(np.dtype(self.compute_dtype)) not in ("float32", "float64"):
                problems.append(f"compute_dtype must be 'float64' or 'float32', "
                                f"got {self.compute_dtype!r}")
        if not isinstance(self.backend, str) or self.backend.lower() not in BACKENDS:
            problems.append(f"backend must be one of {sorted(BACKENDS)}, "
                            f"got {self.backend!r}")
        for stage, batch_size in (("batch_size", self.batch_size),
                                  ("train.batch_size", self.train.batch_size),
                                  ("proxy.batch_size", self.proxy.batch_size)):
            if batch_size is not None and numeric(stage, batch_size) \
                    and batch_size < 0:
                problems.append(f"{stage} must be None (full-batch), 0 (pinned "
                                f"full-batch) or positive, got {batch_size!r}")
        for stage, fanouts in (("fanouts", self.fanouts),
                               ("train.fanouts", self.train.fanouts),
                               ("proxy.fanouts", self.proxy.fanouts)):
            try:
                invalid = fanouts is not None and any(f == 0 or f < -1 for f in fanouts)
            except TypeError:
                invalid = True
            if invalid:
                problems.append(f"{stage} entries must be positive neighbour caps "
                                f"or -1 (keep all), got {tuple(fanouts)!r}")
        for stage, partitions in (("num_partitions", self.num_partitions),
                                  ("train.num_partitions",
                                   self.train.num_partitions)):
            if partitions is not None and numeric(stage, partitions) \
                    and partitions < 0:
                problems.append(f"{stage} must be None (global shuffle), 0/1 "
                                f"(ditto) or a partition count, got {partitions!r}")
        if not isinstance(self.shared_graph, bool):
            problems.append(f"shared_graph must be a bool, got {self.shared_graph!r}")
        if self.resilience is not None:
            if isinstance(self.resilience, ResiliencePolicy):
                problems.extend(f"resilience.{problem}"
                                for problem in self.resilience.validate())
            else:
                problems.append(f"resilience must be a ResiliencePolicy or None, "
                                f"got {self.resilience!r}")
        if problems:
            details = "\n  - ".join(problems)
            raise ValueError(f"invalid AutoHEnsGNNConfig:\n  - {details}")
        return self
