"""``AutoHEnsGNN_Gradient`` — bi-level gradient search of α and β (Algorithm 1).

The layer-selection vectors α (one per replica of every GSE) and the ensemble
weights β are treated as *architecture parameters*.  Following DARTS-style
relaxation (Eqns 6–7), the one-hot α is replaced by a softmax over layers so
the validation loss becomes differentiable in α and β, and the first-order
approximation alternates

* gradient steps on the model weights ``w`` using the training loss, and
* every ``M`` epochs a gradient step on ``(α, β)`` using the validation loss.

After convergence the discrete configuration is recovered with
``L* = argmax softmax(α)`` and ``β* = softmax(β)``, and every sub-model is
re-trained from scratch with those fixed choices (handled by the pipeline).

To keep the joint-training memory footprint bounded the search runs on the
proxy model / proxy dataset, exactly as Section IV-D3 describes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd import optim
from repro.autograd.module import Parameter
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors
from repro.nn.model_zoo import get_model_spec
from repro.nn.models.base import GNNModel
from repro.tasks.metrics import accuracy


@dataclass
class GradientSearchResult:
    """Discrete configuration derived from the relaxed architecture parameters."""

    chosen_layers: Dict[str, List[int]]      # model name -> depth per replica
    beta: np.ndarray                          # normalised ensemble weights
    alpha_softmax: Dict[str, List[np.ndarray]]
    search_time: float
    history: List[Dict[str, float]] = field(default_factory=list)

    def layer_weights(self, spec_name: str) -> List[np.ndarray]:
        """One-hot α vectors per replica for the chosen configuration."""
        vectors = []
        for depth, soft in zip(self.chosen_layers[spec_name], self.alpha_softmax[spec_name]):
            alpha = np.zeros(soft.shape[0])
            alpha[depth - 1] = 1.0
            vectors.append(alpha)
        return vectors


class GradientSearch:
    """Joint gradient-based search over the hierarchical ensemble configuration."""

    def __init__(self, pool: Sequence[str], ensemble_size: int = 3, max_layers: int = 4,
                 hidden: int = 64, hidden_fraction: float = 0.5, lr: float = 0.02,
                 architecture_lr: float = 3e-4, weight_decay: float = 5e-4,
                 epochs: int = 60, update_every: int = 1, patience: int = 15,
                 seed: int = 0) -> None:
        self.pool = list(pool)
        self.ensemble_size = ensemble_size
        self.max_layers = max_layers
        self.hidden = hidden
        self.hidden_fraction = hidden_fraction
        self.lr = lr
        self.architecture_lr = architecture_lr
        self.weight_decay = weight_decay
        self.epochs = epochs
        self.update_every = update_every
        self.patience = patience
        self.seed = seed
        # Populated by ``search`` for inspection (Table VI memory accounting).
        self.models: List[List[GNNModel]] = []
        self.alpha_parameters: List[List[Parameter]] = []
        self.beta_parameter: Optional[Parameter] = None

    # ------------------------------------------------------------------
    # Construction of the joint search network
    # ------------------------------------------------------------------
    def _build(self, num_features: int, num_classes: int) -> None:
        self.models = []
        self.alpha_parameters = []
        for model_index, spec_name in enumerate(self.pool):
            spec = get_model_spec(spec_name)
            replicas: List[GNNModel] = []
            alphas: List[Parameter] = []
            for replica_index in range(self.ensemble_size):
                model = spec.build(
                    in_features=num_features,
                    num_classes=num_classes,
                    hidden=self.hidden,
                    num_layers=self.max_layers,
                    hidden_fraction=self.hidden_fraction,
                    seed=self.seed + 101 * model_index + 31 * replica_index,
                )
                replicas.append(model)
                alphas.append(Parameter(np.zeros(model.num_layers),
                                        name=f"alpha/{spec_name}/{replica_index}"))
            self.models.append(replicas)
            self.alpha_parameters.append(alphas)
        self.beta_parameter = Parameter(np.zeros(len(self.pool)), name="beta")

    # ------------------------------------------------------------------
    # Differentiable hierarchical prediction (Eqns 3, 4, 7)
    # ------------------------------------------------------------------
    def _ensemble_log_proba(self, data: GraphTensors) -> Tensor:
        beta = F.softmax(self.beta_parameter, axis=-1)
        mixture: Optional[Tensor] = None
        for model_index, replicas in enumerate(self.models):
            gse_probability: Optional[Tensor] = None
            for replica_index, model in enumerate(replicas):
                alpha = self.alpha_parameters[model_index][replica_index]
                logits = model(data, layer_weights=alpha)
                probabilities = F.softmax(logits, axis=-1)
                gse_probability = probabilities if gse_probability is None \
                    else gse_probability + probabilities
            gse_probability = gse_probability * (1.0 / len(replicas))
            weighted = gse_probability * beta[model_index]
            mixture = weighted if mixture is None else mixture + weighted
        return (mixture + 1e-12).log()

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def search(self, data: GraphTensors, labels: np.ndarray, train_index: np.ndarray,
               val_index: np.ndarray, num_classes: int) -> GradientSearchResult:
        """Run the alternating first-order optimisation and derive α*, β*."""
        labels = np.asarray(labels)
        train_index = np.asarray(train_index)
        val_index = np.asarray(val_index)
        self._build(data.num_features, num_classes)

        weight_parameters = [p for replicas in self.models for m in replicas
                             for p in m.parameters()]
        architecture_parameters = [alpha for alphas in self.alpha_parameters for alpha in alphas]
        architecture_parameters.append(self.beta_parameter)

        weight_optimizer = optim.Adam(weight_parameters, lr=self.lr,
                                      weight_decay=self.weight_decay)
        architecture_optimizer = optim.Adam(architecture_parameters, lr=self.architecture_lr,
                                            weight_decay=0.0)

        history: List[Dict[str, float]] = []
        best_val = -np.inf
        epochs_without_improvement = 0
        start = time.time()
        for epoch in range(self.epochs):
            # --- update model weights w on the training loss -----------------
            for replicas in self.models:
                for model in replicas:
                    model.train()
            weight_optimizer.zero_grad()
            log_probabilities = self._ensemble_log_proba(data)
            train_loss = F.nll_loss(log_probabilities[train_index], labels[train_index])
            train_loss.backward()
            # Only step the weights; clear any architecture gradients produced.
            for parameter in architecture_parameters:
                parameter.zero_grad()
            weight_optimizer.step()

            # --- update architecture parameters on the validation loss -------
            val_loss_value = float("nan")
            if (epoch + 1) % self.update_every == 0:
                architecture_optimizer.zero_grad()
                log_probabilities = self._ensemble_log_proba(data)
                val_loss = F.nll_loss(log_probabilities[val_index], labels[val_index])
                val_loss.backward()
                for parameter in weight_parameters:
                    parameter.zero_grad()
                architecture_optimizer.step()
                val_loss_value = float(val_loss.item())

            val_accuracy = self._validation_accuracy(data, labels, val_index)
            history.append({"epoch": float(epoch), "train_loss": float(train_loss.item()),
                            "val_loss": val_loss_value, "val_accuracy": val_accuracy})
            if val_accuracy > best_val:
                best_val = val_accuracy
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    break

        return self._finalize(start, history)

    def _ensemble_log_proba_inference(self, data: GraphTensors) -> np.ndarray:
        """Raw-ndarray twin of :meth:`_ensemble_log_proba` (no graph recording)."""
        beta = F.softmax_array(self.beta_parameter.data, axis=-1)
        mixture: Optional[np.ndarray] = None
        for model_index, replicas in enumerate(self.models):
            gse_probability: Optional[np.ndarray] = None
            for replica_index, model in enumerate(replicas):
                alpha = self.alpha_parameters[model_index][replica_index]
                logits = model.forward_inference(data, layer_weights=alpha)
                probabilities = F.softmax_array(logits, axis=-1)
                gse_probability = probabilities if gse_probability is None \
                    else gse_probability + probabilities
            gse_probability = gse_probability * (1.0 / len(replicas))
            weighted = gse_probability * beta[model_index]
            mixture = weighted if mixture is None else mixture + weighted
        return np.log(mixture + 1e-12)

    def _validation_accuracy(self, data: GraphTensors, labels: np.ndarray,
                             val_index: np.ndarray) -> float:
        for replicas in self.models:
            for model in replicas:
                model.eval()
        log_probabilities = self._ensemble_log_proba_inference(data)
        return accuracy(log_probabilities[val_index], labels[val_index])

    def _finalize(self, start: float, history: List[Dict[str, float]]) -> GradientSearchResult:
        chosen_layers: Dict[str, List[int]] = {}
        alpha_softmax: Dict[str, List[np.ndarray]] = {}
        for spec_name, alphas in zip(self.pool, self.alpha_parameters):
            depths: List[int] = []
            softs: List[np.ndarray] = []
            for alpha in alphas:
                soft = np.exp(alpha.data - alpha.data.max())
                soft = soft / soft.sum()
                depths.append(int(soft.argmax()) + 1)
                softs.append(soft)
            chosen_layers[spec_name] = depths
            alpha_softmax[spec_name] = softs
        beta_logits = self.beta_parameter.data
        beta = np.exp(beta_logits - beta_logits.max())
        beta = beta / beta.sum()
        return GradientSearchResult(
            chosen_layers=chosen_layers,
            beta=beta,
            alpha_softmax=alpha_softmax,
            search_time=time.time() - start,
            history=history,
        )

    # ------------------------------------------------------------------
    # Introspection for the runtime study (Table VI)
    # ------------------------------------------------------------------
    def parameter_bytes(self) -> int:
        """Approximate peak parameter memory of the joint search network."""
        total = 0
        for replicas in self.models:
            for model in replicas:
                total += sum(p.data.nbytes for p in model.parameters())
        if self.beta_parameter is not None:
            total += self.beta_parameter.data.nbytes
        for alphas in self.alpha_parameters:
            total += sum(alpha.data.nbytes for alpha in alphas)
        return total
