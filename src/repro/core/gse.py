"""Graph self-ensemble (GSE) — Eqns 1–3 and Figure 2 of the paper.

A GSE is built from one architecture of the pool: ``K`` replicas are trained
with different weight-initialisation seeds, every replica aggregates its
per-layer hidden states with a layer-weight vector α (a one-hot depth choice
after searching, a relaxed softmax during gradient search), and the replica
probabilities are averaged for the joint prediction.  The two effects the
paper attributes to GSE — initialisation-variance reduction and local/global
neighbourhood mixing — both live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.data import GraphTensors
from repro.nn.model_zoo import ModelSpec, get_model_spec
from repro.nn.models.base import GNNModel
from repro.parallel.backends import BackendLike, scoped_backend
from repro.tasks.metrics import accuracy
from repro.tasks.trainer import NodeClassificationTrainer, TrainConfig


def fit_member(task) -> tuple:
    """Train one GSE member; returns ``(state_dict, best_val_accuracy, rng_state)``.

    Module-level so the process backend can pickle it.  The trained weights
    travel back as a plain array dict and are loaded into the parent's member
    object.  The consumed RNG state travels back too: training advances the
    member's generator (dropout masks), and without restoring it a *second*
    ``fit`` on the same members would draw different masks under the process
    backend than under serial/thread — breaking the bit-for-bit contract.

    ``data`` may arrive as a :class:`~repro.graph.shm.SharedGraphHandle`
    (pipeline ``shared_graph`` mode): the worker then maps the published
    graph tensors read-only from shared memory — identical bytes, so
    training stays bit-for-bit the unpickled behaviour.
    """
    from repro.graph.shm import resolve_graph_data

    member, alpha, data, labels, train_index, val_index, config = task
    data = resolve_graph_data(data)
    trainer = NodeClassificationTrainer(config)
    result = trainer.train(member, data, labels, train_index, val_index,
                           layer_weights=alpha)
    return (member.state_dict(), result.best_val_accuracy,
            member.rng.bit_generator.state)


def one_hot_alpha(num_layers: int, chosen_layer: int) -> np.ndarray:
    """One-hot layer-selection vector α (``chosen_layer`` is 1-based)."""
    if not 1 <= chosen_layer <= num_layers:
        raise ValueError(f"chosen_layer must lie in [1, {num_layers}]")
    alpha = np.zeros(num_layers)
    alpha[chosen_layer - 1] = 1.0
    return alpha


def uniform_alpha(num_layers: int) -> np.ndarray:
    """Uniform layer aggregation (every hop contributes equally)."""
    return np.full(num_layers, 1.0 / num_layers)


@dataclass
class GraphSelfEnsemble:
    """K same-architecture members with different seeds and layer weights."""

    spec_name: str
    num_members: int = 3
    hidden: int = 64
    num_layers: int = 2
    dropout: float = 0.5
    hidden_fraction: float = 1.0
    base_seed: int = 0
    layer_weights: Optional[Sequence[np.ndarray]] = None
    members: List[GNNModel] = field(default_factory=list)
    member_val_scores: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ModelSpec:
        return get_model_spec(self.spec_name)

    def _member_alpha(self, index: int, member: Optional[GNNModel] = None) -> Optional[np.ndarray]:
        if self.layer_weights is None:
            return None
        alpha = np.asarray(self.layer_weights[index % len(self.layer_weights)], dtype=np.float64)
        if member is not None and alpha.shape[0] != member.num_layers:
            # Architectures such as APPNP/DAGNN pick their own internal depth;
            # translate the searched depth choice into a one-hot vector of the
            # member's actual layer count (clipped to the valid range).
            chosen = min(int(alpha.argmax()) + 1, member.num_layers)
            alpha = one_hot_alpha(member.num_layers, chosen)
        return alpha

    def build_members(self, num_features: int, num_classes: int) -> List[GNNModel]:
        """Instantiate the K members (different seeds, same architecture)."""
        self.members = [
            self.spec.build(
                in_features=num_features,
                num_classes=num_classes,
                hidden=self.hidden,
                num_layers=self.num_layers,
                dropout=self.dropout,
                hidden_fraction=self.hidden_fraction,
                seed=self.base_seed + 31 * index,
            )
            for index in range(self.num_members)
        ]
        return self.members

    # ------------------------------------------------------------------
    # Training / prediction
    # ------------------------------------------------------------------
    def fit(self, data: GraphTensors, labels: np.ndarray, train_index: np.ndarray,
            val_index: np.ndarray, train_config: Optional[TrainConfig] = None,
            num_classes: Optional[int] = None,
            backend: BackendLike = None, policy=None) -> "GraphSelfEnsemble":
        """Train every member independently and record its validation accuracy.

        The K members only differ in their initialisation seed, so they can
        train concurrently on any :mod:`repro.parallel` backend.  When
        ``train_config.batch_size`` is set, each member trains on
        neighbour-sampled minibatches (its trainer builds a
        ``NeighborSampler`` from the shared ``adj_raw`` CSR of ``data``);
        prediction stays full-graph either way.
        """
        tasks = self.member_tasks(data, labels, train_index, val_index,
                                  train_config=train_config, num_classes=num_classes)
        with scoped_backend(backend) as executor:
            report = executor.map(fit_member, tasks, policy=policy)
        self.apply_member_results(report.results)
        return self

    def member_tasks(self, data: GraphTensors, labels: np.ndarray,
                     train_index: np.ndarray, val_index: np.ndarray,
                     train_config: Optional[TrainConfig] = None,
                     num_classes: Optional[int] = None) -> List[tuple]:
        """Build the per-member training tasks consumed by :func:`fit_member`.

        Exposed so :class:`~repro.core.hierarchical.HierarchicalEnsemble` can
        flatten the tasks of all its GSEs onto one backend map instead of
        synchronising after every GSE.
        """
        if not self.members:
            classes = num_classes if num_classes is not None else int(np.max(labels) + 1)
            self.build_members(data.num_features, classes)
        config = train_config or TrainConfig()
        return [
            (member, self._member_alpha(index, member), data, labels,
             train_index, val_index, config.with_overrides(seed=config.seed + index))
            for index, member in enumerate(self.members)
        ]

    def apply_member_results(self, results: Sequence[tuple]) -> None:
        """Load :func:`fit_member` outcomes back into the members.

        A ``None`` outcome marks a member dropped by a resilience policy:
        that member is removed from the ensemble (the survivors keep their
        trained weights and the Eqn 3 average runs over fewer replicas).
        The fault-free path takes the plain zip below, untouched.
        """
        if any(result is None for result in results):
            survivors = []
            scores = []
            for member, result in zip(self.members, results):
                if result is None:
                    continue
                state, val_accuracy, rng_state = result
                member.load_state_dict(state)
                member.rng.bit_generator.state = rng_state
                survivors.append(member)
                scores.append(val_accuracy)
            self.members = survivors
            self.num_members = len(survivors)
            self.member_val_scores = scores
            return
        self.member_val_scores = []
        for member, (state, val_accuracy, rng_state) in zip(self.members, results):
            member.load_state_dict(state)
            # All of the member's sub-modules share its generator, so
            # restoring the state re-synchronises dropout for any later
            # training regardless of which backend ran this one.
            member.rng.bit_generator.state = rng_state
            self.member_val_scores.append(val_accuracy)

    def predict_proba(self, data: GraphTensors) -> np.ndarray:
        """Average member probabilities (Eqn 3)."""
        if not self.members:
            raise RuntimeError("GraphSelfEnsemble has no trained members")
        total = None
        for index, member in enumerate(self.members):
            probabilities = member.predict_proba(data,
                                                 layer_weights=self._member_alpha(index, member))
            total = probabilities if total is None else total + probabilities
        return total / len(self.members)

    def predict(self, data: GraphTensors) -> np.ndarray:
        return self.predict_proba(data).argmax(axis=1)

    def evaluate(self, data: GraphTensors, labels: np.ndarray, index: np.ndarray) -> float:
        index = np.asarray(index)
        return accuracy(self.predict_proba(data)[index], np.asarray(labels)[index])

    @property
    def validation_accuracy(self) -> float:
        """Mean member validation accuracy (feeds the adaptive β of Eqn 8)."""
        if not self.member_val_scores:
            return 0.0
        return float(np.mean(self.member_val_scores))

    def describe(self) -> Dict[str, object]:
        return {
            "model": self.spec_name,
            "members": self.num_members,
            "num_layers": self.num_layers,
            "layer_weights": None if self.layer_weights is None
            else [list(map(float, alpha)) for alpha in self.layer_weights],
            "validation_accuracy": self.validation_accuracy,
        }

    # ------------------------------------------------------------------
    # Artifact de/serialisation (repro.core.artifact)
    # ------------------------------------------------------------------
    def manifest_entry(self) -> Dict[str, object]:
        """JSON-safe construction record: everything needed to rebuild the
        members (weights travel separately as npz blobs)."""
        return {
            "model": self.spec_name,
            "num_members": int(self.num_members),
            "hidden": int(self.hidden),
            "num_layers": int(self.num_layers),
            "dropout": float(self.dropout),
            "hidden_fraction": float(self.hidden_fraction),
            "base_seed": int(self.base_seed),
            "layer_weights": None if self.layer_weights is None
            else [[float(w) for w in np.asarray(alpha).ravel()]
                  for alpha in self.layer_weights],
            "member_val_scores": [float(score) for score in self.member_val_scores],
        }

    @classmethod
    def from_manifest_entry(cls, entry: Dict[str, object], num_features: int,
                            num_classes: int) -> "GraphSelfEnsemble":
        """Rebuild the GSE and instantiate its members (weights not yet loaded).

        Members are constructed through the model zoo exactly as during
        training — same spec, same per-member seeds — then the caller loads
        the stored ``state_dict`` of each, so the rebuilt ensemble predicts
        bit-for-bit like the fitted one.
        """
        weights = entry["layer_weights"]
        ensemble = cls(
            spec_name=str(entry["model"]),
            num_members=int(entry["num_members"]),
            hidden=int(entry["hidden"]),
            num_layers=int(entry["num_layers"]),
            dropout=float(entry["dropout"]),
            hidden_fraction=float(entry["hidden_fraction"]),
            base_seed=int(entry["base_seed"]),
            layer_weights=None if weights is None
            else [np.asarray(alpha, dtype=np.float64) for alpha in weights],
        )
        ensemble.build_members(num_features, num_classes)
        ensemble.member_val_scores = [float(score)
                                      for score in entry.get("member_val_scores", [])]
        return ensemble
