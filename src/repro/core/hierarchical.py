"""Hierarchical ensemble — the weighted combination of graph self-ensembles (Eqn 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.gse import GraphSelfEnsemble, fit_member
from repro.nn.data import GraphTensors
from repro.parallel.backends import BackendLike, scoped_backend
from repro.resilience.policy import FailureReport
from repro.tasks.metrics import accuracy
from repro.tasks.trainer import TrainConfig


def normalize_weights(weights: Sequence[float]) -> np.ndarray:
    """Softmax-free normalisation used for already-positive ensemble weights."""
    array = np.asarray(list(weights), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot normalise an empty weight vector")
    array = np.maximum(array, 0.0)
    total = array.sum()
    if total <= 0:
        return np.full(array.size, 1.0 / array.size)
    return array / total


@dataclass
class HierarchicalEnsemble:
    """Weighted ensemble ``Y = sum_j beta_j * Y_GSE_j`` over the model pool."""

    ensembles: List[GraphSelfEnsemble] = field(default_factory=list)
    beta: Optional[np.ndarray] = None
    #: Member trainings dropped by a resilience policy in the last
    #: :meth:`fit`, annotated with their GSE's architecture and member slot.
    fit_failures: List[FailureReport] = field(default_factory=list)

    def add(self, ensemble: GraphSelfEnsemble) -> "HierarchicalEnsemble":
        self.ensembles.append(ensemble)
        return self

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, data: GraphTensors, labels: np.ndarray, train_index: np.ndarray,
            val_index: np.ndarray, train_config: Optional[TrainConfig] = None,
            num_classes: Optional[int] = None,
            backend: BackendLike = None, policy=None) -> "HierarchicalEnsemble":
        """Train every member GSE (each member model is trained separately).

        All ``N x K`` member models across every GSE are independent, so their
        training tasks are flattened onto one backend map — a parallel backend
        keeps every worker busy instead of synchronising after each GSE.
        ``train_config.batch_size`` propagates to every member trainer, so
        one flag moves the whole hierarchical re-training to
        neighbour-sampled minibatches on large graphs.
        """
        tasks = []
        counts = []
        for ensemble in self.ensembles:
            ensemble_tasks = ensemble.member_tasks(data, labels, train_index, val_index,
                                                   train_config=train_config,
                                                   num_classes=num_classes)
            tasks.extend(ensemble_tasks)
            counts.append(len(ensemble_tasks))
        with scoped_backend(backend) as executor:
            report = executor.map(fit_member, tasks, policy=policy)
        offset = 0
        for ensemble, count in zip(self.ensembles, counts):
            slice_results = report.results[offset:offset + count]
            for failure in report.failures:
                if offset <= failure.index < offset + count:
                    failure.context.setdefault("architecture", ensemble.spec_name)
                    failure.context.setdefault("member", failure.index - offset)
            ensemble.apply_member_results(slice_results)
            offset += count
        self.fit_failures = list(report.failures)
        return self

    def set_beta(self, beta: Sequence[float]) -> "HierarchicalEnsemble":
        beta = np.asarray(list(beta), dtype=np.float64)
        if beta.shape[0] != len(self.ensembles):
            raise ValueError("beta must have one weight per ensemble")
        self.beta = normalize_weights(beta)
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def effective_beta(self) -> np.ndarray:
        if self.beta is not None:
            return self.beta
        return np.full(len(self.ensembles), 1.0 / max(len(self.ensembles), 1))

    def predict_proba(self, data: GraphTensors) -> np.ndarray:
        if not self.ensembles:
            raise RuntimeError("hierarchical ensemble is empty")
        beta = self.effective_beta()
        total = None
        for weight, ensemble in zip(beta, self.ensembles):
            probabilities = ensemble.predict_proba(data) * weight
            total = probabilities if total is None else total + probabilities
        return total

    def predict(self, data: GraphTensors) -> np.ndarray:
        return self.predict_proba(data).argmax(axis=1)

    def evaluate(self, data: GraphTensors, labels: np.ndarray, index: np.ndarray) -> float:
        index = np.asarray(index)
        return accuracy(self.predict_proba(data)[index], np.asarray(labels)[index])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def validation_accuracies(self) -> List[float]:
        return [ensemble.validation_accuracy for ensemble in self.ensembles]

    def describe(self) -> Dict[str, object]:
        return {
            "pool": [ensemble.describe() for ensemble in self.ensembles],
            "beta": [float(b) for b in self.effective_beta()],
        }

    # ------------------------------------------------------------------
    # Artifact de/serialisation (repro.core.artifact)
    # ------------------------------------------------------------------
    def manifest_entry(self) -> Dict[str, object]:
        """JSON-safe construction record of this split's GSEs and β."""
        return {
            "beta": None if self.beta is None else [float(b) for b in self.beta],
            "ensembles": [ensemble.manifest_entry() for ensemble in self.ensembles],
        }

    @classmethod
    def from_manifest_entry(cls, entry: Dict[str, object], num_features: int,
                            num_classes: int) -> "HierarchicalEnsemble":
        """Rebuild the split (members instantiated, weights not yet loaded).

        ``beta`` is restored verbatim — it was normalised at fit time, and
        re-normalising would perturb the stored values by one floating-point
        division, breaking bit-identical predictions.
        """
        hierarchical = cls()
        for ensemble_entry in entry["ensembles"]:
            hierarchical.add(GraphSelfEnsemble.from_manifest_entry(
                ensemble_entry, num_features, num_classes))
        if entry.get("beta") is not None:
            hierarchical.beta = np.asarray(entry["beta"], dtype=np.float64)
        return hierarchical
