"""The end-to-end AutoHEnsGNN pipeline (Figure 1).

Given a graph whose test labels are unknown, :class:`AutoHEnsGNN`:

1. runs proxy evaluation over the candidate zoo and selects the top-``N`` pool,
2. searches the hierarchical-ensemble configuration (α per GSE replica and β)
   with either the adaptive or the gradient algorithm,
3. re-trains every sub-model from scratch with the searched configuration on
   one or more random train/validation splits (bagging), and
4. averages everything into the final prediction.

The pipeline is deliberately *hands-off*: the only required input is the
graph; every decision the paper automates (model choice, depths, weights,
hyper-parameters) is made internally, honouring an optional wall-clock time
budget like the challenge imposes.

The estimator lifecycle separates the expensive part from the cheap part:
:meth:`AutoHEnsGNN.fit` pays the AutoML cost once and returns a
:class:`~repro.core.artifact.FittedEnsemble` that owns every trained member
and answers ``predict_proba``/``predict`` requests through the raw-ndarray
inference fast path, can be ``save``d to a versioned artifact and ``load``ed
in a fresh serving process (see :mod:`repro.serve`).  The historical
one-shot :meth:`AutoHEnsGNN.fit_predict` remains as a thin wrapper over
``fit`` and is bit-identical to its pre-estimator behaviour at fixed seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.automl.budget import TimeBudget
from repro.autograd.dtype import compute_dtype_name, compute_dtype_scope
from repro.core.adaptive import AdaptiveSearch
from repro.core.artifact import FittedEnsemble
from repro.core.config import AutoHEnsGNNConfig, SearchMethod
from repro.core.gradient_search import GradientSearch
from repro.core.gse import GraphSelfEnsemble, one_hot_alpha
from repro.core.hierarchical import HierarchicalEnsemble
from repro.core.proxy import ProxyEvaluator
from repro.core.selection import select_top_models
from repro.graph.graph import Graph
from repro.graph.splits import random_split
from repro.nn.data import GraphTensors
from repro.parallel.backends import ExecutionBackend, ProcessBackend, get_backend
from repro.resilience.policy import FailureReport
from repro.tasks.metrics import accuracy
from repro.tasks.trainer import TrainConfig


@dataclass
class PipelineResult:
    """Everything the pipeline produced, for inspection and the experiment harness."""

    probabilities: np.ndarray
    predictions: np.ndarray
    pool: List[str]
    beta: np.ndarray
    chosen_layers: Dict[str, object]
    proxy_time: float
    search_time: float
    train_time: float
    total_time: float
    proxy_ranking: List[str] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    def test_accuracy(self, labels: np.ndarray, test_index: np.ndarray) -> float:
        test_index = np.asarray(test_index)
        return accuracy(self.probabilities[test_index], np.asarray(labels)[test_index])


class AutoHEnsGNN:
    """Automated hierarchical ensemble of graph neural networks."""

    def __init__(self, config: Optional[AutoHEnsGNNConfig] = None) -> None:
        self.config = config or AutoHEnsGNNConfig()
        self.hierarchical_ensembles: List[HierarchicalEnsemble] = []
        self.executor: ExecutionBackend = get_backend(self.config.backend,
                                                      max_workers=self.config.max_workers)
        # Shared-memory graph store (config.shared_graph on the process
        # backend); created per fit() run, closed in its finally.
        self._shared_store = None

    # ------------------------------------------------------------------
    # Fit / predict
    # ------------------------------------------------------------------
    def fit(self, graph: Graph, pool: Optional[Sequence[str]] = None) -> FittedEnsemble:
        """Run the AutoML pipeline once and return the fitted ensemble.

        This is the expensive half of the estimator lifecycle: proxy
        evaluation, configuration search and bagged re-training.  The
        returned :class:`~repro.core.artifact.FittedEnsemble` owns every
        trained member and serves ``predict_proba``/``predict`` requests
        against the original graph or a re-built one with the same feature
        schema; ``save``/``load`` persist it across processes.  Its
        ``fit_report`` attribute carries the full
        :class:`PipelineResult` (fit-time probabilities, timings, proxy
        ranking).

        ``pool`` can pre-specify the model pool (used by ablations);
        otherwise proxy evaluation selects it automatically.
        """
        self.config.validate()
        try:
            # Apply the engine dtype policy for the duration of the run (and
            # restore the caller's policy afterwards): every GraphTensors
            # view, parameter and optimiser buffer downstream then lives in
            # the configured dtype.
            with compute_dtype_scope(self.config.compute_dtype):
                return self._fit(graph, pool)
        finally:
            # Release pooled workers (process backends hold live interpreter
            # processes); the executor is re-created lazily on the next call.
            self.executor.close()
            if self._shared_store is not None:
                self._shared_store.close()
                self._shared_store = None

    def fit_predict(self, graph: Graph, pool: Optional[Sequence[str]] = None) -> PipelineResult:
        """Fit on ``graph`` and return the fit-time predictions for every node.

        A thin wrapper over :meth:`fit` kept for the one-shot transductive
        workflow of the paper; bit-identical to the historical behaviour at
        fixed seeds.  ``result.probabilities`` equals
        ``fit(graph).predict_proba(graph)`` bit-for-bit — use :meth:`fit`
        when the ensemble should outlive the prediction.
        """
        return self.fit(graph, pool).fit_report

    def _fit(self, graph: Graph, pool: Optional[Sequence[str]] = None) -> FittedEnsemble:
        config = self.config
        total_start = time.time()
        budget = TimeBudget(config.time_budget)
        data = GraphTensors.from_graph(graph)
        labelled = graph.metadata.get("labelled_pool")

        # Minibatch mode: thread batch_size/fanouts into every training
        # stage, field-wise — pipeline-level values are *defaults*, so a
        # stage-level TrainConfig/ProxyConfig that names its own value keeps
        # it.  With everything None this is an identity rewrite, keeping the
        # full-batch path bit-for-bit identical to before the minibatch
        # engine existed.
        train_config = config.train.with_overrides(
            batch_size=config.train.batch_size
            if config.train.batch_size is not None else config.batch_size,
            fanouts=config.train.fanouts
            if config.train.fanouts is not None else config.fanouts,
            num_partitions=config.train.num_partitions
            if config.train.num_partitions is not None else config.num_partitions,
            capture=config.train.capture and config.capture)
        proxy_config = dataclasses_replace(
            config.proxy,
            batch_size=config.proxy.batch_size
            if config.proxy.batch_size is not None else config.batch_size,
            fanouts=config.proxy.fanouts
            if config.proxy.fanouts is not None else config.fanouts,
            capture=config.proxy.capture and config.capture)

        # ------------------------------------------------------------------
        # 1. Proxy evaluation and pool selection
        # ------------------------------------------------------------------
        proxy_start = time.time()
        proxy_ranking: List[str] = []
        # Failure reports from every supervised stage (empty without a
        # drop policy) end up in PipelineResult.details["failures"].
        policy = config.resilience
        failure_reports: List[FailureReport] = []
        if pool is None:
            evaluator = ProxyEvaluator(proxy_config, candidates=config.candidate_models,
                                       backend=self.executor, policy=policy,
                                       shared_graph=config.shared_graph)
            report = evaluator.evaluate(graph, seed=config.seed, budget=budget)
            proxy_ranking = report.ranking()
            failure_reports.extend(report.failures)
            pool = select_top_models(report, config.pool_size)
        pool = list(pool)
        proxy_time = time.time() - proxy_start
        budget.check("proxy evaluation")

        # ------------------------------------------------------------------
        # 2. Configuration search (α, β)
        # ------------------------------------------------------------------
        search_start = time.time()
        search_split = random_split(graph, val_fraction=config.val_fraction,
                                    seed=config.seed, labelled_pool=labelled)
        train_index = search_split.mask_indices("train")
        val_index = search_split.mask_indices("val")
        # Gradient search co-trains the whole relaxed ensemble and therefore
        # always runs full-batch; minibatch mode applies to the adaptive
        # search, proxy evaluation and the bagged re-training below.
        if config.search_method == SearchMethod.GRADIENT and budget.remaining_fraction() > 0.3:
            search = GradientSearch(
                pool=pool,
                ensemble_size=config.ensemble_size,
                max_layers=config.max_layers,
                hidden=config.hidden,
                hidden_fraction=config.proxy.hidden_fraction,
                lr=config.train.lr,
                architecture_lr=config.architecture_lr,
                epochs=config.search_epochs,
                update_every=config.architecture_update_every,
                seed=config.seed,
            )
            result = search.search(data, search_split.labels, train_index, val_index,
                                   num_classes=graph.num_classes)
            beta = result.beta
            chosen_layers: Dict[str, object] = result.chosen_layers
            layer_weights = {name: result.layer_weights(name) for name in pool}
            search_details: Dict[str, object] = {"history": result.history}
        else:
            search = AdaptiveSearch(
                pool=pool,
                ensemble_size=config.ensemble_size,
                max_layers=config.max_layers,
                hidden=config.hidden,
                adaptive_config=config.adaptive,
                train_config=train_config.with_overrides(max_epochs=config.search_epochs),
                seed=config.seed,
                backend=self.executor,
                policy=policy,
            )
            result = search.search(graph, data, search_split.labels, train_index, val_index,
                                   num_classes=graph.num_classes,
                                   hidden_fraction=config.proxy.hidden_fraction)
            beta = result.beta
            chosen_layers = result.chosen_layers
            failure_reports.extend(result.failures)
            if len(chosen_layers) < len(pool):
                # Architectures that lost every grid point under the drop
                # policy leave the pool; beta was computed over the
                # survivors, so pool and beta stay aligned.
                pool = [name for name in pool if name in chosen_layers]
            layer_weights = {
                name: [one_hot_alpha(result.chosen_layers[name], result.chosen_layers[name])]
                for name in pool
            }
            search_details = {"layer_scores": result.layer_scores}
        search_time = time.time() - search_start
        budget.check("configuration search")

        # ------------------------------------------------------------------
        # 3. Re-training with bagging over data splits
        # ------------------------------------------------------------------
        train_start = time.time()
        # shared_graph: publish the graph tensors once to a shared-memory
        # store and hand process workers a small handle — every worker then
        # maps the CSR operators and feature blocks read-only instead of
        # unpickling its own copy of the graph.  The mapped bytes are the
        # published bytes, so training is bit-identical either way.  Only
        # the bagged re-training fans the full graph out per task (proxy
        # evaluation ships its own sub-graph and publishes it itself; the
        # adaptive search shares this executor but trains on grid-point
        # sub-problems of the same data object in-process).
        fanout_data: object = data
        if config.shared_graph and isinstance(self.executor, ProcessBackend):
            from repro.graph.shm import SharedGraphStore
            # Closed (files unlinked) by fit()'s finally alongside the
            # executor — the workers' existing mappings stay valid on Linux
            # until they unmap, so closing cannot race a straggling task.
            self._shared_store = SharedGraphStore()
            fanout_data = self._shared_store.put_tensors(data)
        self.hierarchical_ensembles = []
        split_probabilities: List[np.ndarray] = []
        for split_index in range(max(config.bagging_splits, 1)):
            split_graph = random_split(graph, val_fraction=config.val_fraction,
                                       seed=config.seed + 7919 * split_index,
                                       labelled_pool=labelled)
            hierarchical = HierarchicalEnsemble()
            for model_index, name in enumerate(pool):
                depth = chosen_layers[name]
                if isinstance(depth, list):
                    depth_value = int(round(float(np.mean(depth))))
                else:
                    depth_value = int(depth)
                hierarchical.add(GraphSelfEnsemble(
                    spec_name=name,
                    num_members=config.ensemble_size,
                    hidden=config.hidden,
                    num_layers=max(depth_value, 1),
                    dropout=config.train.dropout,
                    base_seed=config.seed + 997 * split_index + 131 * model_index,
                    layer_weights=layer_weights[name],
                ))
            # The N x K member models of this split train concurrently on the
            # configured backend; the split loop itself stays sequential so the
            # budget heuristic below can react to observed per-split cost.
            # ``fanout_data`` is the shared-memory handle in shared_graph
            # mode (workers resolve it); predictions below keep the real
            # in-process ``data``.
            hierarchical.fit(fanout_data, split_graph.labels,
                             split_graph.mask_indices("train"),
                             split_graph.mask_indices("val"),
                             train_config=train_config,
                             num_classes=graph.num_classes,
                             backend=self.executor,
                             policy=policy)
            if hierarchical.fit_failures:
                for failure in hierarchical.fit_failures:
                    failure.context.setdefault("bagging_split", split_index)
                failure_reports.extend(hierarchical.fit_failures)
                # A GSE that lost every member cannot predict; drop it and
                # its beta entry (set_beta renormalises the survivors).
                keep = [position for position, ensemble
                        in enumerate(hierarchical.ensembles) if ensemble.members]
                if not keep:
                    raise RuntimeError(
                        f"bagging split {split_index} lost every ensemble "
                        "member under the resilience policy")
                if len(keep) < len(hierarchical.ensembles):
                    hierarchical.ensembles = [hierarchical.ensembles[position]
                                              for position in keep]
                    hierarchical.set_beta(np.asarray(beta, dtype=np.float64)[keep])
                else:
                    hierarchical.set_beta(beta)
            else:
                hierarchical.set_beta(beta)
            self.hierarchical_ensembles.append(hierarchical)
            split_probabilities.append(hierarchical.predict_proba(data))
            if not budget.has_time_for_another(time.time() - train_start,
                                               split_index + 1):
                break
        probabilities = np.mean(split_probabilities, axis=0)
        train_time = time.time() - train_start
        search_details["backend"] = self.executor.describe()
        if policy is not None:
            search_details["failures"] = [failure.describe()
                                          for failure in failure_reports]

        report = PipelineResult(
            probabilities=probabilities,
            predictions=probabilities.argmax(axis=1),
            pool=pool,
            beta=np.asarray(beta),
            chosen_layers=chosen_layers,
            proxy_time=proxy_time,
            search_time=search_time,
            train_time=train_time,
            total_time=time.time() - total_start,
            proxy_ranking=proxy_ranking,
            details=search_details,
        )
        return FittedEnsemble(
            ensembles=list(self.hierarchical_ensembles),
            pool=list(pool),
            beta=np.asarray(beta),
            chosen_layers=chosen_layers,
            num_features=data.num_features,
            num_classes=int(graph.num_classes),
            # Resolved under the scope fit() installed, so "float32" round-trips.
            compute_dtype=compute_dtype_name(),
            metadata={
                "graph_name": graph.name,
                "graph_nodes": int(graph.num_nodes),
                "search_method": str(config.search_method.value),
                "seed": int(config.seed),
                "bagging_splits_trained": len(self.hierarchical_ensembles),
            },
            fit_report=report,
        )

    # ------------------------------------------------------------------
    # Convenience evaluation helpers
    # ------------------------------------------------------------------
    def evaluate(self, graph: Graph, result: Optional[PipelineResult] = None,
                 labels: Optional[np.ndarray] = None) -> float:
        """Accuracy on the graph's test mask using hidden labels when available."""
        if result is None:
            result = self.fit_predict(graph)
        if labels is None:
            labels = graph.metadata.get("hidden_labels", graph.labels)
        test_index = graph.mask_indices("test")
        return result.test_accuracy(np.asarray(labels), test_index)
