"""Proxy evaluation for GNN model selection (Section III-B).

Evaluating every candidate accurately — full data, full hidden size, many
bagging rounds — is too slow, so the proxy evaluator trains each candidate on

* a **proxy dataset**: a class-stratified sub-graph containing ``D_proxy`` of
  the nodes,
* a **proxy model**: the same architecture at ``M_proxy`` of the hidden width,
* with **proxy bagging**: only ``B_proxy`` random train/validation splits.

The scores are used purely for *ranking* (Kendall-τ-correlated with the
accurate ranking, Figure 3), so absolute accuracy loss is acceptable.
:class:`ProxyEvaluator` also exposes :meth:`accurate_evaluation` so the
Figure 3 analysis can compare the two protocols and measure the speed-up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.automl.budget import TimeBudget
from repro.core.config import ProxyConfig
from repro.graph.graph import Graph
from repro.graph.sampling import sample_proxy_subgraph
from repro.graph.splits import random_split
from repro.nn.data import GraphTensors
from repro.nn.model_zoo import available_models, get_model_spec
from repro.parallel.backends import BackendLike, get_backend
from repro.resilience.policy import FailureReport, ResiliencePolicy
from repro.tasks.metrics import kendall_tau, mean_and_std
from repro.tasks.trainer import NodeClassificationTrainer, TrainConfig


@dataclass
class CandidateScore:
    """Evaluation outcome for one candidate architecture."""

    name: str
    mean_accuracy: float
    std_accuracy: float
    scores: List[float] = field(default_factory=list)
    train_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "mean_accuracy": self.mean_accuracy,
            "std_accuracy": self.std_accuracy,
            "train_time": self.train_time,
        }


@dataclass
class ProxyEvaluationReport:
    """Ranked candidates plus bookkeeping used by Figure 3 and Table VI."""

    scores: List[CandidateScore]
    total_time: float
    config: ProxyConfig
    skipped: List[str] = field(default_factory=list)
    #: Candidates dropped by a ``ResiliencePolicy(on_failure="drop")`` after
    #: exhausting their attempts; empty without a policy (failures raise).
    failures: List[FailureReport] = field(default_factory=list)

    def ranking(self) -> List[str]:
        """Candidate names sorted best-first."""
        ordered = sorted(self.scores, key=lambda score: score.mean_accuracy, reverse=True)
        return [score.name for score in ordered]

    def top(self, count: int) -> List[str]:
        return self.ranking()[:count]

    def score_map(self) -> Dict[str, float]:
        return {score.name: score.mean_accuracy for score in self.scores}

    def kendall_tau_against(self, other: "ProxyEvaluationReport") -> float:
        """Rank correlation between this report and another over shared candidates."""
        own = self.score_map()
        reference = other.score_map()
        shared = sorted(set(own) & set(reference))
        if len(shared) < 2:
            raise ValueError("need at least two shared candidates to compare rankings")
        return kendall_tau([own[name] for name in shared],
                           [reference[name] for name in shared])


@dataclass
class _CandidateTask:
    """Picklable description of one candidate evaluation (for process workers).

    ``data``/``proxy_graph`` are the materialised objects, or
    :class:`~repro.graph.shm.SharedGraphHandle` stand-ins in shared-graph
    mode (resolved by :func:`_evaluate_candidate` in the worker).
    """

    candidate: str
    data: object       # GraphTensors | SharedGraphHandle
    proxy_graph: object  # Graph | SharedGraphHandle
    num_classes: int
    hidden_fraction: float
    bagging_rounds: int
    val_fraction: float
    train_config: TrainConfig
    seed: int


def _evaluate_candidate(task: _CandidateTask) -> CandidateScore:
    """Train one candidate over its bagging rounds and score it.

    Module-level (not a closure) so every execution backend, including the
    process pool, can run it; all randomness comes from the explicit seeds,
    so serial and parallel runs produce identical scores.
    """
    from repro.graph.shm import resolve_graph, resolve_graph_data

    spec = get_model_spec(task.candidate)
    trainer = NodeClassificationTrainer(task.train_config)
    # In shared-graph mode the task carries shared-memory handles instead of
    # pickled copies; workers map the published proxy sub-graph read-only
    # (identical bytes, so scores are unchanged).
    task_data = resolve_graph_data(task.data)
    proxy_graph = resolve_graph(task.proxy_graph)
    candidate_start = time.time()
    bag_scores: List[float] = []
    for bag in range(max(task.bagging_rounds, 1)):
        split = random_split(proxy_graph, val_fraction=task.val_fraction,
                             seed=task.seed + 97 * bag)
        model = spec.build(
            in_features=task_data.num_features,
            num_classes=task.num_classes,
            hidden_fraction=task.hidden_fraction,
            seed=task.seed + bag,
        )
        result = trainer.train(model, task_data, split.labels,
                               split.mask_indices("train"), split.mask_indices("val"))
        bag_scores.append(result.best_val_accuracy)
    mean, std = mean_and_std(bag_scores)
    return CandidateScore(
        name=task.candidate,
        mean_accuracy=mean,
        std_accuracy=std,
        scores=bag_scores,
        train_time=time.time() - candidate_start,
    )


class ProxyEvaluator:
    """Rank candidate architectures with the proxy protocol (or the accurate one).

    ``backend`` selects how candidates are evaluated: ``"serial"`` (default),
    ``"thread"`` or ``"process"``, or any :class:`ExecutionBackend` instance.
    Candidate evaluations are independent, so any backend yields the same
    scores at a fixed seed.
    """

    def __init__(self, config: Optional[ProxyConfig] = None,
                 candidates: Optional[Sequence[str]] = None,
                 backend: BackendLike = None,
                 max_workers: Optional[int] = None,
                 policy: Optional[ResiliencePolicy] = None,
                 shared_graph: bool = False) -> None:
        self.config = config or ProxyConfig()
        self.candidates = list(candidates) if candidates is not None else available_models()
        self.backend = get_backend(backend, max_workers=max_workers)
        # With on_failure="drop" a crashing candidate is recorded and
        # excluded from the ranking instead of aborting model selection.
        self.policy = policy
        # Publish the proxy sub-graph to shared memory for process workers
        # (repro.graph.shm) instead of pickling it into every task; no
        # effect on in-process backends.
        self.shared_graph = shared_graph

    def close(self) -> None:
        """Release pooled workers (use the evaluator as a context manager)."""
        self.backend.close()

    def __enter__(self) -> "ProxyEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public protocols
    # ------------------------------------------------------------------
    def evaluate(self, graph: Graph, seed: Optional[int] = None,
                 budget: Optional[TimeBudget] = None) -> ProxyEvaluationReport:
        """Proxy evaluation: sampled sub-graph, reduced hidden size, few bags."""
        config = self.config
        return self._run(
            graph,
            dataset_fraction=config.dataset_fraction,
            hidden_fraction=config.hidden_fraction,
            bagging_rounds=config.bagging_rounds,
            seed=self.config.seed if seed is None else seed,
            budget=budget,
        )

    def accurate_evaluation(self, graph: Graph, bagging_rounds: int = 10,
                            seed: Optional[int] = None) -> ProxyEvaluationReport:
        """Accurate evaluation: full graph, full hidden size, many bags."""
        return self._run(
            graph,
            dataset_fraction=1.0,
            hidden_fraction=1.0,
            bagging_rounds=bagging_rounds,
            seed=self.config.seed if seed is None else seed,
        )

    def evaluate_with(self, graph: Graph, dataset_fraction: float, hidden_fraction: float,
                      bagging_rounds: int, seed: int = 0) -> ProxyEvaluationReport:
        """Fully parameterised evaluation (used by the Figure 3 sweeps)."""
        return self._run(graph, dataset_fraction=dataset_fraction,
                         hidden_fraction=hidden_fraction,
                         bagging_rounds=bagging_rounds, seed=seed)

    # ------------------------------------------------------------------
    # Implementation
    # ------------------------------------------------------------------
    def _run(self, graph: Graph, dataset_fraction: float, hidden_fraction: float,
             bagging_rounds: int, seed: int,
             budget: Optional[TimeBudget] = None) -> ProxyEvaluationReport:
        start = time.time()
        config = self.config
        proxy_graph = sample_proxy_subgraph(graph, dataset_fraction, seed=seed)
        data = GraphTensors.from_graph(proxy_graph)

        # Shared-graph mode (process backend only): every candidate task
        # carries two small handles instead of a pickled sub-graph + tensor
        # view per task; workers map the published bytes read-only.
        store = None
        task_data: object = data
        task_graph: object = proxy_graph
        if self.shared_graph:
            from repro.graph.shm import SharedGraphStore
            from repro.parallel.backends import ProcessBackend
            if isinstance(self.backend, ProcessBackend):
                store = SharedGraphStore()
                task_data = store.put_tensors(data)
                task_graph = store.put_graph(proxy_graph)

        train_config = TrainConfig(
            lr=config.lr,
            max_epochs=config.max_epochs,
            patience=config.patience,
            # Proxy candidates train on neighbour-sampled minibatches when
            # configured — on large graphs even the D_proxy sub-graph is too
            # big for a full-batch pass per candidate per bagging round.
            batch_size=config.batch_size,
            fanouts=config.fanouts,
            capture=config.capture,
            seed=seed,
        )
        tasks = [
            _CandidateTask(
                candidate=candidate,
                data=task_data,
                proxy_graph=task_graph,
                num_classes=graph.num_classes,
                hidden_fraction=hidden_fraction,
                bagging_rounds=bagging_rounds,
                val_fraction=config.val_fraction,
                train_config=train_config,
                seed=seed,
            )
            for candidate in self.candidates
        ]
        # Budget-aware dispatch: under a nearly-exhausted TimeBudget the
        # backend stops launching further candidates (at least one always
        # completes so a pool can be selected) and the report records who
        # was skipped.
        try:
            report = self.backend.map(_evaluate_candidate, tasks, budget=budget,
                                      min_results=1, policy=self.policy)
        finally:
            if store is not None:
                store.close()
        # Dropped candidates leave a None slot; attach their name so the
        # failure report is meaningful outside this call.
        for failure in report.failures:
            failure.context.setdefault("candidate", tasks[failure.index].candidate)
        scores: List[CandidateScore] = [score for score in report.results
                                        if score is not None]
        skipped = [task.candidate for task in tasks[report.dispatched:]]
        return ProxyEvaluationReport(scores=scores, total_time=time.time() - start,
                                     config=config, skipped=skipped,
                                     failures=list(report.failures))
