"""Selection of the top-performing pool ``P_GNN`` from a proxy-evaluation report."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.proxy import ProxyEvaluationReport


def select_top_models(report: ProxyEvaluationReport, pool_size: int,
                      exclude: Optional[Sequence[str]] = None,
                      diversity_families: bool = False) -> List[str]:
    """Return the names of the ``pool_size`` best candidates.

    ``exclude`` removes candidates (e.g. the feature-only MLP baseline when a
    dataset has informative structure).  When ``diversity_families`` is set,
    at most one candidate per aggregator family is picked before filling the
    remaining slots by raw score — a pragmatic variant the winning solution
    uses to avoid an all-GCN pool on easy datasets.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be at least 1")
    excluded = {name.lower() for name in (exclude or [])}
    ranked = [name for name in report.ranking() if name.lower() not in excluded]
    if not ranked:
        raise ValueError("no candidates left after exclusion")
    if not diversity_families:
        return ranked[:pool_size]

    from repro.nn.model_zoo import get_model_spec

    chosen: List[str] = []
    seen_families = set()
    for name in ranked:
        family = get_model_spec(name).family
        if family in seen_families:
            continue
        chosen.append(name)
        seen_families.add(family)
        if len(chosen) == pool_size:
            return chosen
    for name in ranked:
        if name not in chosen:
            chosen.append(name)
            if len(chosen) == pool_size:
                break
    return chosen[:pool_size]
