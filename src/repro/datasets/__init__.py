"""Dataset generators and loaders.

The original evaluation uses five anonymised KDD Cup datasets, the Planetoid
citation graphs, ogbn-arxiv and PROTEINS, none of which can be downloaded in
an offline environment.  Each of them is replaced by a *synthetic analogue*
generated from a degree-corrected stochastic block model with
class-correlated node features, sized and parameterised to match the regime
of the original dataset (see DESIGN.md for the substitution rationale).

Use :func:`load_dataset` / :data:`DATASETS` for name-based access, or the
individual ``make_*`` functions for full control over the generator
parameters.
"""

from repro.datasets.generators import (
    SBMConfig,
    make_attributed_sbm,
    make_feature_free_graph,
    make_large_sbm,
    structural_features,
)
from repro.datasets.kddcup import (
    KDDCUP_DATASET_NAMES,
    kddcup_dataset_statistics,
    make_kddcup_dataset,
)
from repro.datasets.citation import make_citation_dataset, CITATION_DATASET_NAMES
from repro.datasets.arxiv import make_arxiv_dataset
from repro.datasets.proteins import make_proteins_dataset, GraphClassificationDataset
from repro.datasets.io import load_autograph_directory, save_autograph_directory
from repro.datasets.registry import (
    DATASETS,
    available_datasets,
    load_dataset,
    register_dataset,
)

__all__ = [
    "SBMConfig",
    "make_attributed_sbm",
    "make_feature_free_graph",
    "make_large_sbm",
    "structural_features",
    "make_kddcup_dataset",
    "kddcup_dataset_statistics",
    "KDDCUP_DATASET_NAMES",
    "make_citation_dataset",
    "CITATION_DATASET_NAMES",
    "make_arxiv_dataset",
    "make_proteins_dataset",
    "GraphClassificationDataset",
    "load_autograph_directory",
    "save_autograph_directory",
    "DATASETS",
    "available_datasets",
    "load_dataset",
    "register_dataset",
]
