"""Synthetic analogue of ogbn-arxiv used by the scalability study (Tables V & VI).

ogbn-arxiv has 169,343 nodes and 1.17M edges; its role in the paper is to show
that AutoHEnsGNN scales to a graph one to two orders of magnitude larger than
the other benchmarks, and to measure runtime / memory (Table VI).  The
analogue keeps that role: it is generated ~5-10x larger than the citation
analogues, with more classes (40 in the original), a directed citation-like
structure and a chronological-style train/val/test split (the public OGB
split is by publication year; here the split is a deterministic partition of
node ids which plays the same role of a fixed, non-random split).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import SBMConfig, make_attributed_sbm
from repro.graph.graph import Graph


def make_arxiv_dataset(scale: float = 1.0, seed: int = 0) -> Graph:
    """Generate the ogbn-arxiv analogue.

    With ``scale=1`` the graph has ~6000 nodes and ~40k directed edges —
    large enough to dominate every other dataset in this repository (which is
    what the scalability experiments need) while still tractable on a CPU.
    """
    num_nodes = max(int(6000 * scale), 400)
    config = SBMConfig(
        num_nodes=num_nodes,
        num_classes=20,
        num_features=64,
        average_degree=7.0,
        homophily=0.66,
        feature_informativeness=0.25,
        feature_noise=1.2,
        degree_heterogeneity=0.5,
        directed=True,
        seed=seed,
        name="arxiv",
    )
    graph = make_attributed_sbm(config)

    # Fixed 54/18/28 train/val/test partition, mirroring the proportions of the
    # official by-year OGB split.
    rng = np.random.default_rng(seed + 7)
    order = rng.permutation(num_nodes)
    n_train = int(0.54 * num_nodes)
    n_val = int(0.18 * num_nodes)
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train:n_train + n_val]] = True
    test_mask[order[n_train + n_val:]] = True
    graph = graph.with_masks(train_mask, val_mask, test_mask)
    graph.metadata["paper_statistics"] = {"nodes": 169343, "edges": 1166243, "classes": 40}
    graph.metadata["split_protocol"] = "ogb-fixed"
    return graph
