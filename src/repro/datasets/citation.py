"""Synthetic analogues of the Planetoid citation benchmarks (Cora, Citeseer, Pubmed).

The public citation graphs cannot be downloaded offline, so each is replaced
by an attributed SBM whose size ordering, class count, sparsity and feature
informativeness mirror the original, and which is frozen with the standard
fixed split protocol (20 training nodes per class, 500 validation, 1000 test)
used throughout Section IV-C of the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.generators import SBMConfig, make_attributed_sbm
from repro.graph.graph import Graph
from repro.graph.splits import planetoid_split

CITATION_DATASET_NAMES: List[str] = ["cora", "citeseer", "pubmed"]

#: Original dataset statistics, kept for documentation and Table reporting.
PAPER_STATISTICS: Dict[str, Dict[str, object]] = {
    "cora": {"nodes": 2708, "edges": 5429, "classes": 7, "features": 1433},
    "citeseer": {"nodes": 3327, "edges": 4732, "classes": 6, "features": 3703},
    "pubmed": {"nodes": 19717, "edges": 44338, "classes": 3, "features": 500},
}

_ANALOGUE_CONFIGS: Dict[str, Dict[str, object]] = {
    "cora": dict(num_nodes=1000, num_classes=7, num_features=64, average_degree=4.0,
                 homophily=0.80, feature_informativeness=0.30, feature_noise=1.2,
                 degree_heterogeneity=0.15),
    "citeseer": dict(num_nodes=1100, num_classes=6, num_features=64, average_degree=2.8,
                     homophily=0.73, feature_informativeness=0.26, feature_noise=1.2,
                     degree_heterogeneity=0.15),
    "pubmed": dict(num_nodes=1500, num_classes=3, num_features=48, average_degree=4.5,
                   homophily=0.78, feature_informativeness=0.32, feature_noise=1.2,
                   degree_heterogeneity=0.3),
}


def make_citation_dataset(name: str, scale: float = 1.0, seed: int = 0,
                          train_per_class: int = 20, num_val: int = 300,
                          num_test: int = 500) -> Graph:
    """Generate the analogue of ``name`` ("cora", "citeseer" or "pubmed").

    The returned graph already carries the fixed planetoid-style masks.  The
    validation / test sizes default to a scaled-down version of the 500/1000
    protocol to fit the smaller synthetic graphs; the proportions are kept.
    """
    key = name.lower()
    if key not in _ANALOGUE_CONFIGS:
        raise KeyError(f"unknown citation dataset {name!r}; choose from {CITATION_DATASET_NAMES}")
    params = dict(_ANALOGUE_CONFIGS[key])
    params["num_nodes"] = max(int(params["num_nodes"] * scale), 20 * int(params["num_classes"]))
    config = SBMConfig(seed=seed, name=key, **params)
    graph = make_attributed_sbm(config)
    graph = planetoid_split(graph, train_per_class=train_per_class, num_val=num_val,
                            num_test=num_test, seed=seed)
    graph.metadata["paper_statistics"] = PAPER_STATISTICS[key]
    graph.metadata["split_protocol"] = "planetoid-fixed"
    return graph
