"""Synthetic attributed-graph generators.

The workhorse is :func:`make_attributed_sbm`, a degree-corrected stochastic
block model with class-correlated Gaussian node features.  Every synthetic
analogue in :mod:`repro.datasets` is a thin parameterisation of it:

* *homophily* controls how much more likely intra-class edges are than
  inter-class ones — high homophily favours neighbourhood-averaging models
  (GCN/SAGE), low homophily favours models that mix multi-hop information
  (TAGCN, MixHop, GCNII), which is exactly the model-diversity regime the
  paper's ensemble exploits;
* *feature_informativeness* controls how much of the label signal lives in
  the features versus the structure (dataset E of the challenge has no node
  features at all);
* *degree_heterogeneity* produces heavy-tailed degree sequences similar to
  the dense challenge datasets C and D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.graph import Graph


@dataclass
class SBMConfig:
    """Parameters of the attributed degree-corrected stochastic block model."""

    num_nodes: int = 1000
    num_classes: int = 5
    num_features: int = 32
    average_degree: float = 5.0
    homophily: float = 0.8
    feature_informativeness: float = 0.8
    feature_noise: float = 1.0
    degree_heterogeneity: float = 0.0
    directed: bool = False
    weighted_edges: bool = False
    class_imbalance: float = 0.0
    seed: int = 0
    name: str = "sbm"
    metadata: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range generator parameters."""
        if self.num_nodes < self.num_classes:
            raise ValueError("need at least one node per class")
        if not 0.0 <= self.homophily <= 1.0:
            raise ValueError("homophily must lie in [0, 1]")
        if self.average_degree <= 0:
            raise ValueError("average_degree must be positive")


def _class_assignment(config: SBMConfig, rng: np.random.Generator) -> np.ndarray:
    """Draw node labels, optionally with a geometric class-size imbalance."""
    if config.class_imbalance <= 0:
        proportions = np.full(config.num_classes, 1.0 / config.num_classes)
    else:
        raw = np.array([(1.0 + config.class_imbalance) ** -k for k in range(config.num_classes)])
        proportions = raw / raw.sum()
    labels = rng.choice(config.num_classes, size=config.num_nodes, p=proportions)
    # Guarantee every class has at least two members so stratified splits work.
    for cls in range(config.num_classes):
        if (labels == cls).sum() < 2:
            idx = rng.choice(config.num_nodes, size=2, replace=False)
            labels[idx] = cls
    return labels


def _sample_edges(config: SBMConfig, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample edges so that ``homophily`` is the fraction of intra-class edges.

    Rather than materialising the full ``n^2`` probability matrix, each edge
    first decides whether it is intra- or inter-class (Bernoulli with the
    homophily parameter) and then draws compatible endpoints, optionally
    degree-corrected by a Pareto propensity.  This scales comfortably to the
    dense challenge-dataset regime (tens of thousands of edges) and gives
    direct control over the edge homophily that GNN aggregators exploit.
    """
    n = config.num_nodes
    target_edges = int(config.average_degree * n / (1 if config.directed else 2))
    target_edges = max(target_edges, n)  # keep the graph reasonably connected

    if config.degree_heterogeneity > 0:
        propensity = rng.pareto(1.0 / max(config.degree_heterogeneity, 1e-6), size=n) + 1.0
    else:
        propensity = np.ones(n)
    propensity = propensity / propensity.sum()

    class_members = {}
    class_probs = {}
    for cls in np.unique(labels):
        members = np.where(labels == cls)[0]
        class_members[int(cls)] = members
        weights = propensity[members]
        class_probs[int(cls)] = weights / weights.sum()

    collected_keys = np.zeros(0, dtype=np.int64)
    batch = max(2 * target_edges, 1024)
    max_rounds = 60
    for _ in range(max_rounds):
        if collected_keys.size >= target_edges:
            break
        src = rng.choice(n, size=batch, p=propensity)
        intra = rng.random(batch) < config.homophily
        dst = rng.choice(n, size=batch, p=propensity)
        # Redraw destinations for intra-class edges from the source's class.
        for cls, members in class_members.items():
            mask = intra & (labels[src] == cls)
            count = int(mask.sum())
            if count:
                dst[mask] = rng.choice(members, size=count, p=class_probs[cls])
        # Inter-class edges must not accidentally be intra-class; drop self loops.
        valid = (intra | (labels[src] != labels[dst])) & (src != dst)
        src, dst = src[valid], dst[valid]
        if not config.directed:
            src, dst = np.minimum(src, dst), np.maximum(src, dst)
        keys = src.astype(np.int64) * n + dst.astype(np.int64)
        collected_keys = np.unique(np.concatenate([collected_keys, keys]))
    if collected_keys.size > target_edges:
        collected_keys = rng.choice(collected_keys, size=target_edges, replace=False)

    src = collected_keys // n
    dst = collected_keys % n

    # Attach any isolated node to a random same-class partner so the graph has
    # no degree-zero nodes (isolated nodes break mean-aggregation baselines).
    degree = np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
    isolated = np.where(degree == 0)[0]
    extra_src, extra_dst = [], []
    for node in isolated:
        members = class_members[int(labels[node])]
        if members.size < 2:
            members = np.arange(n)
        partner = int(rng.choice(members))
        if partner == node:
            partner = int((node + 1) % n)
        extra_src.append(node)
        extra_dst.append(partner)
    if extra_src:
        src = np.concatenate([src, np.asarray(extra_src, dtype=np.int64)])
        dst = np.concatenate([dst, np.asarray(extra_dst, dtype=np.int64)])

    edge_arr = np.vstack([src, dst]).astype(np.int64)
    if not config.directed:
        edge_arr = np.hstack([edge_arr, edge_arr[::-1]])
    return edge_arr


def _class_features(config: SBMConfig, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Gaussian features whose class means are separated by ``feature_informativeness``."""
    centers = rng.normal(0.0, 1.0, size=(config.num_classes, config.num_features))
    centers *= config.feature_informativeness
    noise = rng.normal(0.0, config.feature_noise, size=(config.num_nodes, config.num_features))
    return centers[labels] + noise


def make_attributed_sbm(config: Optional[SBMConfig] = None, **overrides) -> Graph:
    """Generate an attributed SBM graph according to ``config``.

    Keyword overrides are applied on top of the provided (or default) config,
    e.g. ``make_attributed_sbm(num_nodes=500, homophily=0.9)``.
    """
    if config is None:
        config = SBMConfig()
    if overrides:
        config = SBMConfig(**{**config.__dict__, **overrides})
    config.validate()
    rng = np.random.default_rng(config.seed)

    labels = _class_assignment(config, rng)
    edge_index = _sample_edges(config, labels, rng)
    features = _class_features(config, labels, rng)
    if config.weighted_edges:
        edge_weight = rng.integers(1, 5, size=edge_index.shape[1]).astype(np.float64)
    else:
        edge_weight = np.ones(edge_index.shape[1], dtype=np.float64)

    graph = Graph(
        edge_index=edge_index,
        features=features,
        labels=labels,
        edge_weight=edge_weight,
        directed=config.directed,
        num_classes=config.num_classes,
        name=config.name,
        metadata={
            "generator": "attributed_sbm",
            "has_node_features": True,
            "has_edge_features": config.weighted_edges,
            **config.metadata,
        },
    )
    return graph


def make_large_sbm(num_nodes: int = 200_000, num_classes: int = 8,
                   num_features: int = 32, average_degree: float = 8.0,
                   homophily: float = 0.7, feature_informativeness: float = 0.9,
                   feature_noise: float = 1.0, seed: int = 0,
                   name: str = "sbm-large") -> Graph:
    """Generate a large attributed SBM graph quickly (default 200k nodes).

    The workhorse :func:`make_attributed_sbm` supports degree correction and
    class imbalance but pays for them with propensity-weighted sampling; at
    hundreds of thousands of nodes that dominates generation time.  This
    generator keeps the same statistical shape that matters for GNN
    benchmarking — Bernoulli-homophily edges and class-separated Gaussian
    features — using only flat vectorised draws, so a 200k-node /
    ~800k-edge graph generates in a few seconds.  It is the dataset behind
    the ``"sbm-large"`` registry entry and the minibatch scaling benchmark.

    Parameters
    ----------
    num_nodes, num_classes, num_features : int
        Graph dimensions.
    average_degree : float
        Target mean degree (undirected).
    homophily : float
        Fraction of edges whose endpoints share a class.
    feature_informativeness, feature_noise : float
        Class-centre separation and Gaussian noise scale of the features.
    seed : int
        Determinism: the same seed always yields the same graph.
    name : str
        ``Graph.name`` of the result.

    Returns
    -------
    Graph
        Undirected attributed graph with every node labelled.
    """
    if num_nodes < 2 * num_classes:
        raise ValueError("need at least two nodes per class")
    if not 0.0 <= homophily <= 1.0:
        raise ValueError("homophily must lie in [0, 1]")
    rng = np.random.default_rng(seed)

    labels = rng.integers(0, num_classes, size=num_nodes)
    # Guard degenerate classes on tiny graphs by moving one node at a time
    # from the currently largest class; unlike a blind reassignment this
    # cannot re-break a class it already fixed.
    counts = np.bincount(labels, minlength=num_classes)
    while counts.min() < 2:
        needy = int(counts.argmin())
        donor = int(counts.argmax())
        labels[np.where(labels == donor)[0][0]] = needy
        counts[donor] -= 1
        counts[needy] += 1
    class_members = [np.where(labels == cls)[0] for cls in range(num_classes)]

    # Oversample candidate edges in one flat pass, then unique them.
    target_edges = max(int(average_degree * num_nodes / 2), num_nodes)
    draw = int(target_edges * 1.35) + 1024
    src = rng.integers(0, num_nodes, size=draw)
    dst = rng.integers(0, num_nodes, size=draw)
    intra = rng.random(draw) < homophily
    for cls in range(num_classes):
        members = class_members[cls]
        mask = intra & (labels[src] == cls)
        count = int(mask.sum())
        if count:
            dst[mask] = members[rng.integers(0, members.size, size=count)]
    valid = (intra | (labels[src] != labels[dst])) & (src != dst)
    src, dst = src[valid], dst[valid]
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keys = np.unique(lo.astype(np.int64) * num_nodes + hi.astype(np.int64))
    if keys.size > target_edges:
        keys = rng.choice(keys, size=target_edges, replace=False)
        keys.sort()
    src = keys // num_nodes
    dst = keys % num_nodes

    # Attach isolated nodes to a random partner so no node is degree zero.
    degree = np.bincount(src, minlength=num_nodes) + np.bincount(dst, minlength=num_nodes)
    isolated = np.where(degree == 0)[0]
    if isolated.size:
        partners = rng.integers(0, num_nodes, size=isolated.size)
        partners = np.where(partners == isolated, (partners + 1) % num_nodes, partners)
        # Dedupe through the same undirected key space as the main edge
        # pass: two isolated nodes picking each other would otherwise
        # produce a duplicate pair that build_adjacency sums into a
        # weight-2 edge in an otherwise unit-weight graph.  (Isolated
        # nodes have no existing edges, so collisions with the main pass
        # are impossible.)
        lo = np.minimum(isolated, partners).astype(np.int64)
        hi = np.maximum(isolated, partners).astype(np.int64)
        extra_keys = np.unique(lo * num_nodes + hi)
        src = np.concatenate([src, extra_keys // num_nodes])
        dst = np.concatenate([dst, extra_keys % num_nodes])

    edge_index = np.vstack([src, dst]).astype(np.int64)
    edge_index = np.hstack([edge_index, edge_index[::-1]])

    centers = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    centers *= feature_informativeness
    features = centers[labels] + rng.normal(0.0, feature_noise,
                                            size=(num_nodes, num_features))

    return Graph(
        edge_index=edge_index,
        features=features,
        labels=labels,
        directed=False,
        num_classes=num_classes,
        name=name,
        metadata={
            "generator": "large_sbm",
            "has_node_features": True,
            "has_edge_features": False,
        },
    )


def make_hetero_sbm(num_nodes: int = 400, num_classes: int = 4,
                    num_features: int = 16, num_relations: int = 4,
                    num_node_types: int = 2, average_degree: float = 6.0,
                    homophily: float = 0.8, feature_informativeness: float = 0.9,
                    feature_noise: float = 1.0, seed: int = 0,
                    name: str = "sbm-hetero"):
    """Generate a typed (heterogeneous) SBM with ``num_relations`` relations.

    Nodes are split evenly over ``num_node_types`` types laid out
    contiguously; relation ``r`` connects type ``r % T`` to type
    ``(r + 1) % T`` so consecutive relations chain the types together.
    Within each relation, edges follow the same Bernoulli-homophily scheme
    as :func:`make_large_sbm` (an intra-class edge with probability
    ``homophily``, flat vectorised draws), restricted to the relation's
    endpoint types.  Features are class-separated Gaussians with an
    additional per-type offset, so both the label signal and the node type
    are recoverable from the features.

    Returns a :class:`~repro.graph.hetero.HeteroGraph` built through
    :meth:`~repro.graph.hetero.HeteroGraph.from_typed`, so the generator
    exercises the same aggregated validation as user-constructed graphs.
    The single-relation, single-type parameterisation is the degenerate
    case used by the homogeneous-parity tests.
    """
    from repro.graph.hetero import HeteroGraph

    if num_nodes < 2 * num_classes:
        raise ValueError("need at least two nodes per class")
    if not 0.0 <= homophily <= 1.0:
        raise ValueError("homophily must lie in [0, 1]")
    if num_relations < 1 or num_node_types < 1:
        raise ValueError("need at least one relation and one node type")
    if num_node_types > num_relations + 1:
        raise ValueError(
            f"num_node_types={num_node_types} cannot all be reached by "
            f"{num_relations} chained relation(s); use num_node_types <= "
            f"num_relations + 1")
    rng = np.random.default_rng(seed)

    labels = rng.integers(0, num_classes, size=num_nodes)
    counts = np.bincount(labels, minlength=num_classes)
    while counts.min() < 2:
        needy = int(counts.argmin())
        donor = int(counts.argmax())
        labels[np.where(labels == donor)[0][0]] = needy
        counts[donor] -= 1
        counts[needy] += 1

    # Contiguous type layout: type t owns global ids [starts[t], starts[t+1]).
    type_names = tuple(f"type{t}" for t in range(num_node_types))
    sizes = np.full(num_node_types, num_nodes // num_node_types, dtype=np.int64)
    sizes[:num_nodes % num_node_types] += 1
    starts = np.concatenate([[0], np.cumsum(sizes)])
    node_type = np.repeat(np.arange(num_node_types), sizes)

    relations = tuple(
        (type_names[r % num_node_types], f"rel{r}",
         type_names[(r + 1) % num_node_types])
        for r in range(num_relations))

    edges = {}
    target_per_relation = max(int(average_degree * num_nodes
                                  / (2 * num_relations)), 16)
    for r, relation in enumerate(relations):
        src_type = r % num_node_types
        dst_type = (r + 1) % num_node_types
        src_size = int(sizes[src_type])
        dst_size = int(sizes[dst_type])
        dst_global = np.arange(starts[dst_type], starts[dst_type + 1])
        dst_class_members = [
            np.where(labels[dst_global] == cls)[0] for cls in range(num_classes)]
        draw = int(target_per_relation * 1.35) + 256
        src = rng.integers(0, src_size, size=draw)
        dst = rng.integers(0, dst_size, size=draw)
        intra = rng.random(draw) < homophily
        src_labels = labels[starts[src_type] + src]
        for cls in range(num_classes):
            members = dst_class_members[cls]
            mask = intra & (src_labels == cls)
            count = int(mask.sum())
            if count and members.size:
                dst[mask] = members[rng.integers(0, members.size, size=count)]
        if src_type == dst_type:
            # Same-type relations are undirected within the type: drop self
            # loops and canonicalise (lo, hi) so (a, b)/(b, a) dedupe to one
            # stored edge (symmetrisation happens in build_adjacency).
            valid = src != dst
            src, dst = src[valid], dst[valid]
            src, dst = np.minimum(src, dst), np.maximum(src, dst)
        keys = np.unique(src.astype(np.int64) * dst_size + dst.astype(np.int64))
        if keys.size > target_per_relation:
            keys = rng.choice(keys, size=target_per_relation, replace=False)
            keys.sort()
        edges[relation] = np.vstack([keys // dst_size, keys % dst_size])

    # Attach isolated nodes through a relation touching their type so the
    # union graph has no degree-zero nodes.
    degree = np.zeros(num_nodes, dtype=np.int64)
    for r, relation in enumerate(relations):
        src_type = r % num_node_types
        dst_type = (r + 1) % num_node_types
        local_src, local_dst = edges[relation]
        degree += np.bincount(starts[src_type] + local_src, minlength=num_nodes)
        degree += np.bincount(starts[dst_type] + local_dst, minlength=num_nodes)
    for node in np.where(degree == 0)[0]:
        t = int(node_type[node])
        for r, relation in enumerate(relations):
            src_type = r % num_node_types
            dst_type = (r + 1) % num_node_types
            if src_type != t and dst_type != t:
                continue
            local = int(node - starts[src_type if src_type == t else dst_type])
            other_size = int(sizes[dst_type if src_type == t else src_type])
            partner = int(rng.integers(0, other_size))
            if src_type == dst_type and partner == local:
                partner = (partner + 1) % other_size
            column = [[local], [partner]] if src_type == t else [[partner], [local]]
            edges[relation] = np.hstack([edges[relation],
                                         np.asarray(column, dtype=np.int64)])
            break

    class_centers = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    class_centers *= feature_informativeness
    type_centers = rng.normal(0.0, 0.5, size=(num_node_types, num_features))
    noise = rng.normal(0.0, feature_noise, size=(num_nodes, num_features))
    feature_table = class_centers[labels] + type_centers[node_type] + noise
    features = {type_names[t]: feature_table[starts[t]:starts[t + 1]]
                for t in range(num_node_types)}
    label_blocks = {type_names[t]: labels[starts[t]:starts[t + 1]]
                    for t in range(num_node_types)}

    graph = HeteroGraph.from_typed(
        features, edges, labels=label_blocks, directed=False,
        num_classes=num_classes, name=name,
        metadata={
            "generator": "hetero_sbm",
            "has_node_features": True,
            "has_edge_features": False,
        })
    return graph


def structural_features(graph: Graph, dimension: int = 32, seed: int = 0) -> np.ndarray:
    """Structural node features for graphs without attributes (dataset E).

    The winning solution generates features from the graph structure when the
    dataset ships none.  We use degree statistics plus a sparse random
    projection of the adjacency rows — cheap, deterministic given the seed and
    strong enough for structure-only classification.
    """
    rng = np.random.default_rng(seed)
    adj = graph.adjacency(normalization="rw", self_loops=False)
    degree = np.asarray(adj.sum(axis=1)).reshape(-1, 1)
    in_degree = np.asarray(adj.sum(axis=0)).reshape(-1, 1)
    projection = rng.normal(0.0, 1.0 / np.sqrt(dimension), size=(graph.num_nodes, max(dimension - 4, 1)))
    projected = adj @ projection
    two_hop = adj @ projected
    features = np.hstack([
        degree,
        in_degree,
        np.log1p(degree),
        np.log1p(in_degree),
        projected,
    ])
    features = features[:, :dimension] if features.shape[1] > dimension else features
    overlap = min(features.shape[1], two_hop.shape[1])
    features[:, :overlap] = features[:, :overlap] + 0.1 * two_hop[:, :overlap]
    # Standardise columns for stable optimisation.
    mean = features.mean(axis=0, keepdims=True)
    std = features.std(axis=0, keepdims=True) + 1e-9
    return (features - mean) / std


def make_feature_free_graph(config: Optional[SBMConfig] = None, feature_dimension: int = 32,
                            **overrides) -> Graph:
    """An SBM graph whose original features are discarded and replaced by structural ones."""
    graph = make_attributed_sbm(config, **overrides)
    graph = graph.with_features(structural_features(graph, dimension=feature_dimension,
                                                    seed=overrides.get("seed", 0)))
    graph.metadata["has_node_features"] = False
    return graph
