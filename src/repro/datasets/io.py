"""Reader/writer for the AutoGraph challenge on-disk dataset format.

Table X of the paper documents the format: a dataset directory contains

* ``train_node_id.txt`` / ``test_node_id.txt`` — one integer node index per line,
* ``edge.tsv`` — ``src  dst  weight`` rows,
* ``feature.tsv`` — ``node_index  f0  f1 ...`` rows,
* ``train_label.tsv`` — ``node_index  class`` rows for the training nodes,
* ``config.yml`` — metadata with the time budget and the number of classes.

The competition runner (``repro.automl.runner``) consumes this format so the
repository can be pointed at a directory laid out exactly like the challenge
and produce predictions without human intervention.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.graph.graph import Graph

_TRAIN_NODE_FILE = "train_node_id.txt"
_TEST_NODE_FILE = "test_node_id.txt"
_EDGE_FILE = "edge.tsv"
_FEATURE_FILE = "feature.tsv"
_LABEL_FILE = "train_label.tsv"
_METADATA_FILE = "config.yml"


def write_predictions_tsv(path: str, nodes, predictions) -> None:
    """Write ``node_index<TAB>predicted_class`` rows, the challenge output format.

    The single writer behind ``CompetitionSubmission.write`` and the serving
    ``ServeResult.write``, so the two surfaces cannot drift apart.  Parent
    directories are created as needed.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for node, prediction in zip(nodes, predictions):
            handle.write(f"{int(node)}\t{int(prediction)}\n")


def save_autograph_directory(graph: Graph, directory: str,
                             time_budget: Optional[float] = None) -> None:
    """Write ``graph`` to ``directory`` in the AutoGraph challenge layout.

    Training nodes are those with a known label (``labels >= 0``); the rest
    are written as test nodes with their labels omitted.
    """
    os.makedirs(directory, exist_ok=True)
    labels = graph.labels
    train_nodes = np.where(labels >= 0)[0]
    test_nodes = np.where(labels < 0)[0]
    if test_nodes.size == 0 and graph.test_mask is not None:
        test_nodes = np.where(graph.test_mask)[0]
        train_nodes = np.setdiff1d(train_nodes, test_nodes)

    np.savetxt(os.path.join(directory, _TRAIN_NODE_FILE), train_nodes, fmt="%d")
    np.savetxt(os.path.join(directory, _TEST_NODE_FILE), test_nodes, fmt="%d")

    with open(os.path.join(directory, _EDGE_FILE), "w", encoding="utf-8") as handle:
        for (src, dst), weight in zip(graph.edge_index.T, graph.edge_weight):
            handle.write(f"{int(src)}\t{int(dst)}\t{float(weight)}\n")

    with open(os.path.join(directory, _FEATURE_FILE), "w", encoding="utf-8") as handle:
        for node in range(graph.num_nodes):
            values = "\t".join(f"{value:.8g}" for value in graph.features[node])
            handle.write(f"{node}\t{values}\n")

    with open(os.path.join(directory, _LABEL_FILE), "w", encoding="utf-8") as handle:
        for node in train_nodes:
            handle.write(f"{int(node)}\t{int(labels[node])}\n")

    budget = time_budget if time_budget is not None else graph.metadata.get("time_budget", 500.0)
    with open(os.path.join(directory, _METADATA_FILE), "w", encoding="utf-8") as handle:
        handle.write(f"time_budget: {float(budget)}\n")
        handle.write(f"n_class: {int(graph.num_classes)}\n")
        handle.write(f"directed: {bool(graph.directed)}\n")
        handle.write(f"name: {graph.name}\n")


def _read_metadata(path: str) -> Dict[str, object]:
    metadata: Dict[str, object] = {}
    if not os.path.exists(path):
        return metadata
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or ":" not in line:
                continue
            key, value = line.split(":", 1)
            value = value.strip()
            if value.lower() in {"true", "false"}:
                metadata[key.strip()] = value.lower() == "true"
            else:
                try:
                    number = float(value)
                    metadata[key.strip()] = int(number) if number.is_integer() else number
                except ValueError:
                    metadata[key.strip()] = value
    return metadata


def load_autograph_directory(directory: str) -> Graph:
    """Load a dataset directory written in the AutoGraph challenge layout."""
    train_nodes = np.loadtxt(os.path.join(directory, _TRAIN_NODE_FILE), dtype=np.int64, ndmin=1)
    test_nodes = np.loadtxt(os.path.join(directory, _TEST_NODE_FILE), dtype=np.int64, ndmin=1)

    edges, weights = [], []
    with open(os.path.join(directory, _EDGE_FILE), "r", encoding="utf-8") as handle:
        for line in handle:
            parts = line.strip().split("\t")
            if len(parts) < 2:
                continue
            src, dst = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) > 2 else 1.0
            edges.append((src, dst))
            weights.append(weight)
    edge_index = np.asarray(edges, dtype=np.int64).T if edges else np.zeros((2, 0), dtype=np.int64)
    edge_weight = np.asarray(weights, dtype=np.float64)

    feature_rows: Dict[int, np.ndarray] = {}
    with open(os.path.join(directory, _FEATURE_FILE), "r", encoding="utf-8") as handle:
        for line in handle:
            parts = line.strip().split("\t")
            if len(parts) < 2:
                continue
            feature_rows[int(parts[0])] = np.asarray([float(x) for x in parts[1:]])
    num_nodes = max(max(feature_rows) + 1,
                    int(train_nodes.max(initial=-1)) + 1,
                    int(test_nodes.max(initial=-1)) + 1,
                    int(edge_index.max(initial=-1)) + 1)
    num_features = len(next(iter(feature_rows.values()))) if feature_rows else 1
    features = np.zeros((num_nodes, num_features))
    for node, row in feature_rows.items():
        features[node] = row

    labels = np.full(num_nodes, -1, dtype=np.int64)
    with open(os.path.join(directory, _LABEL_FILE), "r", encoding="utf-8") as handle:
        for line in handle:
            parts = line.strip().split("\t")
            if len(parts) == 2:
                labels[int(parts[0])] = int(parts[1])

    metadata = _read_metadata(os.path.join(directory, _METADATA_FILE))
    num_classes = int(metadata.get("n_class", labels.max() + 1))
    test_mask = np.zeros(num_nodes, dtype=bool)
    test_mask[test_nodes] = True

    return Graph(
        edge_index=edge_index,
        features=features,
        labels=labels,
        edge_weight=edge_weight,
        directed=bool(metadata.get("directed", False)),
        num_classes=num_classes,
        test_mask=test_mask,
        name=str(metadata.get("name", os.path.basename(os.path.normpath(directory)))),
        metadata={"time_budget": float(metadata.get("time_budget", 500.0)),
                  "source_directory": directory},
    )
