"""Synthetic analogues of the five anonymised AutoGraph challenge datasets.

Table I of the paper describes datasets A–E only through aggregate statistics
(node/edge counts, classes, whether features and edge weights exist, whether
the graph is directed).  The real data is proprietary, so each dataset is
replaced by an attributed SBM whose *regime* matches those statistics:

========  =======================  ==========================================
Dataset   Paper statistics          Analogue regime
========  =======================  ==========================================
A         2,708 nodes, 5.3k edges,  small, sparse, homophilous, informative
          7 classes                 features (citation-like)
B         3,327 nodes, 4.6k edges,  small, very sparse, moderately informative
          6 classes                 features
C         10k nodes, 733k edges,    dense, many classes, structure carries a
          41 classes                large part of the signal
D         10k nodes, 5.8M edges,    very dense, directed, weighted edges
          20 classes, directed,
          edge weights
E         7.5k nodes, 7.8k edges,   sparse, *no node features* (structural
          3 classes, no features    features generated downstream)
========  =======================  ==========================================

Node and edge counts are scaled down by ``scale`` (default 0.4–0.1 depending
on density) so the complete benchmark harness runs on a CPU in minutes; the
paper statistics are kept in :data:`PAPER_STATISTICS` and printed next to the
generated statistics by ``benchmarks/bench_table1_datasets.py``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datasets.generators import SBMConfig, make_attributed_sbm, make_feature_free_graph
from repro.graph.graph import Graph
from repro.graph.splits import stratified_label_split

KDDCUP_DATASET_NAMES: List[str] = ["A", "B", "C", "D", "E"]

#: Statistics reported in Table I of the paper (training/test node counts,
#: edge counts, class counts and flags), kept for side-by-side reporting.
PAPER_STATISTICS: Dict[str, Dict[str, object]] = {
    "A": {"node_feat": True, "edge_feat": False, "directed": False,
          "nodes_train": 1088, "nodes_test": 1620, "edges": 5278, "classes": 7},
    "B": {"node_feat": True, "edge_feat": False, "directed": False,
          "nodes_train": 1334, "nodes_test": 1993, "edges": 4552, "classes": 6},
    "C": {"node_feat": True, "edge_feat": False, "directed": False,
          "nodes_train": 4026, "nodes_test": 5974, "edges": 733316, "classes": 41},
    "D": {"node_feat": True, "edge_feat": True, "directed": True,
          "nodes_train": 4009, "nodes_test": 5991, "edges": 5833962, "classes": 20},
    "E": {"node_feat": False, "edge_feat": False, "directed": False,
          "nodes_train": 3011, "nodes_test": 4510, "edges": 7804, "classes": 3},
}

#: Generator configurations for the analogues (node counts already scaled).
_ANALOGUE_CONFIGS: Dict[str, Dict[str, object]] = {
    "A": dict(num_nodes=1100, num_classes=7, num_features=48, average_degree=4.0,
              homophily=0.82, feature_informativeness=0.32, feature_noise=1.2,
              degree_heterogeneity=0.1),
    "B": dict(num_nodes=1300, num_classes=6, num_features=48, average_degree=3.0,
              homophily=0.73, feature_informativeness=0.26, feature_noise=1.3,
              degree_heterogeneity=0.1),
    "C": dict(num_nodes=1600, num_classes=20, num_features=32, average_degree=30.0,
              homophily=0.68, feature_informativeness=0.22, feature_noise=1.2,
              degree_heterogeneity=0.6),
    "D": dict(num_nodes=1600, num_classes=10, num_features=32, average_degree=40.0,
              homophily=0.72, feature_informativeness=0.3, feature_noise=1.2,
              degree_heterogeneity=0.8, directed=True, weighted_edges=True),
    "E": dict(num_nodes=1200, num_classes=3, num_features=32, average_degree=3.5,
              homophily=0.88, feature_informativeness=0.0, degree_heterogeneity=0.2),
}

#: Fraction of labelled nodes, matching the ~40/60 train/test split of Table I.
_TRAIN_FRACTION = 0.4


def make_kddcup_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Generate the synthetic analogue of challenge dataset ``name`` ("A".."E").

    ``scale`` multiplies the number of nodes (useful to shrink the graphs even
    further in unit tests).  The returned graph carries a ``test_mask`` over
    the "unlabelled" nodes whose labels are hidden (set to ``-1``) exactly
    like the challenge format, while the true labels are preserved in
    ``graph.metadata["hidden_labels"]`` for evaluation.
    """
    name = name.upper()
    if name not in _ANALOGUE_CONFIGS:
        raise KeyError(f"unknown KDD Cup dataset {name!r}; choose from {KDDCUP_DATASET_NAMES}")
    params = dict(_ANALOGUE_CONFIGS[name])
    params["num_nodes"] = max(int(params["num_nodes"] * scale), 10 * int(params["num_classes"]))
    config = SBMConfig(seed=seed, name=f"kddcup-{name}", **params)

    if name == "E":
        graph = make_feature_free_graph(config, feature_dimension=int(params["num_features"]))
    else:
        graph = make_attributed_sbm(config)

    rng = np.random.default_rng(seed + 1000)
    train_nodes, test_nodes = stratified_label_split(graph.labels, 1.0 - _TRAIN_FRACTION, rng)
    hidden_labels = graph.labels.copy()
    graph.labels = graph.labels.copy()
    graph.labels[test_nodes] = -1
    test_mask = np.zeros(graph.num_nodes, dtype=bool)
    test_mask[test_nodes] = True
    graph.test_mask = test_mask
    graph.metadata.update({
        "hidden_labels": hidden_labels,
        "paper_statistics": PAPER_STATISTICS[name],
        "time_budget": _time_budget(name),
    })
    return graph


def _time_budget(name: str) -> float:
    """Per-dataset time budgets (seconds) in the spirit of the challenge metadata."""
    budgets = {"A": 100.0, "B": 100.0, "C": 200.0, "D": 200.0, "E": 100.0}
    return budgets[name]


def kddcup_dataset_statistics(scale: float = 1.0, seed: int = 0) -> List[Dict[str, object]]:
    """Generated-vs-paper statistics for every dataset (Table I reproduction)."""
    rows = []
    for name in KDDCUP_DATASET_NAMES:
        graph = make_kddcup_dataset(name, scale=scale, seed=seed)
        generated = graph.summary()
        rows.append({
            "dataset": name,
            "paper": PAPER_STATISTICS[name],
            "generated": generated,
        })
    return rows
