"""Synthetic analogue of the PROTEINS graph-classification benchmark (Table IX).

PROTEINS contains 1,113 small graphs labelled with a binary class; the label
is strongly correlated with global structural properties (size, density,
secondary-structure composition).  The analogue generates two families of
small random graphs whose structural statistics differ (community-rich,
denser "enzyme-like" graphs vs. chain-like sparser graphs) plus per-node
features derived from degree — so graph-level models with expressive readouts
(GIN-style) outperform plain mean-pooling models, matching the qualitative
ordering in Table IX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph


@dataclass
class GraphClassificationDataset:
    """A list of small graphs with one label per graph plus split indices."""

    graphs: List[Graph]
    labels: np.ndarray
    train_index: np.ndarray
    val_index: np.ndarray
    test_index: np.ndarray
    name: str = "proteins"
    num_classes: int = 2

    def __len__(self) -> int:
        return len(self.graphs)

    def subset(self, index: Sequence[int]) -> Tuple[List[Graph], np.ndarray]:
        index = np.asarray(index, dtype=np.int64)
        return [self.graphs[i] for i in index], self.labels[index]


def _make_small_graph(rng: np.random.Generator, label: int, num_features: int) -> Graph:
    """One small graph; the two classes differ in size, density and clustering."""
    if label == 0:
        num_nodes = int(rng.integers(10, 25))
        p_edge = 0.35
        num_hubs = 0
    else:
        num_nodes = int(rng.integers(20, 45))
        p_edge = 0.15
        num_hubs = int(rng.integers(1, 4))

    edges = set()
    # Ring backbone keeps every graph connected.
    for i in range(num_nodes):
        edges.add((i, (i + 1) % num_nodes))
    # Random extra edges with class-dependent density.
    n_extra = int(p_edge * num_nodes * (num_nodes - 1) / 4)
    for _ in range(n_extra):
        a, b = rng.integers(0, num_nodes, size=2)
        if a != b:
            edges.add((min(int(a), int(b)), max(int(a), int(b))))
    # Hub nodes for class 1 graphs to create heavy-tailed degrees.
    for _ in range(num_hubs):
        hub = int(rng.integers(0, num_nodes))
        for other in rng.choice(num_nodes, size=min(8, num_nodes - 1), replace=False):
            if other != hub:
                edges.add((min(hub, int(other)), max(hub, int(other))))

    edge_arr = np.asarray(sorted(edges), dtype=np.int64).T
    edge_arr = np.hstack([edge_arr, edge_arr[::-1]])
    degree = np.bincount(edge_arr[1], minlength=num_nodes).astype(np.float64)
    features = np.zeros((num_nodes, num_features))
    features[:, 0] = degree
    features[:, 1] = np.log1p(degree)
    features[:, 2] = degree / degree.max()
    if num_features > 3:
        features[:, 3:] = rng.normal(0, 0.5, size=(num_nodes, num_features - 3))
    return Graph(
        edge_index=edge_arr,
        features=features,
        labels=np.full(num_nodes, -1, dtype=np.int64),
        directed=False,
        num_classes=0,
        name=f"protein-{label}",
    )


def make_proteins_dataset(num_graphs: int = 200, num_features: int = 8, seed: int = 0,
                          train_fraction: float = 0.7, val_fraction: float = 0.15
                          ) -> GraphClassificationDataset:
    """Generate the PROTEINS analogue with a fixed stratified split."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=num_graphs)
    # Keep classes roughly balanced, as in the original dataset (59/41).
    graphs = [_make_small_graph(rng, int(label), num_features) for label in labels]

    index = rng.permutation(num_graphs)
    n_train = int(train_fraction * num_graphs)
    n_val = int(val_fraction * num_graphs)
    return GraphClassificationDataset(
        graphs=graphs,
        labels=np.asarray(labels, dtype=np.int64),
        train_index=np.sort(index[:n_train]),
        val_index=np.sort(index[n_train:n_train + n_val]),
        test_index=np.sort(index[n_train + n_val:]),
        name="proteins",
        num_classes=2,
    )
