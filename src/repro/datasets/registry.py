"""Name-based dataset registry.

``load_dataset("kddcup-A")`` or ``load_dataset("cora")`` return ready-to-use
graphs; new datasets (e.g. loaded from an AutoGraph directory) can be added
with :func:`register_dataset` so the benchmark harness can iterate over them
uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.arxiv import make_arxiv_dataset
from repro.datasets.citation import CITATION_DATASET_NAMES, make_citation_dataset
from repro.datasets.kddcup import KDDCUP_DATASET_NAMES, make_kddcup_dataset
from repro.graph.graph import Graph

DatasetFactory = Callable[..., Graph]

DATASETS: Dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (raises on duplicates unless ``overwrite``)."""
    key = name.lower()
    if key in DATASETS and not overwrite:
        raise KeyError(f"dataset {name!r} is already registered")
    DATASETS[key] = factory


def load_dataset(name: str, **kwargs) -> Graph:
    """Instantiate a registered dataset by name (case insensitive)."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key](**kwargs)


def _register_builtin() -> None:
    for dataset_name in KDDCUP_DATASET_NAMES:
        register_dataset(
            f"kddcup-{dataset_name}",
            lambda name=dataset_name, **kwargs: make_kddcup_dataset(name, **kwargs),
            overwrite=True,
        )
    for dataset_name in CITATION_DATASET_NAMES:
        register_dataset(
            dataset_name,
            lambda name=dataset_name, **kwargs: make_citation_dataset(name, **kwargs),
            overwrite=True,
        )
    register_dataset("arxiv", make_arxiv_dataset, overwrite=True)


_register_builtin()
