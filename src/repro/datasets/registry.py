"""Name-based dataset registry.

``load_dataset("kddcup-A")`` or ``load_dataset("cora")`` return ready-to-use
graphs; new datasets (e.g. loaded from an AutoGraph directory) can be added
with :func:`register_dataset` so the benchmark harness can iterate over them
uniformly.  An unknown name raises a ``KeyError`` that lists every
registered dataset (with a did-you-mean suggestion), so typos fail with an
actionable message instead of a bare lookup error.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List

from repro.datasets.arxiv import make_arxiv_dataset
from repro.datasets.citation import CITATION_DATASET_NAMES, make_citation_dataset
from repro.datasets.generators import make_hetero_sbm, make_large_sbm
from repro.datasets.kddcup import KDDCUP_DATASET_NAMES, make_kddcup_dataset
from repro.graph.graph import Graph

DatasetFactory = Callable[..., Graph]

DATASETS: Dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (raises on duplicates unless ``overwrite``)."""
    key = name.lower()
    if key in DATASETS and not overwrite:
        raise KeyError(f"dataset {name!r} is already registered")
    DATASETS[key] = factory


def available_datasets() -> List[str]:
    """Sorted names of every registered dataset."""
    return sorted(DATASETS)


def load_dataset(name: str, **kwargs) -> Graph:
    """Instantiate a registered dataset by name (case insensitive).

    Parameters
    ----------
    name : str
        Registered dataset name, e.g. ``"kddcup-A"``, ``"cora"`` or
        ``"sbm-large"``.
    **kwargs
        Forwarded to the dataset factory (e.g. ``scale=`` for the KDD Cup
        analogues, ``num_nodes=`` for ``"sbm-large"``).

    Raises
    ------
    KeyError
        If ``name`` is not registered.  The message lists every available
        dataset and, when the name is close to a registered one, suggests
        the likely intended spelling.
    """
    key = name.lower()
    if key not in DATASETS:
        close = difflib.get_close_matches(key, DATASETS, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise KeyError(
            f"unknown dataset {name!r}{hint}; available: {available_datasets()}")
    return DATASETS[key](**kwargs)


def _register_builtin() -> None:
    for dataset_name in KDDCUP_DATASET_NAMES:
        register_dataset(
            f"kddcup-{dataset_name}",
            lambda name=dataset_name, **kwargs: make_kddcup_dataset(name, **kwargs),
            overwrite=True,
        )
    for dataset_name in CITATION_DATASET_NAMES:
        register_dataset(
            dataset_name,
            lambda name=dataset_name, **kwargs: make_citation_dataset(name, **kwargs),
            overwrite=True,
        )
    register_dataset("arxiv", make_arxiv_dataset, overwrite=True)
    # Large-graph regime for the minibatch engine (200k nodes by default;
    # pass num_nodes=... to scale).
    register_dataset("sbm-large", make_large_sbm, overwrite=True)
    # Typed multi-relation regime for the heterogeneous models (RGCN/RGAT);
    # pass num_relations=/num_node_types= to scale the relation count.
    register_dataset("sbm-hetero", make_hetero_sbm, overwrite=True)


_register_builtin()
