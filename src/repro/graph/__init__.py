"""Graph data structures and graph-level utilities.

This package is the substrate underneath every GNN in the repository:

* :class:`~repro.graph.graph.Graph` — an attributed graph with features,
  labels and train/val/test masks (the unit every model consumes).
* :mod:`~repro.graph.normalize` — adjacency construction and normalisation
  (symmetric / random-walk, optional self-loops, edge weights).
* :mod:`~repro.graph.splits` — train/validation splitting utilities, including
  the fixed "planetoid" protocol and the random re-splits used for bagging.
* :mod:`~repro.graph.sampling` — sub-graph sampling for the proxy dataset,
  fanout-bounded neighbour sampling for minibatch training
  (:class:`~repro.graph.sampling.NeighborSampler`) and negative-edge
  sampling for link prediction.
* :mod:`~repro.graph.batching` — block-diagonal batching of many small graphs
  for graph classification, and the :class:`~repro.graph.batching.SubgraphBatch`
  carrier for neighbour-sampled minibatches.
* :mod:`~repro.graph.partition` — deterministic seeded edge-cut partitioning
  with exact k-hop halo rings (:func:`~repro.graph.partition.partition_graph`),
  the substrate for sharded scoring and per-partition minibatch locality.
* :mod:`~repro.graph.shm` — shared-memory graph publication
  (:class:`~repro.graph.shm.SharedGraphStore`): process-backend workers map
  the CSR operators and feature blocks read-only instead of unpickling them.
"""

from repro.graph.graph import Graph
from repro.graph.normalize import (
    add_self_loops,
    build_adjacency,
    normalized_adjacency,
    to_undirected,
)
from repro.graph.sampling import (
    NeighborSampler,
    negative_edge_sampling,
    sample_proxy_subgraph,
)
from repro.graph.splits import (
    planetoid_split,
    random_split,
    repeated_random_splits,
    stratified_label_split,
)
from repro.graph.batching import GraphBatch, SubgraphBatch, collate_graphs
from repro.graph.partition import (
    Partition,
    PartitionedGraph,
    partition_graph,
)
from repro.graph.shm import (
    SharedGraphHandle,
    SharedGraphStore,
    resolve_graph,
    resolve_graph_data,
    shared_store_paths,
)

__all__ = [
    "Graph",
    "NeighborSampler",
    "SubgraphBatch",
    "build_adjacency",
    "normalized_adjacency",
    "add_self_loops",
    "to_undirected",
    "sample_proxy_subgraph",
    "negative_edge_sampling",
    "random_split",
    "planetoid_split",
    "repeated_random_splits",
    "stratified_label_split",
    "GraphBatch",
    "collate_graphs",
    "Partition",
    "PartitionedGraph",
    "partition_graph",
    "SharedGraphHandle",
    "SharedGraphStore",
    "resolve_graph",
    "resolve_graph_data",
    "shared_store_paths",
]
