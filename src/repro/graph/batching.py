"""Batching many small graphs into one block-diagonal graph.

Graph classification (Table IX, PROTEINS) trains on datasets of small graphs.
Following standard practice, a batch of graphs is merged into a single large
graph whose adjacency matrix is block diagonal; a ``graph_id`` vector then
lets readout layers pool node representations back into per-graph vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph import normalize as _norm


@dataclass
class GraphBatch:
    """A collection of graphs merged into one block-diagonal graph."""

    features: np.ndarray
    edge_index: np.ndarray
    edge_weight: np.ndarray
    graph_id: np.ndarray
    graph_labels: np.ndarray
    num_graphs: int
    directed: bool = False

    @property
    def num_nodes(self) -> int:
        return int(self.features.shape[0])

    def adjacency(self, normalization: str = "sym", self_loops: bool = True) -> sp.csr_matrix:
        adj = _norm.build_adjacency(
            self.edge_index, self.num_nodes, edge_weight=self.edge_weight,
            make_undirected=not self.directed,
        )
        return _norm.normalized_adjacency(adj, normalization=normalization, self_loops=self_loops)


def collate_graphs(graphs: Sequence[Graph], labels: Sequence[int]) -> GraphBatch:
    """Merge ``graphs`` into a single :class:`GraphBatch` with per-graph labels."""
    if len(graphs) != len(labels):
        raise ValueError("graphs and labels must have the same length")
    features: List[np.ndarray] = []
    edges: List[np.ndarray] = []
    weights: List[np.ndarray] = []
    graph_id: List[np.ndarray] = []
    offset = 0
    for i, graph in enumerate(graphs):
        features.append(graph.features)
        edges.append(graph.edge_index + offset)
        weights.append(graph.edge_weight)
        graph_id.append(np.full(graph.num_nodes, i, dtype=np.int64))
        offset += graph.num_nodes
    return GraphBatch(
        features=np.vstack(features),
        edge_index=np.hstack(edges) if edges else np.zeros((2, 0), dtype=np.int64),
        edge_weight=np.concatenate(weights) if weights else np.zeros(0),
        graph_id=np.concatenate(graph_id),
        graph_labels=np.asarray(list(labels), dtype=np.int64),
        num_graphs=len(graphs),
        directed=any(g.directed for g in graphs),
    )
