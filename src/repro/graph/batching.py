"""Batch carriers: block-diagonal graph batches and sampled sub-graph batches.

Two batching regimes share this module:

* **Graph classification** (Table IX, PROTEINS) trains on datasets of small
  graphs.  Following standard practice, :func:`collate_graphs` merges a batch
  of graphs into a single large graph whose adjacency matrix is block
  diagonal (:class:`GraphBatch`); a ``graph_id`` vector then lets readout
  layers pool node representations back into per-graph vectors.
* **Minibatch node classification** on large graphs trains on sampled
  neighbourhood sub-graphs.  :class:`SubgraphBatch` carries one such batch —
  the sampled global node ids (seeds first), the induced edge list remapped
  to local ids, and the global↔local translation — and turns itself into the
  same :class:`~repro.nn.data.GraphTensors` view the model zoo already
  consumes, so every architecture trains on batches unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph import normalize as _norm


@dataclass
class GraphBatch:
    """A collection of graphs merged into one block-diagonal graph."""

    features: np.ndarray
    edge_index: np.ndarray
    edge_weight: np.ndarray
    graph_id: np.ndarray
    graph_labels: np.ndarray
    num_graphs: int
    directed: bool = False

    @property
    def num_nodes(self) -> int:
        """Total nodes across every graph in the batch."""
        return int(self.features.shape[0])

    def adjacency(self, normalization: str = "sym", self_loops: bool = True) -> sp.csr_matrix:
        """The (normalised) block-diagonal adjacency of the whole batch."""
        adj = _norm.build_adjacency(
            self.edge_index, self.num_nodes, edge_weight=self.edge_weight,
            make_undirected=not self.directed,
        )
        return _norm.normalized_adjacency(adj, normalization=normalization, self_loops=self_loops)


@dataclass
class SubgraphBatch:
    """One sampled neighbourhood sub-graph produced by a ``NeighborSampler``.

    The batch's *local* node ids are positions into :attr:`nodes`: the first
    :attr:`num_seeds` local ids are the seed nodes (the nodes a training
    step computes its loss on), followed by each sampled hop ring.  A model
    forward on :meth:`tensors` therefore scores the seeds at rows
    ``0..num_seeds-1`` of its output.

    Attributes
    ----------
    nodes : ndarray
        Global node ids of every sampled node, seeds first.
    num_seeds : int
        How many leading entries of ``nodes`` are seed nodes.
    edge_index : ndarray
        Induced edges among the sampled nodes, shape ``(2, E)``, in *local*
        ids.
    edge_weight : ndarray
        One weight per induced edge.
    layer_sizes : tuple of int
        Nodes contributed by the seed set and each hop ring (diagnostics;
        sums to ``len(nodes)``).
    """

    nodes: np.ndarray
    num_seeds: int
    edge_index: np.ndarray
    edge_weight: np.ndarray
    layer_sizes: Tuple[int, ...] = ()
    #: Lazy (sorted_nodes, argsort_order) pair backing ``to_local``.
    _lookup: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        """Total sampled nodes (seeds plus every hop ring)."""
        return int(self.nodes.shape[0])

    @property
    def num_edges(self) -> int:
        """Induced edges among the sampled nodes."""
        return int(self.edge_index.shape[1])

    @property
    def seed_nodes(self) -> np.ndarray:
        """Global ids of the seed nodes (local ids ``0..num_seeds-1``)."""
        return self.nodes[:self.num_seeds]

    # ------------------------------------------------------------------
    # Global <-> local id translation
    # ------------------------------------------------------------------
    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Map global node ids to this batch's local ids.

        Raises ``KeyError`` if any id was not sampled into the batch —
        silent ``-1`` placeholders would propagate into fancy indexing as
        wrap-around bugs.
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if self._lookup is None:
            order = np.argsort(self.nodes, kind="stable")
            self._lookup = (self.nodes[order], order)
        sorted_nodes, order = self._lookup
        pos = np.searchsorted(sorted_nodes, global_ids)
        pos = np.minimum(pos, sorted_nodes.shape[0] - 1)
        if not np.all(sorted_nodes[pos] == global_ids):
            missing = global_ids[sorted_nodes[pos] != global_ids]
            raise KeyError(f"nodes {missing[:5].tolist()} are not in this batch")
        return order[pos]

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map this batch's local node ids back to global ids."""
        return self.nodes[np.asarray(local_ids, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Model-facing view
    # ------------------------------------------------------------------
    def tensors(self, features: np.ndarray) -> "object":
        """Build the :class:`~repro.nn.data.GraphTensors` view of this batch.

        Parameters
        ----------
        features : ndarray
            The **full graph's** node-feature matrix; the batch slices out
            its sampled rows.  Accepts a raw ndarray or an autograd
            ``Tensor``.

        Returns
        -------
        GraphTensors
            A view whose normalised operators are built directly (not
            through the process-wide cache — every sampled batch is unique,
            so caching would only churn the LRU).
        """
        from repro.nn.data import GraphTensors

        return GraphTensors.from_subgraph(self, features)


def collate_graphs(graphs: Sequence[Graph], labels: Sequence[int]) -> GraphBatch:
    """Merge ``graphs`` into a single :class:`GraphBatch` with per-graph labels."""
    if len(graphs) != len(labels):
        raise ValueError("graphs and labels must have the same length")
    features: List[np.ndarray] = []
    edges: List[np.ndarray] = []
    weights: List[np.ndarray] = []
    graph_id: List[np.ndarray] = []
    offset = 0
    for i, graph in enumerate(graphs):
        features.append(graph.features)
        edges.append(graph.edge_index + offset)
        weights.append(graph.edge_weight)
        graph_id.append(np.full(graph.num_nodes, i, dtype=np.int64))
        offset += graph.num_nodes
    return GraphBatch(
        features=np.vstack(features),
        edge_index=np.hstack(edges) if edges else np.zeros((2, 0), dtype=np.int64),
        edge_weight=np.concatenate(weights) if weights else np.zeros(0),
        graph_id=np.concatenate(graph_id),
        graph_labels=np.asarray(list(labels), dtype=np.int64),
        num_graphs=len(graphs),
        directed=any(g.directed for g in graphs),
    )
