"""The :class:`Graph` container used by every model and experiment.

A ``Graph`` stores the node features, an edge list (with optional weights),
integer node labels (``-1`` for unlabeled nodes) and boolean train / val /
test masks.  It deliberately mirrors the information content of the AutoGraph
challenge format (Table X of the paper): node indices, weighted directed
edges, a dense feature table, labels for the training nodes only and the
number of classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.dtype import compute_dtype
from repro.graph import normalize as _norm


@dataclass
class Graph:
    """An attributed graph for node-level tasks.

    Parameters
    ----------
    edge_index:
        Integer array of shape ``(2, num_edges)`` with source and destination
        node indices.
    features:
        Float array of shape ``(num_nodes, num_features)``.  Datasets without
        node features (e.g. dataset E of the challenge) use structural
        features generated downstream; the array is never ``None``.
    labels:
        Integer array of shape ``(num_nodes,)`` with ``-1`` marking nodes whose
        label is unknown (the test part of the challenge datasets).
    edge_weight:
        Optional float array of shape ``(num_edges,)``; defaults to all ones.
    directed:
        Whether the edge list should be interpreted as directed.  Undirected
        graphs are stored with both edge directions present.
    """

    edge_index: np.ndarray
    features: np.ndarray
    labels: np.ndarray
    edge_weight: Optional[np.ndarray] = None
    directed: bool = False
    num_classes: Optional[int] = None
    train_mask: Optional[np.ndarray] = None
    val_mask: Optional[np.ndarray] = None
    test_mask: Optional[np.ndarray] = None
    name: str = "graph"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        # Datasets materialise their feature tables directly in the
        # process-wide compute dtype so a float32 run never holds a float64
        # copy of every feature matrix.
        self.features = np.asarray(self.features, dtype=compute_dtype())
        if self.features.ndim != 2:
            raise ValueError("features must have shape (num_nodes, num_features)")
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.labels.shape[0] != self.features.shape[0]:
            raise ValueError("labels and features must agree on the number of nodes")
        if self.edge_weight is None:
            self.edge_weight = np.ones(self.edge_index.shape[1], dtype=np.float64)
        else:
            self.edge_weight = np.asarray(self.edge_weight, dtype=np.float64)
            if self.edge_weight.shape[0] != self.edge_index.shape[1]:
                raise ValueError("edge_weight must have one entry per edge")
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise ValueError("edge_index references a node id beyond num_nodes")
        if self.num_classes is None:
            known = self.labels[self.labels >= 0]
            self.num_classes = int(known.max()) + 1 if known.size else 0
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape[0] != self.num_nodes:
                    raise ValueError(f"{mask_name} must have one entry per node")
                setattr(self, mask_name, mask)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def average_degree(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def degrees(self) -> np.ndarray:
        """Out-degree + in-degree per node (undirected graphs count each edge once per direction stored)."""
        deg = np.bincount(self.edge_index[1], minlength=self.num_nodes).astype(np.float64)
        return deg

    def labeled_nodes(self) -> np.ndarray:
        return np.where(self.labels >= 0)[0]

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def with_masks(self, train_mask: np.ndarray, val_mask: np.ndarray,
                   test_mask: Optional[np.ndarray] = None) -> "Graph":
        """Return a shallow copy with new train/val/test masks."""
        return replace(
            self,
            train_mask=np.asarray(train_mask, dtype=bool),
            val_mask=np.asarray(val_mask, dtype=bool),
            test_mask=self.test_mask if test_mask is None else np.asarray(test_mask, dtype=bool),
        )

    def mask_indices(self, which: str) -> np.ndarray:
        mask = getattr(self, f"{which}_mask")
        if mask is None:
            raise ValueError(f"graph {self.name!r} has no {which} mask")
        return np.where(mask)[0]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def adjacency(self, normalization: str = "sym", self_loops: bool = True,
                  make_undirected: Optional[bool] = None) -> sp.csr_matrix:
        """Return a (normalised) sparse adjacency matrix.

        ``normalization`` is one of ``"sym"`` (D^-1/2 A D^-1/2), ``"rw"``
        (D^-1 A) or ``"none"``.
        """
        if make_undirected is None:
            make_undirected = not self.directed
        adj = _norm.build_adjacency(
            self.edge_index, self.num_nodes, edge_weight=self.edge_weight,
            make_undirected=make_undirected,
        )
        return _norm.normalized_adjacency(adj, normalization=normalization, self_loops=self_loops)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray, name: Optional[str] = None) -> "Graph":
        """Induced sub-graph over ``nodes`` (node ids are re-indexed)."""
        nodes = np.asarray(sorted(set(int(n) for n in np.asarray(nodes))), dtype=np.int64)
        lookup = -np.ones(self.num_nodes, dtype=np.int64)
        lookup[nodes] = np.arange(nodes.shape[0])
        src, dst = self.edge_index
        keep = (lookup[src] >= 0) & (lookup[dst] >= 0)
        new_edges = np.vstack([lookup[src[keep]], lookup[dst[keep]]])
        sub = Graph(
            edge_index=new_edges,
            features=self.features[nodes],
            labels=self.labels[nodes],
            edge_weight=self.edge_weight[keep],
            directed=self.directed,
            num_classes=self.num_classes,
            train_mask=None if self.train_mask is None else self.train_mask[nodes],
            val_mask=None if self.val_mask is None else self.val_mask[nodes],
            test_mask=None if self.test_mask is None else self.test_mask[nodes],
            name=name or f"{self.name}-sub",
            metadata=dict(self.metadata, parent_nodes=nodes),
        )
        return sub

    def copy(self) -> "Graph":
        return Graph(
            edge_index=self.edge_index.copy(),
            features=self.features.copy(),
            labels=self.labels.copy(),
            edge_weight=self.edge_weight.copy(),
            directed=self.directed,
            num_classes=self.num_classes,
            train_mask=None if self.train_mask is None else self.train_mask.copy(),
            val_mask=None if self.val_mask is None else self.val_mask.copy(),
            test_mask=None if self.test_mask is None else self.test_mask.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of the graph with a replacement feature matrix."""
        graph = self.copy()
        graph.features = np.asarray(features, dtype=compute_dtype())
        if graph.features.shape[0] != graph.labels.shape[0]:
            raise ValueError("replacement features must keep the number of nodes")
        return graph

    # ------------------------------------------------------------------
    # Interop / summaries
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a ``networkx`` graph (used by generators and tests)."""
        import networkx as nx

        graph_cls = nx.DiGraph if self.directed else nx.Graph
        g = graph_cls()
        g.add_nodes_from(range(self.num_nodes))
        src, dst = self.edge_index
        g.add_weighted_edges_from(zip(src.tolist(), dst.tolist(), self.edge_weight.tolist()))
        return g

    def summary(self) -> Dict[str, object]:
        """Statistics in the format of Table I of the paper."""
        n_train = int(self.train_mask.sum()) if self.train_mask is not None else len(self.labeled_nodes())
        n_test = int(self.test_mask.sum()) if self.test_mask is not None else int((self.labels < 0).sum())
        has_edge_feat = bool(self.metadata.get("has_edge_features", not np.allclose(self.edge_weight, 1.0)))
        return {
            "name": self.name,
            "node_feat": bool(self.metadata.get("has_node_features", True)),
            "edge_feat": has_edge_feat,
            "directed": self.directed,
            "nodes_train": n_train,
            "nodes_test": n_test,
            "edges": self.num_edges,
            "classes": self.num_classes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"features={self.num_features}, classes={self.num_classes}, directed={self.directed})"
        )
