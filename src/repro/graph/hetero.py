"""Heterogeneous (typed) graphs and their relation-blocked tensor views.

A :class:`HeteroGraph` extends :class:`~repro.graph.graph.Graph` with a
node-type table, an edge-type table and a list of canonical relations
``(source type, relation name, destination type)``.  The node ids stay
global — the union of all typed nodes — so every homogeneous consumer
(splits, subgraph sampling, the ensemble pipeline, serving) works on a
heterogeneous graph unchanged; the typed tables ride along through
``dataclasses.replace``-based transformations.

:class:`HeteroGraphTensors` is the matching compute view: on top of the
union operators of :class:`~repro.nn.data.GraphTensors` it stores **one raw
CSR adjacency block per canonical relation**.  Normalised per-relation
operators and edge-parallel :class:`~repro.autograd.kernels.RelationBlock`
views are derived lazily through the process-wide
:class:`~repro.parallel.cache.ComputeCache`, keyed by each block's content
fingerprint — so replicas, bagging splits and process workers share one
normalisation per relation, and streaming invalidation hooks apply to
relation blocks exactly as they do to the union operators.

A single-relation ``HeteroGraph`` is the degenerate case that anchors
correctness: its one relation block has the same content fingerprint as the
union adjacency, so the cache hands back the *same* frozen CSR the
homogeneous path uses and RGCN/RGAT reproduce GCN/GAT bit-for-bit.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.kernels import RelationBlock
from repro.autograd.sparse import SparseTensor
from repro.graph import normalize as _norm
from repro.graph.graph import Graph
from repro.nn.data import GraphTensors
from repro.parallel.cache import compute_cache, csr_fingerprint

#: A canonical relation: (source node type, relation name, destination type).
Relation = Tuple[str, str, str]


def _format_relation(relation: Sequence[str]) -> str:
    """Render a relation triple as the compact ``src:name:dst`` form."""
    return ":".join(relation)


def _suggest(name: str, known: Sequence[str]) -> str:
    """A did-you-mean suffix for an unknown type/relation name."""
    matches = difflib.get_close_matches(name, list(known), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


@dataclass
class HeteroGraph(Graph):
    """An attributed graph with typed nodes and typed (relational) edges.

    On top of the :class:`~repro.graph.graph.Graph` fields:

    node_type:
        Integer array of shape ``(num_nodes,)`` indexing into
        ``node_type_names``.  Defaults to all zeros (one type).
    edge_type:
        Integer array of shape ``(num_edges,)`` indexing into ``relations``.
        Defaults to all zeros (one relation).
    node_type_names:
        The declared node types, in id order.
    relations:
        The canonical relations as ``(src_type, name, dst_type)`` triples,
        in edge-type id order.

    Construction validates the typed tables the same way
    ``AutoHEnsGNNConfig.validate`` treats configuration problems: every
    issue — unknown relation endpoint types, out-of-range type ids,
    edges whose endpoints contradict their relation's declared types — is
    collected and reported in one aggregated ``ValueError``.
    """

    node_type: Optional[np.ndarray] = None
    edge_type: Optional[np.ndarray] = None
    node_type_names: Tuple[str, ...] = ("node",)
    relations: Tuple[Relation, ...] = (("node", "edge", "node"),)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_type is None:
            self.node_type = np.zeros(self.num_nodes, dtype=np.int64)
        else:
            self.node_type = np.asarray(self.node_type, dtype=np.int64)
        if self.edge_type is None:
            self.edge_type = np.zeros(self.num_edges, dtype=np.int64)
        else:
            self.edge_type = np.asarray(self.edge_type, dtype=np.int64)
        self.node_type_names = tuple(self.node_type_names)
        self.relations = tuple(tuple(relation) for relation in self.relations)
        problems = self._validate()
        if problems:
            details = "\n  - ".join(problems)
            raise ValueError(f"invalid HeteroGraph:\n  - {details}")

    def _validate(self) -> list:
        """Collect every typed-table problem (aggregated, never fail-first)."""
        problems = []
        if self.node_type.shape != (self.num_nodes,):
            problems.append(
                f"node_type has shape {self.node_type.shape}, expected "
                f"({self.num_nodes},)")
        if self.edge_type.shape != (self.num_edges,):
            problems.append(
                f"edge_type has shape {self.edge_type.shape}, expected "
                f"({self.num_edges},)")
        if not self.node_type_names:
            problems.append("node_type_names must declare at least one type")
        if not self.relations:
            problems.append("relations must declare at least one relation")
        for relation in self.relations:
            if len(relation) != 3:
                problems.append(
                    f"relation {relation!r} must be a (src, name, dst) triple")
                continue
            for endpoint in (relation[0], relation[2]):
                if endpoint not in self.node_type_names:
                    problems.append(
                        f"relation {_format_relation(relation)!r} references "
                        f"unknown node type {endpoint!r}"
                        f"{_suggest(endpoint, self.node_type_names)}; known "
                        f"types: {sorted(self.node_type_names)}")
        if problems:
            return problems
        if self.node_type.size and (self.node_type.min() < 0
                                    or self.node_type.max() >= len(self.node_type_names)):
            problems.append(
                f"node_type ids must lie in [0, {len(self.node_type_names)}) "
                f"for the declared types {self.node_type_names}")
        if self.edge_type.size and (self.edge_type.min() < 0
                                    or self.edge_type.max() >= len(self.relations)):
            problems.append(
                f"edge_type ids must lie in [0, {len(self.relations)}) for "
                f"the declared relations")
        if problems:
            return problems
        type_index = {name: i for i, name in enumerate(self.node_type_names)}
        expected_src = np.array([type_index[r[0]] for r in self.relations])
        expected_dst = np.array([type_index[r[2]] for r in self.relations])
        src, dst = self.edge_index
        bad_src = self.node_type[src] != expected_src[self.edge_type]
        bad_dst = self.node_type[dst] != expected_dst[self.edge_type]
        for relation_id, relation in enumerate(self.relations):
            bad = ((bad_src | bad_dst) & (self.edge_type == relation_id)).sum()
            if bad:
                problems.append(
                    f"{int(bad)} edge(s) of relation "
                    f"{_format_relation(relation)!r} connect nodes whose "
                    f"types contradict the relation's declared endpoints")
        return problems

    # ------------------------------------------------------------------
    # Typed constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_typed(cls, features: Dict[str, np.ndarray],
                   edges: Dict[Relation, np.ndarray],
                   labels: Union[None, np.ndarray, Dict[str, np.ndarray]] = None,
                   directed: bool = False,
                   num_classes: Optional[int] = None,
                   name: str = "hetero",
                   metadata: Optional[Dict] = None) -> "HeteroGraph":
        """Build a heterogeneous graph from per-type tables.

        Parameters
        ----------
        features:
            ``{node_type_name: (count, width) feature table}``; the insertion
            order defines both the type ids and the global node id layout
            (types are laid out contiguously, in order).  All types must
            share one feature width.
        edges:
            ``{(src_type, relation_name, dst_type): (2, E_r) edge list}``
            with node ids **local to each endpoint's type**.
        labels:
            Either a global ``(num_nodes,)`` array, a ``{type: (count,)}``
            dict for the labelled types, or ``None`` (all ``-1``).

        All construction problems (unknown endpoint types with a
        did-you-mean hint, missing node-type features, inconsistent widths,
        malformed or out-of-range edge lists) are aggregated into a single
        ``ValueError``.
        """
        problems = []
        if not features:
            problems.append("features must declare at least one node type")
        type_names = tuple(features.keys())
        widths = {name_: np.asarray(table).shape[1]
                  for name_, table in features.items()
                  if np.asarray(table).ndim == 2}
        for name_, table in features.items():
            if np.asarray(table).ndim != 2:
                problems.append(
                    f"features[{name_!r}] must be a 2-D (count, width) table")
        if len(set(widths.values())) > 1:
            problems.append(
                f"all node types must share one feature width, got {widths}")
        counts = {name_: int(np.asarray(table).shape[0])
                  for name_, table in features.items()}
        for relation, edge_list in edges.items():
            if len(relation) != 3:
                problems.append(
                    f"relation key {relation!r} must be a (src, name, dst) triple")
                continue
            src_type, _, dst_type = relation
            for endpoint in (src_type, dst_type):
                if endpoint not in counts:
                    problems.append(
                        f"relation {_format_relation(relation)!r} references "
                        f"node type {endpoint!r} with no feature table"
                        f"{_suggest(endpoint, type_names)}; declared types: "
                        f"{sorted(type_names)}")
            edge_list = np.asarray(edge_list)
            if edge_list.ndim != 2 or edge_list.shape[0] != 2:
                problems.append(
                    f"edges[{_format_relation(relation)!r}] must have shape "
                    f"(2, num_edges)")
                continue
            if src_type in counts and edge_list.size \
                    and edge_list[0].max(initial=-1) >= counts[src_type]:
                problems.append(
                    f"edges[{_format_relation(relation)!r}] reference source "
                    f"ids beyond the {counts[src_type]} nodes of type "
                    f"{src_type!r}")
            if dst_type in counts and edge_list.size \
                    and edge_list[1].max(initial=-1) >= counts[dst_type]:
                problems.append(
                    f"edges[{_format_relation(relation)!r}] reference "
                    f"destination ids beyond the {counts[dst_type]} nodes of "
                    f"type {dst_type!r}")
        if isinstance(labels, dict):
            for name_ in labels:
                if name_ not in counts:
                    problems.append(
                        f"labels reference unknown node type {name_!r}"
                        f"{_suggest(name_, type_names)}")
        if problems:
            details = "\n  - ".join(problems)
            raise ValueError(f"invalid HeteroGraph:\n  - {details}")

        offsets = {}
        total = 0
        for name_ in type_names:
            offsets[name_] = total
            total += counts[name_]
        feature_table = np.vstack([np.asarray(features[name_])
                                   for name_ in type_names])
        node_type = np.concatenate([
            np.full(counts[name_], i, dtype=np.int64)
            for i, name_ in enumerate(type_names)]) if type_names else \
            np.zeros(0, dtype=np.int64)

        relation_list = tuple(tuple(r) for r in edges.keys())
        edge_blocks = []
        edge_types = []
        for relation_id, (relation, edge_list) in enumerate(edges.items()):
            src_type, _, dst_type = relation
            edge_list = np.asarray(edge_list, dtype=np.int64)
            edge_blocks.append(np.vstack([
                edge_list[0] + offsets[src_type],
                edge_list[1] + offsets[dst_type]]))
            edge_types.append(np.full(edge_list.shape[1], relation_id,
                                      dtype=np.int64))
        edge_index = np.hstack(edge_blocks) if edge_blocks else \
            np.zeros((2, 0), dtype=np.int64)
        edge_type = np.concatenate(edge_types) if edge_types else \
            np.zeros(0, dtype=np.int64)

        if labels is None:
            label_table = -np.ones(total, dtype=np.int64)
        elif isinstance(labels, dict):
            label_table = -np.ones(total, dtype=np.int64)
            for name_, values in labels.items():
                start = offsets[name_]
                label_table[start:start + counts[name_]] = np.asarray(values)
        else:
            label_table = np.asarray(labels, dtype=np.int64)

        return cls(
            edge_index=edge_index, features=feature_table, labels=label_table,
            directed=directed, num_classes=num_classes, name=name,
            metadata=metadata or {}, node_type=node_type, edge_type=edge_type,
            node_type_names=type_names, relations=relation_list)

    @classmethod
    def from_homogeneous(cls, graph: Graph,
                         relation: Relation = ("node", "edge", "node")) -> "HeteroGraph":
        """Wrap a homogeneous graph as a single-relation heterogeneous one.

        The degenerate-case constructor used by the parity tests: all nodes
        get the relation's source type and every edge the single relation,
        with features/labels/masks/metadata shared (not copied).
        """
        return cls(
            edge_index=graph.edge_index, features=graph.features,
            labels=graph.labels, edge_weight=graph.edge_weight,
            directed=graph.directed, num_classes=graph.num_classes,
            train_mask=graph.train_mask, val_mask=graph.val_mask,
            test_mask=graph.test_mask, name=graph.name,
            metadata=dict(graph.metadata),
            node_type_names=(relation[0],), relations=(tuple(relation),))

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------
    @property
    def num_node_types(self) -> int:
        """Number of declared node types."""
        return len(self.node_type_names)

    @property
    def num_relations(self) -> int:
        """Number of canonical ``(src_type, name, dst_type)`` relations."""
        return len(self.relations)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """The canonical relations as compact ``src:name:dst`` strings."""
        return tuple(_format_relation(r) for r in self.relations)

    def nodes_of_type(self, type_name: str) -> np.ndarray:
        """Global node ids of one declared node type."""
        if type_name not in self.node_type_names:
            raise KeyError(
                f"unknown node type {type_name!r}"
                f"{_suggest(type_name, self.node_type_names)}; known types: "
                f"{sorted(self.node_type_names)}")
        return np.where(self.node_type == self.node_type_names.index(type_name))[0]

    def relation_edges(self, relation_id: int) -> np.ndarray:
        """The ``(2, E_r)`` slice of the edge list belonging to one relation."""
        return self.edge_index[:, self.edge_type == relation_id]

    # ------------------------------------------------------------------
    # Subclass-preserving transformations
    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray, name: Optional[str] = None) -> "HeteroGraph":
        """Induced typed sub-graph (node/edge type tables are re-indexed)."""
        nodes = np.asarray(sorted(set(int(n) for n in np.asarray(nodes))), dtype=np.int64)
        lookup = -np.ones(self.num_nodes, dtype=np.int64)
        lookup[nodes] = np.arange(nodes.shape[0])
        src, dst = self.edge_index
        keep = (lookup[src] >= 0) & (lookup[dst] >= 0)
        return HeteroGraph(
            edge_index=np.vstack([lookup[src[keep]], lookup[dst[keep]]]),
            features=self.features[nodes],
            labels=self.labels[nodes],
            edge_weight=self.edge_weight[keep],
            directed=self.directed,
            num_classes=self.num_classes,
            train_mask=None if self.train_mask is None else self.train_mask[nodes],
            val_mask=None if self.val_mask is None else self.val_mask[nodes],
            test_mask=None if self.test_mask is None else self.test_mask[nodes],
            name=name or f"{self.name}-sub",
            metadata=dict(self.metadata, parent_nodes=nodes),
            node_type=self.node_type[nodes],
            edge_type=self.edge_type[keep],
            node_type_names=self.node_type_names,
            relations=self.relations,
        )

    def copy(self) -> "HeteroGraph":
        """Deep copy preserving the typed tables."""
        base = super().copy()
        return HeteroGraph(
            edge_index=base.edge_index, features=base.features,
            labels=base.labels, edge_weight=base.edge_weight,
            directed=base.directed, num_classes=base.num_classes,
            train_mask=base.train_mask, val_mask=base.val_mask,
            test_mask=base.test_mask, name=base.name, metadata=base.metadata,
            node_type=self.node_type.copy(), edge_type=self.edge_type.copy(),
            node_type_names=self.node_type_names, relations=self.relations)


@dataclass
class HeteroGraphTensors(GraphTensors):
    """Relation-blocked compute view of a :class:`HeteroGraph`.

    The union fields (features, sym/rw/raw operators, attention edge list)
    are built exactly like the homogeneous view, so every homogeneous model
    runs on a heterogeneous graph unchanged.  On top of those this view
    stores one **raw CSR adjacency block per canonical relation**
    (``relation_adjacency``); normalised per-relation operators and
    :class:`~repro.autograd.kernels.RelationBlock` views are derived lazily
    via the process-wide ComputeCache under each block's content
    fingerprint.
    """

    relations: Tuple[Relation, ...] = ()
    node_type: Optional[np.ndarray] = None
    relation_adjacency: Tuple[sp.csr_matrix, ...] = ()

    @classmethod
    def from_hetero(cls, graph: HeteroGraph) -> "HeteroGraphTensors":
        """Build the union operators plus one raw CSR block per relation."""
        adj = _norm.build_adjacency(graph.edge_index, graph.num_nodes,
                                    edge_weight=graph.edge_weight,
                                    make_undirected=not graph.directed)
        tensors = cls._from_adjacency(adj, graph.features, graph.edge_index,
                                      graph.edge_weight)
        blocks = []
        for relation_id in range(graph.num_relations):
            mask = graph.edge_type == relation_id
            block = _norm.build_adjacency(
                graph.edge_index[:, mask], graph.num_nodes,
                edge_weight=np.asarray(graph.edge_weight)[mask],
                make_undirected=not graph.directed)
            block.data.setflags(write=False)
            blocks.append(block)
        tensors.relations = tuple(graph.relations)
        tensors.node_type = graph.node_type
        tensors.relation_adjacency = tuple(blocks)
        return tensors

    # ------------------------------------------------------------------
    # Relation-blocked accessors (the homogeneous base class exposes the
    # same interface with a single implicit relation)
    # ------------------------------------------------------------------
    @property
    def num_relations(self) -> int:
        """Number of per-relation adjacency blocks carried by this view."""
        return len(self.relations)

    def _relation_fingerprint(self, relation_id: int) -> str:
        key = f"relation_fp:{relation_id}"
        if key not in self.extras:
            self.extras[key] = csr_fingerprint(self.relation_adjacency[relation_id])
        return self.extras[key]  # type: ignore[return-value]

    def relation_operator(self, relation_id: int, kind: str) -> SparseTensor:
        """The normalised propagation operator of one relation block.

        ``kind`` follows :meth:`GraphTensors.propagation`: ``"sym"`` and
        ``"rw"`` are normalised with self loops, ``"raw"`` is the plain
        weighted block.  Memoised per view and in the process-wide cache
        under the block's content fingerprint — a single-relation graph
        therefore shares the exact frozen CSR of the union operators.
        """
        key = f"relation_operator:{relation_id}:{kind}"
        if key not in self.extras:
            normalization = "none" if kind == "raw" else kind
            operator = compute_cache().normalized_adjacency(
                self.relation_adjacency[relation_id],
                normalization=normalization,
                self_loops=kind != "raw",
                fingerprint=self._relation_fingerprint(relation_id),
                dtype=self.features.data.dtype)
            self.extras[key] = SparseTensor(operator)
        return self.extras[key]  # type: ignore[return-value]

    def relation_block(self, relation_id: int) -> RelationBlock:
        """Edge-parallel view (self-looped, symmetrised structure) of a relation.

        Built with the exact recipe of the homogeneous attention edge list
        (``add_self_loops(adj).tocoo()`` in CSR row-major order), so the
        single-relation block is bit-compatible with
        ``GraphTensors.edge_index`` / ``edge_scatter``.
        """
        key = f"relation_block:{relation_id}"
        if key not in self.extras:
            structure = _norm.add_self_loops(self.relation_adjacency[relation_id])
            self.extras[key] = RelationBlock.from_structure(structure)
        return self.extras[key]  # type: ignore[return-value]

    def with_features(self, features) -> "HeteroGraphTensors":
        """Feature-substituted copy preserving the relation blocks."""
        tensors = HeteroGraphTensors(
            features=features,
            adj_sym=self.adj_sym, adj_rw=self.adj_rw, adj_raw=self.adj_raw,
            edge_index=self.edge_index, edge_weight=self.edge_weight,
            num_nodes=self.num_nodes, num_features=int(features.shape[1]),
            graph_id=self.graph_id, num_graphs=self.num_graphs,
            cache_derived=self.cache_derived,
            relations=self.relations, node_type=self.node_type,
            relation_adjacency=self.relation_adjacency)
        return tensors


__all__ = [
    "HeteroGraph",
    "HeteroGraphTensors",
    "RelationBlock",
    "Relation",
]
