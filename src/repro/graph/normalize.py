"""Adjacency construction and normalisation.

All GNN aggregators in the model zoo consume a pre-normalised sparse
propagation matrix.  The functions here build that matrix from an edge list,
optionally symmetrise it, add self-loops and apply the symmetric
(``D^-1/2 (A+I) D^-1/2``) or random-walk (``D^-1 (A+I)``) normalisation that
the respective original papers prescribe.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def build_adjacency(edge_index: np.ndarray, num_nodes: int,
                    edge_weight: Optional[np.ndarray] = None,
                    make_undirected: bool = True) -> sp.csr_matrix:
    """Build a CSR adjacency matrix from an edge list.

    Duplicate edges are summed; when ``make_undirected`` is set the matrix is
    symmetrised by taking the elementwise maximum of ``A`` and ``A^T`` so that
    symmetrising an already-undirected edge list is a no-op.
    """
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_weight is None:
        edge_weight = np.ones(edge_index.shape[1], dtype=np.float64)
    adj = sp.coo_matrix(
        (np.asarray(edge_weight, dtype=np.float64), (edge_index[0], edge_index[1])),
        shape=(num_nodes, num_nodes),
    ).tocsr()
    adj.sum_duplicates()
    if make_undirected:
        adj = adj.maximum(adj.T)
    return adj


def to_undirected(edge_index: np.ndarray, edge_weight: Optional[np.ndarray] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Return an edge list containing both directions of every edge exactly once."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_weight is None:
        edge_weight = np.ones(edge_index.shape[1], dtype=np.float64)
    src = np.concatenate([edge_index[0], edge_index[1]])
    dst = np.concatenate([edge_index[1], edge_index[0]])
    weight = np.concatenate([edge_weight, edge_weight])
    # Deduplicate (src, dst) pairs, keeping the maximum weight.
    order = np.lexsort((dst, src))
    src, dst, weight = src[order], dst[order], weight[order]
    keep = np.ones(src.shape[0], dtype=bool)
    keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    # For duplicates, propagate the max weight into the kept entry.
    result_src, result_dst, result_weight = [], [], []
    i = 0
    while i < src.shape[0]:
        j = i
        w = weight[i]
        while j + 1 < src.shape[0] and src[j + 1] == src[i] and dst[j + 1] == dst[i]:
            j += 1
            w = max(w, weight[j])
        result_src.append(src[i])
        result_dst.append(dst[i])
        result_weight.append(w)
        i = j + 1
    return (
        np.vstack([np.asarray(result_src, dtype=np.int64), np.asarray(result_dst, dtype=np.int64)]),
        np.asarray(result_weight, dtype=np.float64),
    )


def add_self_loops(adj: sp.csr_matrix, fill_value: float = 1.0) -> sp.csr_matrix:
    """Return ``A + fill_value * I`` with any existing diagonal replaced.

    Implemented as a vectorised COO rebuild: the ``tolil()``/``setdiag``
    route costs one Python list per row, which dominated sub-graph batch
    construction on large graphs.  The CSR conversion sorts indices per
    row, so the result is bit-identical to the historical implementation.
    """
    num_nodes = adj.shape[0]
    coo = adj.tocoo()
    off_diagonal = coo.row != coo.col
    if fill_value == 0.0:
        # Match tolil/setdiag(0): the zero diagonal is dropped, not stored
        # (explicit zeros would change nnz/structure and hence cache
        # fingerprints).
        data = coo.data[off_diagonal]
        rows = coo.row[off_diagonal]
        cols = coo.col[off_diagonal]
    else:
        diagonal = np.arange(num_nodes, dtype=coo.row.dtype)
        data = np.concatenate([coo.data[off_diagonal],
                               np.full(num_nodes, fill_value, dtype=coo.data.dtype)])
        rows = np.concatenate([coo.row[off_diagonal], diagonal])
        cols = np.concatenate([coo.col[off_diagonal], diagonal])
    matrix = sp.coo_matrix((data, (rows, cols)), shape=adj.shape).tocsr()
    matrix.sort_indices()
    return matrix


def normalized_adjacency(adj: sp.csr_matrix, normalization: str = "sym",
                         self_loops: bool = True) -> sp.csr_matrix:
    """Normalise an adjacency matrix.

    Parameters
    ----------
    normalization:
        ``"sym"`` for ``D^-1/2 A D^-1/2`` (GCN), ``"rw"`` for ``D^-1 A``
        (random walk / mean aggregation) or ``"none"`` to keep the raw matrix.
    self_loops:
        Whether to add self loops before normalising (the "renormalisation
        trick" of Kipf & Welling).
    """
    if normalization not in {"sym", "rw", "none"}:
        raise ValueError(f"unknown normalization {normalization!r}")
    if self_loops:
        adj = add_self_loops(adj)
    if normalization == "none":
        return adj.tocsr()
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    degree = np.maximum(degree, 1e-12)
    if normalization == "sym":
        inv_sqrt = sp.diags(1.0 / np.sqrt(degree))
        return (inv_sqrt @ adj @ inv_sqrt).tocsr()
    inv = sp.diags(1.0 / degree)
    return (inv @ adj).tocsr()


def laplacian(adj: sp.csr_matrix, normalized: bool = True) -> sp.csr_matrix:
    """Graph Laplacian ``L = I - A_norm`` (or ``D - A`` when unnormalised)."""
    n = adj.shape[0]
    if normalized:
        norm = normalized_adjacency(adj, normalization="sym", self_loops=False)
        return (sp.identity(n, format="csr") - norm).tocsr()
    degree = sp.diags(np.asarray(adj.sum(axis=1)).reshape(-1))
    return (degree - adj).tocsr()


def scaled_laplacian(adj: sp.csr_matrix) -> sp.csr_matrix:
    """Chebyshev-scaled Laplacian ``2L/lambda_max - I`` with ``lambda_max ~= 2``."""
    n = adj.shape[0]
    lap = laplacian(adj, normalized=True)
    return (lap - sp.identity(n, format="csr")).tocsr()
