"""Deterministic edge-cut graph partitioning with halo nodes.

ROADMAP item 4 (production scale) needs graphs larger than one worker's
working set.  This module splits a graph's node set into ``P`` disjoint
*owned* blocks plus per-partition *halo rings* — the nodes within ``k`` hops
of the owned block that k-hop propagation needs read access to — so scoring
and training can run per partition while staying **bit-identical** to the
serial computation:

* Partitioning is an *edge-cut by row ownership*: every node (and therefore
  every CSR row / outgoing edge) belongs to exactly one partition, so the
  per-partition row blocks tile the global CSR exactly
  (:meth:`PartitionedGraph.reconstruct_csr` rebuilds it byte-for-byte).
* Halo ring ``h`` holds exactly the nodes at BFS distance ``h`` from the
  owned set.  To evaluate a ``k``-hop model exactly at the owned nodes, a
  partition needs ``k`` rings: nodes at distance ``< k`` have their full
  neighbourhood inside the local view, so every intermediate propagation is
  exact where it is later consumed; values computed on the outermost ring
  are never read.
* Local node ids order the global ids **ascending**, so slicing rows and
  columns of a globally-normalised operator preserves the entry order of
  every kept row — SciPy's CSR matvec then accumulates the same summands in
  the same order as the global product, which is what makes sharded scoring
  bitwise equal to serial (see :mod:`repro.serve.sharded`).

The partitioner itself is a seeded, level-synchronous greedy BFS: ``P``
seed nodes grow breadth-first in round-robin turns, each claiming unassigned
frontier nodes up to an even node quota; exhausted frontiers restart from
the next unassigned node of a seeded permutation, so disconnected components
are covered and the result is a pure function of ``(structure, P, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph.sampling import _gather_segments

__all__ = ["Partition", "PartitionedGraph", "partition_graph", "halo_rings",
           "induced_csr"]


def _neighbors_of(indptr: np.ndarray, indices: np.ndarray,
                  nodes: np.ndarray) -> np.ndarray:
    """Sorted unique neighbour ids of ``nodes`` (one vectorised CSR gather)."""
    starts = indptr[nodes]
    degrees = indptr[nodes + 1] - starts
    return np.unique(_gather_segments(indices, starts, degrees))


def halo_rings(csr: sp.csr_matrix, owned: np.ndarray,
               hops: int) -> Tuple[np.ndarray, ...]:
    """The exact BFS distance rings ``1..hops`` around the ``owned`` node set.

    Ring ``h`` contains precisely the nodes at shortest-path distance ``h``
    from ``owned`` (sorted ascending, mutually disjoint, disjoint from
    ``owned``) — the property-based partition tests verify this against an
    independent BFS.
    """
    owned = np.asarray(owned, dtype=np.int64)
    visited = np.zeros(csr.shape[0], dtype=bool)
    visited[owned] = True
    rings: List[np.ndarray] = []
    frontier = owned
    for _ in range(int(hops)):
        if frontier.size:
            neighbours = _neighbors_of(csr.indptr, csr.indices, frontier)
            ring = neighbours[~visited[neighbours]]
        else:
            ring = np.empty(0, dtype=np.int64)
        visited[ring] = True
        rings.append(np.asarray(ring, dtype=np.int64))
        frontier = ring
    return tuple(rings)


def induced_csr(matrix: sp.spmatrix, nodes: np.ndarray) -> sp.csr_matrix:
    """``matrix[nodes][:, nodes]`` as CSR with per-row sorted columns.

    ``nodes`` must be sorted ascending: the global→local id map is then
    monotone, so the kept entries of every row appear in the same relative
    order as in the global matrix and the result's row sums accumulate in
    the identical order (the bitwise-parity requirement of sharded scoring).
    """
    local = matrix.tocsr()[nodes][:, nodes].tocsr()
    local.sort_indices()
    return local


@dataclass
class Partition:
    """One owned node block plus its halo rings (all global ids, sorted)."""

    index: int
    #: Global ids this partition owns (sorted ascending, disjoint across
    #: partitions, union covers the graph).
    owned: np.ndarray
    #: ``halo_rings[h]`` holds the nodes at BFS distance ``h+1`` from
    #: ``owned`` (sorted ascending, mutually disjoint).
    halo_rings: Tuple[np.ndarray, ...] = ()
    _local_nodes: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def halo(self) -> np.ndarray:
        """All halo nodes (every ring), sorted ascending."""
        if not self.halo_rings:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(self.halo_rings))

    @property
    def local_nodes(self) -> np.ndarray:
        """Owned ∪ halo as one sorted global-id array (the local id order)."""
        if self._local_nodes is None:
            self._local_nodes = np.sort(np.concatenate(
                (self.owned,) + tuple(self.halo_rings))) \
                if self.halo_rings else self.owned
        return self._local_nodes

    @property
    def num_owned(self) -> int:
        return int(self.owned.shape[0])

    @property
    def num_halo(self) -> int:
        return sum(int(ring.shape[0]) for ring in self.halo_rings)

    def owned_positions(self) -> np.ndarray:
        """Local positions of the owned nodes inside :attr:`local_nodes`."""
        return np.searchsorted(self.local_nodes, self.owned)


@dataclass
class PartitionedGraph:
    """A deterministic edge-cut partition of one graph structure.

    ``csr`` is the structure that was partitioned — by convention the raw
    weighted symmetrised adjacency *without* self loops, i.e. the exact
    matrix behind ``GraphTensors.adj_raw`` and ``NeighborSampler``, so every
    consumer agrees on connectivity.  Each CSR row (its outgoing edges)
    belongs to the single partition owning the row's node.
    """

    csr: sp.csr_matrix
    assignment: np.ndarray
    partitions: List[Partition]
    halo_hops: int
    seed: int
    method: str = "bfs"

    @property
    def num_nodes(self) -> int:
        return int(self.csr.shape[0])

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def owned_nodes(self, index: int) -> np.ndarray:
        return self.partitions[index].owned

    def halo(self, index: int) -> np.ndarray:
        return self.partitions[index].halo

    def reconstruct_csr(self) -> sp.csr_matrix:
        """Reassemble the global CSR from the per-partition owned row blocks.

        The tests require byte-for-byte equality with :attr:`csr`
        (``indptr``/``indices``/``data``), which holds because row ownership
        tiles the rows exactly and SciPy's row selection preserves each
        row's entry order.
        """
        order = np.concatenate([part.owned for part in self.partitions])
        stacked = sp.vstack([self.csr[part.owned] for part in self.partitions],
                            format="csr")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.shape[0])
        rebuilt = stacked[inverse].tocsr()
        rebuilt.sort_indices()
        return rebuilt

    def edge_cut(self) -> float:
        """Fraction of stored edges whose endpoints live in different partitions."""
        if self.csr.nnz == 0:
            return 0.0
        coo = self.csr.tocoo()
        crossing = self.assignment[coo.row] != self.assignment[coo.col]
        return float(np.count_nonzero(crossing)) / float(self.csr.nnz)

    def describe(self) -> dict:
        """JSON-safe summary (sizes, halo overhead, cut fraction)."""
        return {
            "num_nodes": self.num_nodes,
            "num_partitions": self.num_partitions,
            "halo_hops": int(self.halo_hops),
            "seed": int(self.seed),
            "method": self.method,
            "owned_sizes": [part.num_owned for part in self.partitions],
            "halo_sizes": [part.num_halo for part in self.partitions],
            "edge_cut": self.edge_cut(),
        }


def _structure_csr(structure: Union[Graph, sp.spmatrix]) -> sp.csr_matrix:
    if isinstance(structure, Graph):
        # The exact matrix NeighborSampler and GraphTensors.adj_raw share
        # (raw weights, symmetrised, no self loops) via the compute cache.
        from repro.graph.sampling import NeighborSampler

        return NeighborSampler._cached_adjacency(structure)
    csr = structure.tocsr() if not isinstance(structure, sp.csr_matrix) else structure
    if csr.shape[0] != csr.shape[1]:
        raise ValueError(f"adjacency must be square, got {csr.shape}")
    return csr


def _bfs_assignment(csr: sp.csr_matrix, num_partitions: int,
                    seed: int) -> np.ndarray:
    """Seeded level-synchronous greedy BFS growth with even node quotas."""
    num_nodes = csr.shape[0]
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(int(seed), int(num_partitions), 0x5A)))
    order = rng.permutation(num_nodes).astype(np.int64)
    assignment = np.full(num_nodes, -1, dtype=np.int64)
    base, extra = divmod(num_nodes, num_partitions)
    quota = np.array([base + (1 if p < extra else 0)
                      for p in range(num_partitions)], dtype=np.int64)
    frontiers: List[np.ndarray] = [np.empty(0, dtype=np.int64)
                                   for _ in range(num_partitions)]
    cursor = 0
    remaining = num_nodes
    while remaining > 0:
        progress = False
        for p in range(num_partitions):
            if quota[p] == 0:
                continue
            frontier = frontiers[p]
            if frontier.size:
                frontier = frontier[assignment[frontier] < 0]
            if frontier.size == 0:
                # Restart from the next unassigned node of the seeded
                # permutation — covers disconnected components.
                while cursor < num_nodes and assignment[order[cursor]] >= 0:
                    cursor += 1
                if cursor >= num_nodes:
                    frontiers[p] = np.empty(0, dtype=np.int64)
                    continue
                frontier = order[cursor:cursor + 1]
            claimed = frontier[:quota[p]]
            assignment[claimed] = p
            quota[p] -= claimed.shape[0]
            remaining -= claimed.shape[0]
            progress = True
            carried = frontier[claimed.shape[0]:]
            if quota[p] > 0:
                neighbours = _neighbors_of(csr.indptr, csr.indices, claimed)
                fresh = neighbours[assignment[neighbours] < 0]
                frontiers[p] = np.unique(np.concatenate((carried, fresh))) \
                    if carried.size else fresh
            else:
                frontiers[p] = np.empty(0, dtype=np.int64)
        if not progress:  # pragma: no cover - quota always drains via restarts
            break
    return assignment


def _block_assignment(num_nodes: int, num_partitions: int) -> np.ndarray:
    """Contiguous id-range blocks (no BFS) — the cheap baseline method."""
    base, extra = divmod(num_nodes, num_partitions)
    sizes = [base + (1 if p < extra else 0) for p in range(num_partitions)]
    return np.repeat(np.arange(num_partitions, dtype=np.int64), sizes)


def partition_graph(structure: Union[Graph, sp.spmatrix], num_partitions: int,
                    halo_hops: int = 1, seed: int = 0,
                    method: str = "bfs") -> PartitionedGraph:
    """Partition a graph structure into ``num_partitions`` owned blocks + halos.

    Parameters
    ----------
    structure : Graph or sparse matrix
        Passing a :class:`Graph` partitions its raw weighted adjacency (the
        shared ``adj_raw`` CSR); a sparse matrix is used as-is.
    num_partitions : int
        Number of disjoint owned blocks (node counts balanced within one).
    halo_hops : int
        BFS rings replicated read-only around each block.  Use the maximum
        receptive field of the models that will run on the partitions for
        exact k-hop propagation at every owned node.
    seed : int
        Seeds the BFS growth order; the result is a pure function of
        ``(structure, num_partitions, halo_hops, seed, method)``.
    method : str
        ``"bfs"`` (seeded greedy BFS, locality-preserving) or ``"block"``
        (contiguous id ranges, no structure dependence).
    """
    csr = _structure_csr(structure)
    num_nodes = int(csr.shape[0])
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions > num_nodes:
        raise ValueError(f"cannot split {num_nodes} nodes into "
                         f"{num_partitions} partitions")
    if halo_hops < 0:
        raise ValueError(f"halo_hops must be >= 0, got {halo_hops}")
    if method == "bfs":
        assignment = _bfs_assignment(csr, num_partitions, seed) \
            if num_partitions > 1 else np.zeros(num_nodes, dtype=np.int64)
    elif method == "block":
        assignment = _block_assignment(num_nodes, num_partitions)
    else:
        raise ValueError(f"unknown partition method {method!r}; "
                         f"choose 'bfs' or 'block'")
    partitions: List[Partition] = []
    for p in range(num_partitions):
        owned = np.where(assignment == p)[0].astype(np.int64)
        rings = halo_rings(csr, owned, halo_hops) if halo_hops else ()
        partitions.append(Partition(index=p, owned=owned, halo_rings=rings))
    return PartitionedGraph(csr=csr, assignment=assignment,
                            partitions=partitions, halo_hops=int(halo_hops),
                            seed=int(seed), method=method)
