"""Sub-graph, neighbour and negative-edge sampling.

Three samplers live here:

* :func:`sample_proxy_subgraph` implements the *proxy dataset* of Section
  III-B: a class-stratified node sample (ratio ``D_proxy``) whose induced
  sub-graph is used to rank candidate models quickly.
* :class:`NeighborSampler` implements GraphSAGE-style layer-wise neighbour
  sampling for minibatch training: seed nodes are expanded hop by hop with a
  per-layer fanout bound, and each batch becomes a
  :class:`~repro.graph.batching.SubgraphBatch` small enough to train on
  regardless of the full graph's size.
* :func:`negative_edge_sampling` supports the edge-prediction experiments
  (Table VIII): it draws node pairs that are not connected in the graph.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graph.batching import SubgraphBatch
from repro.graph.graph import Graph


def sample_proxy_subgraph(graph: Graph, ratio: float, seed: int = 0,
                          keep_test_nodes: bool = False) -> Graph:
    """Sample a class-stratified induced sub-graph containing ``ratio`` of the nodes.

    Labelled nodes are sampled per class so every class stays represented;
    unlabelled nodes are sampled uniformly.  ``ratio=1`` returns a copy of the
    full graph.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must lie in (0, 1]")
    if ratio == 1.0:
        return graph.copy()
    rng = np.random.default_rng(seed)
    labels = graph.labels
    chosen = []
    labelled = np.where(labels >= 0)[0]
    for cls in np.unique(labels[labelled]):
        members = labelled[labels[labelled] == cls]
        members = rng.permutation(members)
        n_keep = max(2, int(round(ratio * members.shape[0])))
        chosen.extend(members[:n_keep].tolist())
    unlabelled = np.where(labels < 0)[0]
    if unlabelled.size and keep_test_nodes:
        chosen.extend(unlabelled.tolist())
    elif unlabelled.size:
        n_keep = int(round(ratio * unlabelled.shape[0]))
        chosen.extend(rng.permutation(unlabelled)[:n_keep].tolist())
    sub = graph.subgraph(np.asarray(chosen, dtype=np.int64), name=f"{graph.name}-proxy{ratio:.2f}")
    sub.metadata["proxy_ratio"] = ratio
    return sub


def _gather_segments(values: np.ndarray, starts: np.ndarray,
                     lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i]:starts[i]+lengths[i]]`` for every segment.

    Vectorised CSR-row gather: builds one flat index array instead of a
    Python loop over rows, which is what keeps sampling cheap on frontiers
    of tens of thousands of nodes.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype)
    # Per-element offset within its segment, computed by subtracting the
    # running start of each segment from a global arange.
    segment_starts = np.repeat(starts - np.concatenate(
        ([0], np.cumsum(lengths)[:-1])), lengths)
    return values[segment_starts + np.arange(total)]


class NeighborSampler:
    """Layer-wise fanout-bounded neighbour sampler for minibatch training.

    Implements the GraphSAGE sampling scheme on a CSR adjacency: a batch of
    *seed* nodes is expanded one hop at a time, keeping at most ``fanouts[k]``
    sampled neighbours per frontier node at hop ``k``, and the union of all
    visited nodes induces the sub-graph the batch trains on.  Peak memory of
    a training step then scales with the sampled sub-graph
    (``O(batch_size * prod(fanouts))`` worst case) instead of with the full
    graph, which is what lets the AutoHEnsGNN pipeline train on graphs that
    do not fit a full-batch pass.

    Parameters
    ----------
    adjacency : scipy.sparse.spmatrix or Graph
        The graph structure to sample from.  Passing a :class:`Graph` builds
        the raw weighted adjacency through the process-wide
        :func:`~repro.parallel.cache.compute_cache`, so the sampler shares
        one frozen CSR with every ``GraphTensors`` view of the same graph
        (``adj_raw``) instead of materialising its own copy.  A CSR matrix
        is used as-is (rows are the message-passing sources, matching
        ``A @ X`` propagation).
    fanouts : sequence of int
        Maximum sampled neighbours per frontier node at each hop, outermost
        hop first.  ``len(fanouts)`` should be at least the depth of the
        model trained on the batches; ``-1`` keeps every neighbour of that
        hop.
    batch_size : int
        Number of seed nodes per batch yielded by :meth:`iter_batches`.
    seed : int
        Base RNG seed.  Together with the ``epoch`` argument of
        :meth:`iter_batches` it fully determines the shuffle order and every
        neighbour draw, so a fixed ``(seed, epoch)`` replays the exact same
        batches — the determinism contract the parallel backends rely on.

    Notes
    -----
    Instances are **not thread-safe**: sampling reuses a per-instance
    scratch map, so each concurrent training loop must own its own sampler
    (the minibatch trainer does this automatically).  The underlying CSR is
    read-only and safely shared.

    Examples
    --------
    >>> sampler = NeighborSampler(graph, fanouts=(10, 5), batch_size=256)
    >>> for batch in sampler.iter_batches(train_index, epoch=0):
    ...     local = batch.tensors(features)          # GraphTensors view
    ...     logits = model(local)[:batch.num_seeds]  # seeds come first
    """

    def __init__(self, adjacency: Union[sp.spmatrix, Graph],
                 fanouts: Sequence[int], batch_size: int = 1024,
                 seed: int = 0) -> None:
        # A PartitionedGraph (duck-typed: sampling is imported *by*
        # repro.graph.partition, so naming the class here would cycle)
        # contributes both its CSR and its ownership assignment, making it
        # the natural argument for partition-local batching.
        self._assignment: Optional[np.ndarray] = None
        if hasattr(adjacency, "csr") and hasattr(adjacency, "assignment"):
            self._assignment = np.asarray(adjacency.assignment)
            adjacency = adjacency.csr
        if isinstance(adjacency, Graph):
            adjacency = self._cached_adjacency(adjacency)
        csr = adjacency.tocsr() if not isinstance(adjacency, sp.csr_matrix) else adjacency
        self.num_nodes = int(csr.shape[0])
        self._indptr = csr.indptr
        self._indices = csr.indices
        self._data = csr.data
        self.fanouts = tuple(int(f) for f in fanouts)
        if not self.fanouts:
            raise ValueError("fanouts must name at least one hop")
        if any(f == 0 or f < -1 for f in self.fanouts):
            raise ValueError("each fanout must be positive (or -1 for all neighbours)")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        # Global -> local id scratch map, reset lazily after each batch so a
        # sampler costs O(num_nodes) memory once, not per batch.
        self._local = np.full(self.num_nodes, -1, dtype=np.int64)

    @staticmethod
    def _cached_adjacency(graph: Graph) -> sp.csr_matrix:
        """The graph's raw weighted adjacency via the shared compute cache.

        Identical key to the ``adj_raw`` operator of
        ``GraphTensors.from_graph`` (normalisation ``"none"``, no self
        loops), so pipeline stages that build both pay for one CSR.
        """
        from repro.autograd.dtype import compute_dtype
        from repro.graph import normalize as _norm
        from repro.parallel.cache import compute_cache

        adj = _norm.build_adjacency(graph.edge_index, graph.num_nodes,
                                    edge_weight=graph.edge_weight,
                                    make_undirected=not graph.directed)
        # Request the operator in the engine compute dtype — the exact key
        # GraphTensors uses — so float32 runs share one CSR with their
        # tensor views instead of keeping a second float64 copy.
        return compute_cache().normalized_adjacency(
            adj, normalization="none", self_loops=False, dtype=compute_dtype())

    # ------------------------------------------------------------------
    # Batch iteration
    # ------------------------------------------------------------------
    def num_batches(self, num_seeds: int) -> int:
        """Number of batches one epoch over ``num_seeds`` seed nodes yields.

        Matches :meth:`iter_batches` exactly, including the empty case
        (zero seeds yield zero batches).
        """
        return -(-int(num_seeds) // self.batch_size)

    def iter_batches(self, seed_nodes: np.ndarray, epoch: int = 0,
                     shuffle: bool = True) -> Iterator[SubgraphBatch]:
        """Yield one :class:`SubgraphBatch` per ``batch_size`` seed nodes.

        Parameters
        ----------
        seed_nodes : ndarray
            Global ids of the nodes to compute a loss on (e.g. the train
            index).  Every seed appears in exactly one batch per epoch.
        epoch : int
            Mixed into the RNG stream so successive epochs shuffle and
            sample differently while staying reproducible.
        shuffle : bool
            Permute the seeds before batching (disable for evaluation-style
            sweeps that want deterministic seed order).
        """
        seed_nodes = np.asarray(seed_nodes, dtype=np.int64)
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(self.seed, int(epoch))))
        if shuffle:
            seed_nodes = rng.permutation(seed_nodes)
        for start in range(0, seed_nodes.shape[0], self.batch_size):
            yield self.sample(seed_nodes[start:start + self.batch_size], rng)

    def iter_partition_batches(self, seed_nodes: np.ndarray,
                               partitions: Union["np.ndarray", object, None] = None,
                               epoch: int = 0,
                               shuffle: bool = True) -> Iterator[SubgraphBatch]:
        """Yield batches whose seeds all share one partition (locality batching).

        Seeds are grouped by their owning partition before batching, so each
        batch's fanout expansion stays inside (or near) one partition's
        neighbourhood — the sampled sub-graphs overlap the partition's CSR
        rows, which is what makes minibatch training cache- and
        shard-friendly on partitioned graphs.  Within a partition the seeds
        are shuffled and the epoch RNG contract of :meth:`iter_batches`
        carries over: a fixed ``(seed, epoch)`` replays the exact same
        batches.

        ``partitions`` is a :class:`~repro.graph.partition.PartitionedGraph`
        (or a raw per-node assignment array); it may be omitted when the
        sampler was constructed *from* a ``PartitionedGraph``.  Partitions
        are visited in ascending index order.

        Note: this changes the *composition* of batches relative to
        :meth:`iter_batches` — it is an opt-in locality feature, and the
        resulting training trajectory is deterministic but not bit-identical
        to globally-shuffled minibatching.
        """
        assignment = partitions if partitions is not None else self._assignment
        if assignment is None:
            raise ValueError(
                "no partition assignment: pass a PartitionedGraph/assignment "
                "array, or construct the sampler from a PartitionedGraph")
        assignment = np.asarray(getattr(assignment, "assignment", assignment))
        if assignment.shape[0] != self.num_nodes:
            raise ValueError(
                f"assignment covers {assignment.shape[0]} nodes but the "
                f"sampler's graph has {self.num_nodes}")
        seed_nodes = np.asarray(seed_nodes, dtype=np.int64)
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(self.seed, int(epoch), 0x517A)))
        owners = assignment[seed_nodes]
        for part in np.unique(owners):
            members = seed_nodes[owners == part]
            if shuffle:
                members = rng.permutation(members)
            for start in range(0, members.shape[0], self.batch_size):
                yield self.sample(members[start:start + self.batch_size], rng)

    # ------------------------------------------------------------------
    # One batch
    # ------------------------------------------------------------------
    def sample(self, seeds: np.ndarray,
               rng: Optional[np.random.Generator] = None) -> SubgraphBatch:
        """Sample the fanout-bounded neighbourhood sub-graph of ``seeds``.

        Returns a :class:`SubgraphBatch` whose local node order starts with
        ``seeds`` (in the order given, duplicates removed) followed by each
        hop ring in ascending global id; edges are the *induced* edges among
        the sampled nodes, so deeper layers still see every message between
        nodes the sampler kept.
        """
        if rng is None:
            # Standalone draws get their own stream, disjoint from any
            # epoch's (epochs use small non-negative entropy values).
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(self.seed, 0x9E3779B9)))
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            raise ValueError("cannot sample a batch from zero seed nodes")
        if seeds.min() < 0 or seeds.max() >= self.num_nodes:
            # Reject out-of-range ids before touching the scratch map: a
            # negative id would wrap around in numpy indexing and corrupt
            # the map in a way the finally-reset cannot see.
            raise ValueError(
                f"seed node ids must lie in [0, {self.num_nodes}); "
                f"got range [{int(seeds.min())}, {int(seeds.max())}]")
        # Stable de-duplication keeping first occurrence order.
        _, first = np.unique(seeds, return_index=True)
        seeds = seeds[np.sort(first)]

        # The scratch map makes one sampler instance single-owner: do not
        # share an instance across threads (each trainer builds its own).
        # The finally-reset keeps the map clean even if a bad seed id (e.g.
        # from a different graph) raises mid-expansion.
        local = self._local
        ordered = [seeds]
        try:
            local[seeds] = np.arange(seeds.shape[0])
            layer_sizes = [int(seeds.shape[0])]
            frontier = seeds
            total = seeds.shape[0]
            for fanout in self.fanouts:
                if frontier.size == 0:
                    layer_sizes.append(0)
                    continue
                neighbours = self._sample_neighbors(frontier, fanout, rng)
                fresh = np.unique(neighbours[local[neighbours] < 0])
                ordered.append(fresh)
                local[fresh] = np.arange(total, total + fresh.shape[0])
                total += fresh.shape[0]
                layer_sizes.append(int(fresh.shape[0]))
                frontier = fresh
            nodes = np.concatenate(ordered)

            # Induced edges: every stored edge with both endpoints sampled.
            starts = self._indptr[nodes]
            degrees = self._indptr[nodes + 1] - starts
            src_local = np.repeat(np.arange(nodes.shape[0]), degrees)
            dst_global = _gather_segments(self._indices, starts, degrees)
            weights = _gather_segments(self._data, starts, degrees)
            keep = local[dst_global] >= 0
            edge_index = np.vstack([src_local[keep], local[dst_global[keep]]])
            edge_weight = np.asarray(weights[keep], dtype=np.float64)
        finally:
            for ring in ordered:  # reset the scratch map for the next batch
                valid = ring[(ring >= 0) & (ring < self.num_nodes)]
                local[valid] = -1
        return SubgraphBatch(
            nodes=nodes,
            num_seeds=int(seeds.shape[0]),
            edge_index=edge_index,
            edge_weight=edge_weight,
            layer_sizes=tuple(layer_sizes),
        )

    def _sample_neighbors(self, frontier: np.ndarray, fanout: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Sampled neighbour ids of ``frontier`` (with duplicates, unfiltered).

        Nodes with degree ``<= fanout`` keep all their neighbours; higher-
        degree nodes contribute ``fanout`` draws with replacement (the
        classic GraphSAGE estimator — duplicates collapse when the hop ring
        is de-duplicated).
        """
        starts = self._indptr[frontier]
        degrees = self._indptr[frontier + 1] - starts
        if fanout < 0:
            return _gather_segments(self._indices, starts, degrees)
        parts = []
        small = degrees <= fanout
        if small.any():
            parts.append(_gather_segments(self._indices, starts[small],
                                          degrees[small]))
        large = ~small
        count = int(large.sum())
        if count:
            draws = (rng.random((count, fanout))
                     * degrees[large][:, None]).astype(np.int64)
            parts.append(self._indices[starts[large][:, None] + draws].ravel())
        if not parts:
            return np.empty(0, dtype=self._indices.dtype)
        return np.concatenate(parts)


def _edge_set(edge_index: np.ndarray, num_nodes: int) -> set:
    src, dst = edge_index
    return set((int(s) * num_nodes + int(d)) for s, d in zip(src, dst))


def negative_edge_sampling(graph: Graph, num_samples: int, seed: int = 0,
                           exclude: Optional[np.ndarray] = None) -> np.ndarray:
    """Sample ``num_samples`` node pairs that are not edges of the graph.

    Returns an array of shape ``(2, num_samples)``.  ``exclude`` may hold
    additional edges (e.g. held-out positive test edges) that must not be
    produced as negatives.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    existing = _edge_set(graph.edge_index, n)
    if not graph.directed:
        existing |= _edge_set(graph.edge_index[::-1], n)
    if exclude is not None and exclude.size:
        existing |= _edge_set(exclude, n)
        existing |= _edge_set(exclude[::-1], n)

    negatives_src: list = []
    negatives_dst: list = []
    max_attempts = 100 * max(num_samples, 1)
    attempts = 0
    while len(negatives_src) < num_samples and attempts < max_attempts:
        batch = max(num_samples - len(negatives_src), 1)
        src = rng.integers(0, n, size=batch)
        dst = rng.integers(0, n, size=batch)
        for s, d in zip(src, dst):
            attempts += 1
            if s == d:
                continue
            key = int(s) * n + int(d)
            if key in existing:
                continue
            existing.add(key)
            existing.add(int(d) * n + int(s))
            negatives_src.append(int(s))
            negatives_dst.append(int(d))
            if len(negatives_src) >= num_samples:
                break
    if len(negatives_src) < num_samples:
        raise RuntimeError("could not sample enough negative edges (graph too dense)")
    return np.vstack([np.asarray(negatives_src, dtype=np.int64),
                      np.asarray(negatives_dst, dtype=np.int64)])


def split_edges(graph: Graph, val_fraction: float = 0.05, test_fraction: float = 0.10,
                seed: int = 0) -> Tuple[Graph, dict]:
    """Split edges into message-passing/train, validation and test sets.

    Used by the edge-prediction task: the returned graph only contains the
    training edges (so the encoder never sees the held-out ones) and the dict
    carries positive and negative edges for each evaluation split.
    """
    rng = np.random.default_rng(seed)
    num_edges = graph.num_edges
    if graph.directed:
        unique_mask = np.ones(num_edges, dtype=bool)
    else:
        # Keep one direction of each undirected edge for splitting purposes.
        unique_mask = graph.edge_index[0] <= graph.edge_index[1]
    candidate = np.where(unique_mask)[0]
    candidate = rng.permutation(candidate)
    n_val = int(round(val_fraction * candidate.size))
    n_test = int(round(test_fraction * candidate.size))
    val_edges = graph.edge_index[:, candidate[:n_val]]
    test_edges = graph.edge_index[:, candidate[n_val:n_val + n_test]]
    train_edge_ids = candidate[n_val + n_test:]

    train_edges = graph.edge_index[:, train_edge_ids]
    train_weights = graph.edge_weight[train_edge_ids]
    if not graph.directed:
        train_edges = np.hstack([train_edges, train_edges[::-1]])
        train_weights = np.concatenate([train_weights, train_weights])

    train_graph = Graph(
        edge_index=train_edges,
        features=graph.features.copy(),
        labels=graph.labels.copy(),
        edge_weight=train_weights,
        directed=graph.directed,
        num_classes=graph.num_classes,
        name=f"{graph.name}-edgesplit",
        metadata=dict(graph.metadata),
    )
    held_out = np.hstack([val_edges, test_edges])
    neg_val = negative_edge_sampling(graph, val_edges.shape[1], seed=seed + 1, exclude=held_out)
    neg_test = negative_edge_sampling(graph, test_edges.shape[1], seed=seed + 2, exclude=held_out)
    splits = {
        "val_pos": val_edges,
        "val_neg": neg_val,
        "test_pos": test_edges,
        "test_neg": neg_test,
    }
    return train_graph, splits
