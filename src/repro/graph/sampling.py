"""Sub-graph and negative-edge sampling.

:func:`sample_proxy_subgraph` implements the *proxy dataset* of Section
III-B: a class-stratified node sample (ratio ``D_proxy``) whose induced
sub-graph is used to rank candidate models quickly.

:func:`negative_edge_sampling` supports the edge-prediction experiments
(Table VIII): it draws node pairs that are not connected in the graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.graph import Graph


def sample_proxy_subgraph(graph: Graph, ratio: float, seed: int = 0,
                          keep_test_nodes: bool = False) -> Graph:
    """Sample a class-stratified induced sub-graph containing ``ratio`` of the nodes.

    Labelled nodes are sampled per class so every class stays represented;
    unlabelled nodes are sampled uniformly.  ``ratio=1`` returns a copy of the
    full graph.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must lie in (0, 1]")
    if ratio == 1.0:
        return graph.copy()
    rng = np.random.default_rng(seed)
    labels = graph.labels
    chosen = []
    labelled = np.where(labels >= 0)[0]
    for cls in np.unique(labels[labelled]):
        members = labelled[labels[labelled] == cls]
        members = rng.permutation(members)
        n_keep = max(2, int(round(ratio * members.shape[0])))
        chosen.extend(members[:n_keep].tolist())
    unlabelled = np.where(labels < 0)[0]
    if unlabelled.size and keep_test_nodes:
        chosen.extend(unlabelled.tolist())
    elif unlabelled.size:
        n_keep = int(round(ratio * unlabelled.shape[0]))
        chosen.extend(rng.permutation(unlabelled)[:n_keep].tolist())
    sub = graph.subgraph(np.asarray(chosen, dtype=np.int64), name=f"{graph.name}-proxy{ratio:.2f}")
    sub.metadata["proxy_ratio"] = ratio
    return sub


def _edge_set(edge_index: np.ndarray, num_nodes: int) -> set:
    src, dst = edge_index
    return set((int(s) * num_nodes + int(d)) for s, d in zip(src, dst))


def negative_edge_sampling(graph: Graph, num_samples: int, seed: int = 0,
                           exclude: Optional[np.ndarray] = None) -> np.ndarray:
    """Sample ``num_samples`` node pairs that are not edges of the graph.

    Returns an array of shape ``(2, num_samples)``.  ``exclude`` may hold
    additional edges (e.g. held-out positive test edges) that must not be
    produced as negatives.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    existing = _edge_set(graph.edge_index, n)
    if not graph.directed:
        existing |= _edge_set(graph.edge_index[::-1], n)
    if exclude is not None and exclude.size:
        existing |= _edge_set(exclude, n)
        existing |= _edge_set(exclude[::-1], n)

    negatives_src: list = []
    negatives_dst: list = []
    max_attempts = 100 * max(num_samples, 1)
    attempts = 0
    while len(negatives_src) < num_samples and attempts < max_attempts:
        batch = max(num_samples - len(negatives_src), 1)
        src = rng.integers(0, n, size=batch)
        dst = rng.integers(0, n, size=batch)
        for s, d in zip(src, dst):
            attempts += 1
            if s == d:
                continue
            key = int(s) * n + int(d)
            if key in existing:
                continue
            existing.add(key)
            existing.add(int(d) * n + int(s))
            negatives_src.append(int(s))
            negatives_dst.append(int(d))
            if len(negatives_src) >= num_samples:
                break
    if len(negatives_src) < num_samples:
        raise RuntimeError("could not sample enough negative edges (graph too dense)")
    return np.vstack([np.asarray(negatives_src, dtype=np.int64),
                      np.asarray(negatives_dst, dtype=np.int64)])


def split_edges(graph: Graph, val_fraction: float = 0.05, test_fraction: float = 0.10,
                seed: int = 0) -> Tuple[Graph, dict]:
    """Split edges into message-passing/train, validation and test sets.

    Used by the edge-prediction task: the returned graph only contains the
    training edges (so the encoder never sees the held-out ones) and the dict
    carries positive and negative edges for each evaluation split.
    """
    rng = np.random.default_rng(seed)
    num_edges = graph.num_edges
    if graph.directed:
        unique_mask = np.ones(num_edges, dtype=bool)
    else:
        # Keep one direction of each undirected edge for splitting purposes.
        unique_mask = graph.edge_index[0] <= graph.edge_index[1]
    candidate = np.where(unique_mask)[0]
    candidate = rng.permutation(candidate)
    n_val = int(round(val_fraction * candidate.size))
    n_test = int(round(test_fraction * candidate.size))
    val_edges = graph.edge_index[:, candidate[:n_val]]
    test_edges = graph.edge_index[:, candidate[n_val:n_val + n_test]]
    train_edge_ids = candidate[n_val + n_test:]

    train_edges = graph.edge_index[:, train_edge_ids]
    train_weights = graph.edge_weight[train_edge_ids]
    if not graph.directed:
        train_edges = np.hstack([train_edges, train_edges[::-1]])
        train_weights = np.concatenate([train_weights, train_weights])

    train_graph = Graph(
        edge_index=train_edges,
        features=graph.features.copy(),
        labels=graph.labels.copy(),
        edge_weight=train_weights,
        directed=graph.directed,
        num_classes=graph.num_classes,
        name=f"{graph.name}-edgesplit",
        metadata=dict(graph.metadata),
    )
    held_out = np.hstack([val_edges, test_edges])
    neg_val = negative_edge_sampling(graph, val_edges.shape[1], seed=seed + 1, exclude=held_out)
    neg_test = negative_edge_sampling(graph, test_edges.shape[1], seed=seed + 2, exclude=held_out)
    splits = {
        "val_pos": val_edges,
        "val_neg": neg_val,
        "test_pos": test_edges,
        "test_neg": neg_test,
    }
    return train_graph, splits
