"""Shared-memory ``mmap`` graph blocks for process-backend workers.

The process backend's known cost is that every submitted task pickles its
full argument tuple — for graph workloads that means serialising the feature
matrix and three normalised CSR operators *per task*.  This module removes
that cost: the parent publishes the arrays once as ``.npy`` files under
``/dev/shm`` (tmpfs; falls back to the regular temp dir), and workers map
them read-only with ``np.load(mmap_mode="r")``.  A task then carries a tiny
:class:`SharedGraphHandle` instead of the graph, and every worker process
resolves the handle through a per-process cache, so the physical pages are
shared between all workers on the machine instead of being copied ``P``
times.

Bitwise contract: the published bytes are exactly the parent's arrays, and
read-only memmaps satisfy :class:`~repro.autograd.sparse.SparseTensor`'s
zero-copy aliasing rule, so a worker's reconstructed
:class:`~repro.nn.data.GraphTensors` computes bit-for-bit what the parent's
in-memory view computes.

Lifecycle: the parent owns the store — :meth:`SharedGraphStore.close`
unlinks the backing files (idempotent, also via context manager / GC), and
on Linux unlinking while workers still hold mappings is safe; the pages die
with the last mapping.  A crashed worker therefore never leaks files: the
owner's ``finally`` still removes the directory.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["SharedGraphStore", "SharedGraphHandle", "default_shm_dir",
           "shared_store_paths", "resolve_graph_data", "resolve_graph",
           "clear_shared_cache", "STORE_PREFIX"]

#: Directory-name prefix of every store; the leak-check fixture and
#: :func:`shared_store_paths` scan for it.
STORE_PREFIX = "repro-graph-"


def default_shm_dir() -> str:
    """``/dev/shm`` when usable (tmpfs — pages, not disk), else the temp dir."""
    candidate = "/dev/shm"
    if os.path.isdir(candidate) and os.access(candidate, os.W_OK):
        return candidate
    return tempfile.gettempdir()


def shared_store_paths(directory: Optional[str] = None) -> Tuple[str, ...]:
    """Every store directory currently present under ``directory`` (sorted)."""
    directory = directory or default_shm_dir()
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return ()
    return tuple(os.path.join(directory, entry) for entry in entries
                 if entry.startswith(STORE_PREFIX))


class SharedGraphStore:
    """Writer side: publish arrays/CSR blocks/graph views once, owner-unlinked.

    Typical use::

        with SharedGraphStore() as store:
            handle = store.put_tensors(data)
            backend.map(fit_member, [(member, ..., handle, ...), ...])
        # exiting unlinks the blocks; worker mappings stay valid until
        # the workers drop them (Linux unlink semantics)
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        root = directory or default_shm_dir()
        self.path = tempfile.mkdtemp(prefix=STORE_PREFIX, dir=root)
        #: Distinguishes a re-created store at a recycled path in the
        #: per-process resolution cache.
        self.uid = uuid.uuid4().hex
        self.meta: Dict[str, dict] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError("shared graph store is closed")

    def put_array(self, name: str, array: np.ndarray) -> None:
        """Publish one ndarray as ``<name>.npy`` (bytes exactly as given)."""
        self._require_open()
        np.save(os.path.join(self.path, f"{name}.npy"),
                np.ascontiguousarray(array))

    def put_csr(self, name: str, matrix: sp.csr_matrix) -> None:
        """Publish one CSR matrix as three arrays plus shape metadata."""
        self._require_open()
        matrix = matrix.tocsr()
        self.put_array(f"{name}.data", matrix.data)
        self.put_array(f"{name}.indices", matrix.indices)
        self.put_array(f"{name}.indptr", matrix.indptr)
        self.meta[name] = {"kind": "csr", "shape": list(matrix.shape),
                           "sorted": bool(matrix.has_sorted_indices)}

    def put_pickle(self, name: str, value: object) -> None:
        """Publish one small picklable object (scalars/metadata, not arrays)."""
        self._require_open()
        with open(os.path.join(self.path, f"{name}.pkl"), "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def put_tensors(self, data, name: str = "tensors") -> "SharedGraphHandle":
        """Publish a :class:`~repro.nn.data.GraphTensors` view's blocks.

        Stores the three normalised operators, the feature matrix and the
        symmetrised edge structure — everything
        :meth:`SharedGraphHandle.tensors` needs to rebuild a bit-equivalent
        view in a worker.
        """
        self._require_open()
        self.put_csr(f"{name}.sym", data.adj_sym.matrix)
        self.put_csr(f"{name}.rw", data.adj_rw.matrix)
        self.put_csr(f"{name}.raw", data.adj_raw.matrix)
        self.put_array(f"{name}.features", data.features.data)
        self.put_array(f"{name}.edge_index", data.edge_index)
        self.put_array(f"{name}.edge_weight", data.edge_weight)
        entry = {
            "kind": "tensors",
            "num_nodes": int(data.num_nodes),
            "num_features": int(data.num_features),
            "dtype": str(data.features.data.dtype),
        }
        relations = getattr(data, "relations", None)
        if relations:
            # Heterogeneous view: also publish the raw per-relation CSR
            # blocks and the node-type table.  Workers rebuild normalised
            # per-relation operators from these through the shared
            # ComputeCache (deterministic, hence bit-equal to the parent's).
            for relation_id, block in enumerate(data.relation_adjacency):
                self.put_csr(f"{name}.rel{relation_id}", block)
            self.put_array(f"{name}.node_type", data.node_type)
            entry["relations"] = [list(relation) for relation in relations]
        self.meta[name] = entry
        self._write_meta()
        return self.handle()

    def put_graph(self, graph, name: str = "graph") -> "SharedGraphHandle":
        """Publish a :class:`~repro.graph.graph.Graph` (arrays + small remainder)."""
        self._require_open()
        self.put_array(f"{name}.edge_index", graph.edge_index)
        self.put_array(f"{name}.edge_weight", graph.edge_weight)
        self.put_array(f"{name}.features", graph.features)
        self.put_array(f"{name}.labels", graph.labels)
        masks = []
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(graph, mask_name)
            if mask is not None:
                self.put_array(f"{name}.{mask_name}", mask)
                masks.append(mask_name)
        self.put_pickle(f"{name}.attrs", {
            "directed": bool(graph.directed),
            "num_classes": graph.num_classes,
            "name": graph.name,
            "metadata": dict(graph.metadata),
        })
        self.meta[name] = {"kind": "graph", "masks": masks}
        self._write_meta()
        return self.handle()

    def _write_meta(self) -> None:
        with open(os.path.join(self.path, "meta.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(self.meta, handle, indent=2, sort_keys=True)

    def handle(self) -> "SharedGraphHandle":
        """A tiny picklable reference workers resolve via the process cache."""
        self._require_open()
        return SharedGraphHandle(path=self.path, uid=self.uid,
                                 meta=dict(self.meta))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every published block (idempotent).

        Existing worker mappings stay readable until dropped; no new handle
        resolutions are possible afterwards.
        """
        if self.closed:
            return
        self.closed = True
        shutil.rmtree(self.path, ignore_errors=True)
        # The owner's own cached resolutions (thread/serial consumers) go too.
        _PROCESS_CACHE.pop((self.path, self.uid), None)

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# Per-process resolution cache: (path, uid) -> {name: resolved object}.
# Workers are long-lived pool members, so each maps a given store once no
# matter how many tasks reference it.
_PROCESS_CACHE: Dict[Tuple[str, str], Dict[str, object]] = {}


def clear_shared_cache() -> None:
    """Drop every cached handle resolution in this process (tests/benchmarks)."""
    _PROCESS_CACHE.clear()


def _mapped(path: str, name: str) -> np.ndarray:
    """Map one published array read-only (writes raise, satisfying aliasing)."""
    return np.load(os.path.join(path, f"{name}.npy"), mmap_mode="r")


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable reference to a published store; resolves via mmap per process."""

    path: str
    uid: str
    meta: Dict[str, dict] = field(default_factory=dict)

    # The GSE/hierarchical task builders read these off the training data
    # object, so a handle can stand in for GraphTensors when building tasks.
    @property
    def num_nodes(self) -> int:
        return int(self.meta["tensors"]["num_nodes"])

    @property
    def num_features(self) -> int:
        return int(self.meta["tensors"]["num_features"])

    def _cache(self) -> Dict[str, object]:
        return _PROCESS_CACHE.setdefault((self.path, self.uid), {})

    def array(self, name: str) -> np.ndarray:
        cache = self._cache()
        if name not in cache:
            cache[name] = _mapped(self.path, name)
        return cache[name]  # type: ignore[return-value]

    def csr(self, name: str) -> sp.csr_matrix:
        """Zero-copy CSR over the mapped blocks (read-only buffers)."""
        cache = self._cache()
        key = f"csr:{name}"
        if key not in cache:
            entry = self.meta[name]
            matrix = sp.csr_matrix(tuple(entry["shape"]))
            matrix.data = _mapped(self.path, f"{name}.data")
            matrix.indices = _mapped(self.path, f"{name}.indices")
            matrix.indptr = _mapped(self.path, f"{name}.indptr")
            if entry.get("sorted"):
                matrix.has_sorted_indices = True
            cache[key] = matrix
        return cache[key]  # type: ignore[return-value]

    def tensors(self, name: str = "tensors"):
        """Rebuild the published :class:`GraphTensors` view (cached per process).

        The operators alias the mapped read-only CSRs zero-copy and the
        features wrap the mapped matrix directly, so the view computes
        bit-for-bit like the parent's — with no per-task deserialisation.
        """
        cache = self._cache()
        key = f"tensors:{name}"
        if key not in cache:
            # Imported lazily: repro.nn.data imports repro.graph, so a
            # module-level import here would cycle during package init.
            from repro.autograd.sparse import SparseTensor
            from repro.autograd.tensor import Tensor
            from repro.nn.data import GraphTensors

            entry = self.meta[name]
            fields = dict(
                features=Tensor(self.array(f"{name}.features")),
                adj_sym=SparseTensor(self.csr(f"{name}.sym")),
                adj_rw=SparseTensor(self.csr(f"{name}.rw")),
                adj_raw=SparseTensor(self.csr(f"{name}.raw")),
                edge_index=self.array(f"{name}.edge_index"),
                edge_weight=self.array(f"{name}.edge_weight"),
                num_nodes=int(entry["num_nodes"]),
                num_features=int(entry["num_features"]),
            )
            if entry.get("relations"):
                from repro.graph.hetero import HeteroGraphTensors

                cache[key] = HeteroGraphTensors(
                    relations=tuple(tuple(r) for r in entry["relations"]),
                    node_type=self.array(f"{name}.node_type"),
                    relation_adjacency=tuple(
                        self.csr(f"{name}.rel{relation_id}")
                        for relation_id in range(len(entry["relations"]))),
                    **fields)
            else:
                cache[key] = GraphTensors(**fields)
        return cache[key]

    def graph(self, name: str = "graph"):
        """Rebuild the published :class:`Graph` (cached per process)."""
        cache = self._cache()
        key = f"graph:{name}"
        if key not in cache:
            from repro.graph.graph import Graph

            with open(os.path.join(self.path, f"{name}.attrs.pkl"), "rb") as fh:
                attrs = pickle.load(fh)
            masks = {mask_name: self.array(f"{name}.{mask_name}")
                     for mask_name in self.meta[name]["masks"]}
            cache[key] = Graph(
                edge_index=self.array(f"{name}.edge_index"),
                features=self.array(f"{name}.features"),
                labels=self.array(f"{name}.labels"),
                edge_weight=self.array(f"{name}.edge_weight"),
                directed=attrs["directed"],
                num_classes=attrs["num_classes"],
                train_mask=masks.get("train_mask"),
                val_mask=masks.get("val_mask"),
                test_mask=masks.get("test_mask"),
                name=attrs["name"],
                metadata=attrs["metadata"],
            )
        return cache[key]


def resolve_graph_data(data):
    """``GraphTensors`` pass-through; a :class:`SharedGraphHandle` is mapped.

    The one-line hook the process-backend task functions call on their
    ``data`` argument, so the same task tuple works whether the pipeline
    shipped the view by value (serial/thread, or ``shared_graph=False``) or
    by handle.
    """
    if isinstance(data, SharedGraphHandle):
        return data.tensors()
    return data


def resolve_graph(graph):
    """``Graph`` pass-through; a :class:`SharedGraphHandle` is mapped."""
    if isinstance(graph, SharedGraphHandle):
        return graph.graph()
    return graph
