"""Train/validation/test splitting utilities.

Two protocols from the paper are provided:

* :func:`planetoid_split` — the fixed public split used for Cora / Citeseer /
  Pubmed (20 labelled nodes per class for training, 500 validation nodes,
  1000 test nodes).
* :func:`random_split` / :func:`repeated_random_splits` — random
  training/validation splits of the labelled nodes, the source of the
  "split variance" the paper addresses with bagging (Section IV-D1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph


def stratified_label_split(labels: np.ndarray, holdout_fraction: float,
                           rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Split labelled node ids into (kept, holdout) with per-class stratification."""
    labels = np.asarray(labels)
    labelled = np.where(labels >= 0)[0]
    keep, holdout = [], []
    for cls in np.unique(labels[labelled]):
        members = labelled[labels[labelled] == cls]
        members = rng.permutation(members)
        n_holdout = max(1, int(round(holdout_fraction * members.shape[0])))
        n_holdout = min(n_holdout, members.shape[0] - 1) if members.shape[0] > 1 else n_holdout
        holdout.extend(members[:n_holdout].tolist())
        keep.extend(members[n_holdout:].tolist())
    return np.asarray(sorted(keep), dtype=np.int64), np.asarray(sorted(holdout), dtype=np.int64)


def random_split(graph: Graph, val_fraction: float = 0.2,
                 seed: int = 0, labelled_pool: Optional[np.ndarray] = None) -> Graph:
    """Return a copy of ``graph`` with random stratified train/val masks.

    Only nodes with a known label participate; the test mask is left
    untouched (for challenge datasets it marks the unlabeled nodes).
    """
    rng = np.random.default_rng(seed)
    labels = graph.labels.copy()
    if labelled_pool is not None:
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[labelled_pool] = True
        labels = np.where(mask, labels, -1)
    train_idx, val_idx = stratified_label_split(labels, val_fraction, rng)
    train_mask = np.zeros(graph.num_nodes, dtype=bool)
    val_mask = np.zeros(graph.num_nodes, dtype=bool)
    train_mask[train_idx] = True
    val_mask[val_idx] = True
    return graph.with_masks(train_mask, val_mask)


def repeated_random_splits(graph: Graph, num_splits: int, val_fraction: float = 0.2,
                           seed: int = 0) -> List[Graph]:
    """Independent random splits used for bagging over data splits."""
    return [random_split(graph, val_fraction=val_fraction, seed=seed + i) for i in range(num_splits)]


def planetoid_split(graph: Graph, train_per_class: int = 20, num_val: int = 500,
                    num_test: int = 1000, seed: int = 0) -> Graph:
    """The standard fixed split protocol of Yang et al. (2016).

    ``train_per_class`` nodes per class are used for training, the next
    ``num_val`` labelled nodes for validation and the following ``num_test``
    for testing.  A seed is accepted so synthetic datasets can freeze a
    deterministic "public" split once at generation time.
    """
    rng = np.random.default_rng(seed)
    labels = graph.labels
    labelled = np.where(labels >= 0)[0]
    if labelled.size < train_per_class * graph.num_classes + num_val + num_test:
        # Scale the protocol down proportionally for small synthetic graphs.
        available = labelled.size - train_per_class * graph.num_classes
        available = max(available, 2)
        num_val = min(num_val, available // 2)
        num_test = min(num_test, available - num_val)

    train_idx: List[int] = []
    for cls in range(graph.num_classes):
        members = labelled[labels[labelled] == cls]
        members = rng.permutation(members)
        train_idx.extend(members[:train_per_class].tolist())
    train_idx_arr = np.asarray(sorted(train_idx), dtype=np.int64)

    remaining = np.setdiff1d(labelled, train_idx_arr)
    remaining = rng.permutation(remaining)
    val_idx = np.asarray(sorted(remaining[:num_val]), dtype=np.int64)
    test_idx = np.asarray(sorted(remaining[num_val:num_val + num_test]), dtype=np.int64)

    train_mask = np.zeros(graph.num_nodes, dtype=bool)
    val_mask = np.zeros(graph.num_nodes, dtype=bool)
    test_mask = np.zeros(graph.num_nodes, dtype=bool)
    train_mask[train_idx_arr] = True
    val_mask[val_idx] = True
    test_mask[test_idx] = True
    return graph.with_masks(train_mask, val_mask, test_mask)


def holdout_test_split(graph: Graph, test_fraction: float = 0.2, seed: int = 0) -> Graph:
    """Carve a held-out test set out of the labelled nodes.

    The paper cannot access challenge test labels, so it evaluates candidate
    models on a test set split off from the training nodes; this helper
    reproduces that protocol.
    """
    rng = np.random.default_rng(seed)
    keep, holdout = stratified_label_split(graph.labels, test_fraction, rng)
    test_mask = np.zeros(graph.num_nodes, dtype=bool)
    test_mask[holdout] = True
    graph = graph.copy()
    graph.test_mask = test_mask
    graph.metadata["labelled_pool"] = keep
    return graph
