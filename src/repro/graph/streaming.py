"""Mutable serving graphs with bit-exact incremental re-normalisation.

The batch pipeline derives every propagation operator from scratch:
:func:`~repro.graph.normalize.build_adjacency` builds a canonical CSR from
the edge list, :func:`~repro.graph.normalize.normalized_adjacency` then
produces ``D^-1/2 (A+I) D^-1/2`` (``sym``), ``D^-1 (A+I)`` (``rw``) and the
raw weighted matrix (``none``).  A long-lived scoring service cannot afford
that per mutation: adding one edge changes the degrees of exactly two nodes,
so only the touched rows and columns of the normalised operators actually
change value.

:class:`MutableServingGraph` maintains the three operators incrementally and
**bit-identically** to the from-scratch pipeline.  That guarantee is what the
differential tests in ``tests/test_streaming_serve.py`` enforce, and it rests
on three verified properties of the SciPy ops the batch path uses:

* ``sp.diags(x) @ A @ sp.diags(y)`` stores row-sorted indices and computes
  each entry as ``(x[i] * a_ij) * y[j]`` — reproducible entrywise.
* ``sp.diags(x) @ A`` (single product) stores **reverse**-sorted indices per
  row with entries ``x[i] * a_ij`` — the incremental ``rw`` operator mirrors
  that reversed layout exactly.
* Row slicing a CSR preserves per-row entry order, so ``A[rows] @ X`` and
  ``A[rows].sum(axis=1)`` equal the corresponding rows of the full products
  bit for bit — degrees and propagation products can be re-derived for dirty
  rows only.

Mutations (:meth:`~MutableServingGraph.add_nodes`,
:meth:`~MutableServingGraph.add_edges`,
:meth:`~MutableServingGraph.remove_edges`,
:meth:`~MutableServingGraph.update_features`) are journaled and applied in
one :meth:`~MutableServingGraph.flush`, which splices the changed rows into
fresh CSR arrays (superseded arrays are never written in place — served
views may still alias them) and returns a :class:`MutationDelta` naming the
rows each operator changed, which downstream consumers (the streaming
scorer's ``A^k X`` delta propagation) use as their dirty frontier.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.dtype import compute_dtype_scope
from repro.graph import normalize as _norm
from repro.graph.graph import Graph
from repro.resilience.wal import JournalError, RecoveryReport, WriteAheadJournal

__all__ = ["MutableServingGraph", "MutationDelta", "rows_touching_columns"]

#: Degree floor used by :func:`repro.graph.normalize.normalized_adjacency`;
#: replicated here so isolated nodes normalise identically.
_DEGREE_FLOOR = 1e-12


def rows_touching_columns(indptr: np.ndarray, indices: np.ndarray,
                          columns: np.ndarray) -> np.ndarray:
    """Rows of a CSR holding at least one entry in ``columns`` (sorted, unique).

    The one structural query incremental maintenance needs: which rows of an
    operator read a given set of dirty columns.  One vectorised scan of the
    index array — O(nnz) — with no per-row Python.
    """
    columns = np.asarray(columns, dtype=np.int64)
    if columns.size == 0 or indices.size == 0:
        return np.empty(0, dtype=np.int64)
    positions = np.flatnonzero(np.isin(indices, columns))
    if positions.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.searchsorted(indptr, positions, side="right") - 1)


@dataclass
class MutationDelta:
    """What one :meth:`MutableServingGraph.flush` changed.

    ``operator_rows`` maps each operator kind (``sym``/``rw``/``raw``) to the
    sorted node ids whose operator *row* changed value or structure; feature
    consumers combine it with ``feature_rows`` to seed their dirty frontier.
    ``structure_changed`` distinguishes feature-only flushes, whose operators
    (and anything derived from structure alone) remain valid.
    """

    old_num_nodes: int
    num_nodes: int
    structure_changed: bool
    structure_rows: np.ndarray
    operator_rows: Dict[str, np.ndarray]
    feature_rows: np.ndarray


def _freeze(*arrays: np.ndarray) -> None:
    """Mark arrays read-only: served views may alias them across versions."""
    for array in arrays:
        array.setflags(write=False)


def _splice_rows(indptr: np.ndarray, aligned: Sequence[np.ndarray],
                 dirty_rows: np.ndarray,
                 replacements: Dict[int, Tuple[np.ndarray, ...]],
                 new_num_rows: int) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Rebuild CSR arrays with ``dirty_rows`` replaced, other rows copied.

    ``aligned`` is a sequence of per-entry arrays sharing the CSR layout
    (indices plus any number of data arrays); ``replacements[row]`` supplies
    the new per-entry arrays for each dirty row, in the same order.  Rows at
    or beyond the old row count are appended (node growth).  The result is a
    fresh allocation assembled from O(#dirty) contiguous pieces — clean rows
    are block-copied, never recomputed, so their bytes are identical by
    construction.
    """
    old_num_rows = indptr.shape[0] - 1
    lengths = np.zeros(new_num_rows, dtype=np.int64)
    lengths[:old_num_rows] = np.diff(indptr)
    for row in dirty_rows:
        lengths[row] = replacements[int(row)][0].shape[0]
    new_indptr = np.zeros(new_num_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    pieces: List[List[np.ndarray]] = [[] for _ in aligned]
    previous = 0
    for row in dirty_rows:
        row = int(row)
        clean_hi = min(row, old_num_rows)
        if previous < clean_hi:
            for slot, array in enumerate(aligned):
                pieces[slot].append(array[indptr[previous]:indptr[clean_hi]])
        for slot, piece in enumerate(replacements[row]):
            pieces[slot].append(piece)
        previous = row + 1
    if previous < old_num_rows:
        for slot, array in enumerate(aligned):
            pieces[slot].append(array[indptr[previous]:indptr[old_num_rows]])
    spliced = [np.concatenate(slot_pieces) if slot_pieces
               else np.empty(0, dtype=array.dtype)
               for slot_pieces, array in zip(pieces, aligned)]
    return new_indptr, spliced


class MutableServingGraph:
    """A living graph that keeps its normalised operators serve-ready.

    Constructed from a :class:`~repro.graph.graph.Graph`, after which the
    original object is never consulted again: features, labels and the
    canonical adjacency are copied into masters owned by this instance.
    Mutations journal cheaply and :meth:`flush` applies them in one
    incremental maintenance pass; :meth:`snapshot` materialises an ordinary
    ``Graph`` equivalent to the current state (the differential-testing
    anchor: scoring the snapshot from scratch must equal scoring the
    incrementally maintained operators, bit for bit).

    Semantics are deliberately strict so incremental and from-scratch state
    can never diverge silently:

    * at most one edge per (ordered) node pair — :meth:`add_edges` of an
      existing pair raises instead of accumulating weight;
    * self-loops cannot be added or removed (the normalisation inserts its
      own unit self-loops; pre-existing diagonal entries of the seed graph
      are preserved in the raw operator);
    * undirected graphs store both directions of every edge and mutate them
      together.

    Thread safety: mutation journaling and flushing are serialised by an
    internal lock, but the class is designed for a single-writer serving
    loop (the :class:`~repro.serve.streaming.StreamingScorer` holds its own
    lock around mutate+flush+score sequences).
    """

    def __init__(self, graph: Graph, journal_dir: Optional[str] = None,
                 fsync: bool = False) -> None:
        self.name = graph.name
        self.directed = bool(graph.directed)
        self.num_classes = graph.num_classes
        self._features = np.array(graph.features, dtype=np.float64)
        self._labels = np.array(graph.labels, dtype=np.int64)
        adjacency = _norm.build_adjacency(
            graph.edge_index, graph.num_nodes, edge_weight=graph.edge_weight,
            make_undirected=not graph.directed)
        adjacency.sort_indices()
        self._neighbors: List[Dict[int, float]] = [dict() for _ in range(graph.num_nodes)]
        coo = adjacency.tocoo()
        for row, col, value in zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist()):
            self._neighbors[row][col] = value
        self._install_from_scratch(adjacency)
        self._num_nodes = graph.num_nodes
        self._pending_new_features: List[np.ndarray] = []
        self._pending_structure: set = set()
        self._pending_features: set = set()
        self._lock = threading.RLock()
        #: Bumped by every flush that applied at least one mutation.
        self.version = 0
        #: Bumped only by flushes that changed structure (edges/nodes).
        self.structure_version = 0
        # Durability (repro.resilience.wal): with a journal directory every
        # mutation is written ahead to a CRC-framed log, and the constructor
        # commits the seed graph as the covering snapshot, so recover() can
        # rebuild this exact state after a crash.
        self._journal: Optional[WriteAheadJournal] = None
        if journal_dir is not None:
            journal = WriteAheadJournal(journal_dir, fsync=fsync)
            if journal.has_snapshot:
                raise JournalError(
                    f"journal directory {journal_dir!r} already holds a "
                    f"committed snapshot; use MutableServingGraph.recover() "
                    f"to resume it (or point the new graph at an empty "
                    f"directory)")
            journal.write_snapshot(graph, 0)
            self._journal = journal

    # ------------------------------------------------------------------
    # Construction of the master arrays
    # ------------------------------------------------------------------
    def _install_from_scratch(self, adjacency: sp.csr_matrix) -> None:
        """Derive every master from a canonical adjacency (init-time only)."""
        loop = _norm.add_self_loops(adjacency)
        self._raw_indptr = adjacency.indptr.astype(np.int64)
        self._raw_indices = adjacency.indices.astype(np.int64)
        self._raw_data = np.asarray(adjacency.data, dtype=np.float64)
        self._loop_indptr = loop.indptr.astype(np.int64)
        self._loop_indices = loop.indices.astype(np.int64)
        self._loop_data = np.asarray(loop.data, dtype=np.float64)
        # The exact degree reduction normalized_adjacency performs.
        self._degree = np.asarray(loop.sum(axis=1)).reshape(-1)
        safe = np.maximum(self._degree, _DEGREE_FLOOR)
        self._inv_sqrt = 1.0 / np.sqrt(safe)
        self._inv = 1.0 / safe
        rows = np.repeat(np.arange(loop.shape[0], dtype=np.int64),
                         np.diff(self._loop_indptr))
        self._loop_rows = rows
        self._sym_data = ((self._inv_sqrt[rows] * self._loop_data)
                          * self._inv_sqrt[self._loop_indices])
        self._rw_indices, self._rw_data = self._reversed_rows(
            self._loop_indptr, self._loop_indices,
            self._inv[rows] * self._loop_data)
        _freeze(self._raw_indptr, self._raw_indices, self._raw_data,
                self._loop_indptr, self._loop_indices, self._loop_data,
                self._loop_rows, self._sym_data, self._rw_indices, self._rw_data)

    @staticmethod
    def _reversed_rows(indptr: np.ndarray, indices: np.ndarray,
                       data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row reversal of CSR entries, vectorised.

        ``sp.diags(x) @ A`` emits each row's entries in reverse column
        order; the incremental ``rw`` operator must mirror that layout so
        its matvecs accumulate in the same order as the batch pipeline's.
        """
        if indices.size == 0:
            return indices.copy(), data.copy()
        num_rows = indptr.shape[0] - 1
        starts = np.repeat(indptr[:-1], np.diff(indptr))
        ends = np.repeat(indptr[1:], np.diff(indptr))
        offsets = np.arange(indices.shape[0], dtype=np.int64)
        permutation = starts + (ends - 1 - offsets)
        return indices[permutation], data[permutation]

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Logical node count, including journaled not-yet-flushed nodes."""
        return self._num_nodes

    @property
    def num_features(self) -> int:
        """Width of the feature matrix (fixed for the graph's lifetime)."""
        return int(self._features.shape[1])

    @property
    def num_edges(self) -> int:
        """Stored directed entry count (undirected edges count twice)."""
        return sum(len(neighbors) for neighbors in self._neighbors)

    def has_edge(self, source: int, destination: int) -> bool:
        """Whether the (ordered) pair currently holds an edge."""
        return int(destination) in self._neighbors[int(source)]

    # ------------------------------------------------------------------
    # Mutation API (journaling; applied by flush)
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise ValueError(
                f"node {node} is out of range for a graph of {self._num_nodes} nodes")
        return node

    def add_nodes(self, features: np.ndarray) -> np.ndarray:
        """Append isolated nodes with the given feature rows; return their ids.

        New nodes participate in normalisation immediately (each gets the
        unit self-loop every node has), carry label ``-1`` and no edges until
        :meth:`add_edges` connects them.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.num_features:
            raise ValueError(
                f"new nodes must carry {self.num_features} features, "
                f"got {features.shape[1]}")
        with self._lock:
            first = self._num_nodes
            count = features.shape[0]
            self._pending_new_features.append(features.copy())
            self._neighbors.extend(dict() for _ in range(count))
            self._num_nodes += count
            new_ids = np.arange(first, first + count, dtype=np.int64)
            self._pending_structure.update(new_ids.tolist())
            if self._journal is not None:
                # JSON round-trips Python floats exactly (repr is shortest
                # round-tripping), so the journaled features replay to the
                # same float64 bits.
                self._journal.append("add_nodes", {"features": features.tolist()})
            return new_ids

    def _edge_pairs(self, edge_index: np.ndarray) -> List[Tuple[int, int]]:
        edge_index = np.asarray(edge_index, dtype=np.int64)
        if edge_index.ndim == 1:
            edge_index = edge_index.reshape(2, 1)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        return [(self._check_node(s), self._check_node(d))
                for s, d in zip(edge_index[0], edge_index[1])]

    def add_edges(self, edge_index: np.ndarray,
                  edge_weight: Optional[np.ndarray] = None) -> None:
        """Insert edges (both directions on undirected graphs).

        Raises ``ValueError`` for self-loops, out-of-range endpoints or a
        pair that already holds an edge — silent weight accumulation is
        exactly the kind of divergence the differential tests exist to
        catch, so duplicate inserts fail loudly instead.
        """
        pairs = self._edge_pairs(edge_index)
        if edge_weight is None:
            weights = [1.0] * len(pairs)
        else:
            weights = [float(w) for w in np.asarray(edge_weight, dtype=np.float64)]
            if len(weights) != len(pairs):
                raise ValueError("edge_weight must have one entry per edge")
        with self._lock:
            for (source, destination), weight in zip(pairs, weights):
                if source == destination:
                    raise ValueError(
                        f"self-loop ({source}, {destination}) cannot be added: "
                        f"normalisation owns the diagonal")
                if destination in self._neighbors[source]:
                    raise ValueError(
                        f"edge ({source}, {destination}) already exists; "
                        f"remove it first to change its weight")
                self._neighbors[source][destination] = weight
                self._pending_structure.update((source, destination))
                if not self.directed:
                    self._neighbors[destination][source] = weight
            if self._journal is not None:
                self._journal.append("add_edges", {
                    "edges": [[source for source, _ in pairs],
                              [destination for _, destination in pairs]],
                    "weights": weights,
                })

    def remove_edges(self, edge_index: np.ndarray) -> None:
        """Delete edges (both directions on undirected graphs).

        Raises ``ValueError`` if any pair holds no edge — removing a
        non-existent edge is a client bookkeeping bug, not a no-op.
        """
        pairs = self._edge_pairs(edge_index)
        with self._lock:
            for source, destination in pairs:
                if source == destination:
                    raise ValueError(
                        f"self-loop ({source}, {destination}) cannot be removed: "
                        f"normalisation owns the diagonal")
                if destination not in self._neighbors[source]:
                    raise ValueError(f"edge ({source}, {destination}) does not exist")
                del self._neighbors[source][destination]
                self._pending_structure.update((source, destination))
                if not self.directed:
                    del self._neighbors[destination][source]
            if self._journal is not None:
                self._journal.append("remove_edges", {
                    "edges": [[source for source, _ in pairs],
                              [destination for _, destination in pairs]],
                })

    def update_features(self, nodes: np.ndarray, features: np.ndarray) -> None:
        """Replace the feature rows of ``nodes`` (shape ``(len(nodes), F)``)."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape != (nodes.shape[0], self.num_features):
            raise ValueError(
                f"expected features of shape {(nodes.shape[0], self.num_features)}, "
                f"got {features.shape}")
        with self._lock:
            flushed_rows = self._features.shape[0]
            for position, node in enumerate(nodes):
                node = self._check_node(node)
                if node < flushed_rows:
                    self._features[node] = features[position]
                else:
                    # The node is journaled but not yet flushed: patch the
                    # pending block it lives in.
                    offset = node - flushed_rows
                    for block in self._pending_new_features:
                        if offset < block.shape[0]:
                            block[offset] = features[position]
                            break
                        offset -= block.shape[0]
                self._pending_features.add(int(node))
            if self._journal is not None:
                self._journal.append("update_features", {
                    "nodes": [int(node) for node in nodes],
                    "features": features.tolist(),
                })

    # ------------------------------------------------------------------
    # Flush: apply the journal incrementally
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """Whether mutations are journaled but not yet flushed."""
        return bool(self._pending_structure or self._pending_features
                    or self._pending_new_features)

    def flush(self) -> Optional[MutationDelta]:
        """Apply journaled mutations to the operator masters.

        Returns the :class:`MutationDelta` describing what changed, or
        ``None`` if nothing was pending.  Only the touched rows and columns
        are recomputed: degrees for the mutated endpoints, ``sym`` entries
        in their rows and columns, ``rw``/``raw`` entries in their rows.
        Untouched rows are block-copied into the fresh arrays, so their
        bytes provably cannot drift from a from-scratch rebuild.
        """
        with self._lock:
            if not self.dirty:
                return None
            old_num_nodes = self._raw_indptr.shape[0] - 1
            if self._pending_new_features:
                self._features = np.concatenate(
                    [self._features] + self._pending_new_features, axis=0)
                self._pending_new_features = []
            structure_rows = np.asarray(sorted(self._pending_structure), dtype=np.int64)
            feature_rows = np.asarray(sorted(self._pending_features), dtype=np.int64)
            self._pending_structure = set()
            self._pending_features = set()
            structure_changed = structure_rows.size > 0
            if structure_changed:
                operator_rows = self._apply_structure(structure_rows, old_num_nodes)
                self.structure_version += 1
            else:
                empty = np.empty(0, dtype=np.int64)
                operator_rows = {"sym": empty, "rw": empty, "raw": empty}
            self.version += 1
            return MutationDelta(
                old_num_nodes=old_num_nodes,
                num_nodes=self._num_nodes,
                structure_changed=structure_changed,
                structure_rows=structure_rows,
                operator_rows=operator_rows,
                feature_rows=feature_rows,
            )

    def _row_content(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """Canonical (sorted columns, weights) for one raw adjacency row."""
        neighbors = self._neighbors[row]
        if not neighbors:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        columns = np.asarray(sorted(neighbors), dtype=np.int64)
        weights = np.asarray([neighbors[int(c)] for c in columns], dtype=np.float64)
        return columns, weights

    def _apply_structure(self, dirty_rows: np.ndarray,
                         old_num_nodes: int) -> Dict[str, np.ndarray]:
        """Splice dirty rows into every operator; return per-kind changed rows."""
        new_num_nodes = self._num_nodes
        raw_replacements: Dict[int, Tuple[np.ndarray, ...]] = {}
        loop_replacements: Dict[int, Tuple[np.ndarray, ...]] = {}
        rw_replacements: Dict[int, Tuple[np.ndarray, ...]] = {}
        for row in dirty_rows.tolist():
            columns, weights = self._row_content(row)
            raw_replacements[row] = (columns, weights)
            diagonal = np.searchsorted(columns, row)
            if diagonal < columns.shape[0] and columns[diagonal] == row:
                # A pre-existing self-loop: add_self_loops replaces its
                # weight with 1.0 (mutations cannot create this case, but a
                # seed graph may carry explicit diagonal entries).
                loop_columns = columns
                loop_weights = weights.copy()
                loop_weights[diagonal] = 1.0
            else:
                loop_columns = np.insert(columns, diagonal, row)
                loop_weights = np.insert(weights, diagonal, 1.0)
            loop_replacements[row] = (loop_columns, loop_weights)
        # Raw operator: structure and values change only in the dirty rows.
        raw_indptr, raw_spliced = _splice_rows(
            self._raw_indptr, (self._raw_indices, self._raw_data),
            dirty_rows, raw_replacements, new_num_nodes)
        self._raw_indptr = raw_indptr
        self._raw_indices, self._raw_data = raw_spliced
        old_loop_indptr = self._loop_indptr
        old_sym = self._sym_data
        placeholder = {row: (cols, data, data)  # sym slot recomputed below
                       for row, (cols, data) in loop_replacements.items()}
        loop_indptr, loop_spliced = _splice_rows(
            old_loop_indptr, (self._loop_indices, self._loop_data, old_sym),
            dirty_rows, placeholder, new_num_nodes)
        self._loop_indptr = loop_indptr
        self._loop_indices, self._loop_data, self._sym_data = loop_spliced
        self._loop_rows = np.repeat(np.arange(new_num_nodes, dtype=np.int64),
                                    np.diff(self._loop_indptr))
        # Degrees change only for the dirty rows; the row-sliced sum is
        # bit-identical to the full ``(A+I).sum(axis=1)`` of a rebuild.
        loop = sp.csr_matrix(
            (self._loop_data, self._loop_indices, self._loop_indptr),
            shape=(new_num_nodes, new_num_nodes))
        degree = np.empty(new_num_nodes, dtype=np.float64)
        degree[:old_num_nodes] = self._degree[:old_num_nodes]
        degree[dirty_rows] = np.asarray(loop[dirty_rows].sum(axis=1)).reshape(-1)
        self._degree = degree
        safe = np.maximum(degree[dirty_rows], _DEGREE_FLOOR)
        inv_sqrt = np.empty(new_num_nodes, dtype=np.float64)
        inv_sqrt[:old_num_nodes] = self._inv_sqrt[:old_num_nodes]
        inv_sqrt[dirty_rows] = 1.0 / np.sqrt(safe)
        self._inv_sqrt = inv_sqrt
        inv = np.empty(new_num_nodes, dtype=np.float64)
        inv[:old_num_nodes] = self._inv[:old_num_nodes]
        inv[dirty_rows] = 1.0 / safe
        self._inv = inv
        # Delta re-normalisation of sym: entries in the dirty rows (row
        # factor and possibly structure changed) plus entries whose *column*
        # degree changed.  Everything else keeps its spliced bytes.
        in_rows = np.isin(self._loop_rows, dirty_rows)
        in_columns = np.isin(self._loop_indices, dirty_rows)
        positions = np.flatnonzero(in_rows | in_columns)
        self._sym_data[positions] = (
            (self._inv_sqrt[self._loop_rows[positions]] * self._loop_data[positions])
            * self._inv_sqrt[self._loop_indices[positions]])
        sym_rows = np.unique(self._loop_rows[positions])
        # rw depends on the row degree only: splice the dirty rows with
        # their reversed layout, keep every other row's bytes.
        for row in dirty_rows.tolist():
            loop_columns, loop_weights = loop_replacements[row]
            row_data = self._inv[row] * loop_weights
            rw_replacements[row] = (loop_columns[::-1], row_data[::-1])
        # The rw arrays share the loop row lengths, so splice against the
        # *old* loop indptr (the rw arrays are still aligned to it).
        self._rw_indices, self._rw_data = _splice_rows(
            old_loop_indptr, (self._rw_indices, self._rw_data),
            dirty_rows, rw_replacements, new_num_nodes)[1]
        _freeze(self._raw_indptr, self._raw_indices, self._raw_data,
                self._loop_indptr, self._loop_indices, self._loop_data,
                self._loop_rows, self._sym_data, self._rw_indices, self._rw_data)
        return {"sym": sym_rows, "rw": dirty_rows, "raw": dirty_rows}

    # ------------------------------------------------------------------
    # Views of the current state
    # ------------------------------------------------------------------
    def operator(self, kind: str) -> sp.csr_matrix:
        """The current float64 master for ``kind`` (frozen, zero-copy).

        ``sym``/``rw``/``raw`` match :func:`normalized_adjacency` on the
        current adjacency bit for bit (``rw`` including its reverse-sorted
        row layout).  Call :meth:`flush` first; this accessor refuses to
        serve a stale view while mutations are journaled.
        """
        if self.dirty:
            raise RuntimeError(
                "graph has unflushed mutations; call flush() before reading operators")
        num_nodes = self._raw_indptr.shape[0] - 1
        shape = (num_nodes, num_nodes)
        if kind == "raw":
            matrix = sp.csr_matrix(shape, dtype=np.float64)
            matrix.indptr = self._raw_indptr
            matrix.indices = self._raw_indices
            matrix.data = self._raw_data
            return matrix
        if kind == "sym":
            data = self._sym_data
            indices = self._loop_indices
        elif kind == "rw":
            data = self._rw_data
            indices = self._rw_indices
        else:
            raise ValueError(f"unknown operator kind {kind!r}")
        matrix = sp.csr_matrix(shape, dtype=np.float64)
        matrix.indptr = self._loop_indptr
        matrix.indices = indices
        matrix.data = data
        return matrix

    def loop_structure(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triplets (rows, cols, float64 weights) of ``A + I``.

        This is exactly ``add_self_loops(adjacency).tocoo()`` — the
        symmetrised edge list with self-loops the attention layers consume.
        """
        if self.dirty:
            raise RuntimeError(
                "graph has unflushed mutations; call flush() before reading structure")
        return self._loop_rows, self._loop_indices, self._loop_data

    def features64(self) -> np.ndarray:
        """The float64 feature master (flushed nodes only; do not mutate)."""
        if self.dirty:
            raise RuntimeError(
                "graph has unflushed mutations; call flush() before reading features")
        return self._features

    def snapshot(self, name: Optional[str] = None) -> Graph:
        """An ordinary :class:`Graph` equal to the current state.

        Built under a float64 compute-dtype scope so the snapshot carries
        the lossless feature masters regardless of the ambient dtype policy
        — scoring this snapshot from scratch is the differential-testing
        reference the incremental operators are held to.
        """
        with self._lock:
            self.flush()
            coo = self.operator("raw").tocoo()
            edge_index = np.vstack([coo.row.astype(np.int64),
                                    coo.col.astype(np.int64)])
            with compute_dtype_scope("float64"):
                return Graph(
                    edge_index=edge_index,
                    features=self._features.copy(),
                    labels=self._labels_for(self._num_nodes),
                    edge_weight=np.asarray(coo.data, dtype=np.float64).copy(),
                    directed=self.directed,
                    num_classes=self.num_classes,
                    name=name or f"{self.name}-v{self.version}",
                )

    # ------------------------------------------------------------------
    # Durability: recovery and checkpointing (repro.resilience.wal)
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, journal_dir: str,
                fsync: bool = False) -> Tuple["MutableServingGraph", RecoveryReport]:
        """Rebuild a serving graph from its journal after a crash.

        Loads the committed snapshot (checksum-verified), replays every WAL
        record past its sequence, and re-attaches the journal for further
        appends.  The recovered graph is **bit-identical** to the one the
        crashed process held: incremental operator maintenance is
        flush-batching independent, so replaying the whole tail reproduces
        the same operator bytes the original mutation schedule did.  A torn
        final record (crash mid-append) is dropped and reported; corruption
        anywhere else raises :class:`~repro.resilience.wal.JournalError`.
        """
        journal = WriteAheadJournal(journal_dir, fsync=fsync)
        graph, snapshot_seq = journal.read_snapshot()
        instance = cls(graph)  # journal not yet attached: replay must not re-append
        records, report = journal.recover_records(snapshot_seq)
        for record in records:
            instance._apply_record(record)
        instance._journal = journal
        return instance, report

    def _apply_record(self, record: Dict[str, object]) -> None:
        """Replay one WAL record through the public mutation API."""
        op = record.get("op")
        if op == "add_nodes":
            self.add_nodes(np.asarray(record["features"], dtype=np.float64))
        elif op == "add_edges":
            sources, destinations = record["edges"]
            self.add_edges(
                np.asarray([sources, destinations], dtype=np.int64),
                np.asarray(record["weights"], dtype=np.float64))
        elif op == "remove_edges":
            sources, destinations = record["edges"]
            self.remove_edges(np.asarray([sources, destinations], dtype=np.int64))
        elif op == "update_features":
            self.update_features(
                np.asarray(record["nodes"], dtype=np.int64),
                np.asarray(record["features"], dtype=np.float64))
        else:
            raise JournalError(
                f"journal record seq {record.get('seq')} carries unknown "
                f"op {op!r}")

    def checkpoint(self) -> None:
        """Fold the WAL into a fresh snapshot and truncate it.

        Bounds recovery time after long uptimes; crash-safe in every window
        (see :meth:`WriteAheadJournal.checkpoint
        <repro.resilience.wal.WriteAheadJournal.checkpoint>`).
        """
        if self._journal is None:
            raise RuntimeError("this graph has no journal to checkpoint")
        with self._lock:
            self._journal.checkpoint(self.snapshot())

    def journal_info(self) -> Optional[Dict[str, object]]:
        """Health view of the journal (``None`` when durability is off)."""
        if self._journal is None:
            return None
        return {"directory": self._journal.directory,
                "fsync": self._journal.fsync}

    def close(self) -> None:
        """Release the journal's append handle (no-op without a journal)."""
        if self._journal is not None:
            self._journal.close()

    def _labels_for(self, num_nodes: int) -> np.ndarray:
        if self._labels.shape[0] < num_nodes:
            grown = np.full(num_nodes, -1, dtype=np.int64)
            grown[:self._labels.shape[0]] = self._labels
            self._labels = grown
        return self._labels.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (f"MutableServingGraph(name={self.name!r}, nodes={self.num_nodes}, "
                f"entries={self.num_edges}, version={self.version})")
