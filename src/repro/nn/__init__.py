"""Graph neural network layers and the candidate model zoo.

Layout
------
``repro.nn.data``
    :class:`GraphTensors` — the pre-processed, autograd-ready view of a
    :class:`~repro.graph.Graph` (feature tensor plus normalised adjacencies)
    consumed by every layer and model.
``repro.nn.layers``
    Message-passing layers grouped by aggregator family (convolutional,
    attention, sampling/spatial, deep/residual), mirroring the families the
    paper enumerates in Section IV-B1.
``repro.nn.models``
    Full node-classification models built from those layers.  Every model
    subclasses :class:`~repro.nn.models.base.GNNModel`, which exposes the
    per-layer hidden states needed by graph self-ensemble (Eqn 2).
``repro.nn.model_zoo``
    The registry of >20 candidate architectures ranked by proxy evaluation.
"""

from repro.nn.data import GraphTensors
from repro.nn.models.base import GNNModel
from repro.nn.model_zoo import (
    MODEL_ZOO,
    ModelSpec,
    available_models,
    build_model,
    get_model_spec,
    register_model,
)

__all__ = [
    "GraphTensors",
    "GNNModel",
    "MODEL_ZOO",
    "ModelSpec",
    "available_models",
    "build_model",
    "get_model_spec",
    "register_model",
]
