"""Pre-processed graph views consumed by the neural network layers.

Building the normalised adjacency matrices is the most expensive part of a
forward pass to repeat, so :class:`GraphTensors` computes the commonly used
propagation operators once per graph (symmetric-normalised, random-walk
normalised, and the raw weighted adjacency) together with the edge list in
destination-sorted order for the scatter-based attention layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.dtype import compute_dtype
from repro.autograd.kernels import RelationBlock
from repro.autograd.sparse import SparseTensor
from repro.autograd.tensor import Tensor
from repro.graph.batching import GraphBatch
from repro.graph.graph import Graph
from repro.graph import normalize as _norm
from repro.parallel.cache import compute_cache, csr_fingerprint, ndarray_fingerprint


@dataclass
class GraphTensors:
    """Autograd-ready tensors for one graph (or one block-diagonal batch)."""

    features: Tensor
    adj_sym: SparseTensor
    adj_rw: SparseTensor
    adj_raw: SparseTensor
    edge_index: np.ndarray
    edge_weight: np.ndarray
    num_nodes: int
    num_features: int
    graph_id: Optional[np.ndarray] = None
    num_graphs: int = 1
    #: Whether derived operators (``A^k X``) may be memoised in the
    #: process-wide ComputeCache.  Sub-graph batch views set this False:
    #: every sampled batch is unique, so global caching is pure churn.
    cache_derived: bool = True
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphTensors":
        if cls is GraphTensors and getattr(graph, "relations", None) is not None:
            # Typed graphs get the relation-blocked view; the duck check
            # keeps the hetero subsystem out of the homogeneous import path.
            from repro.graph.hetero import HeteroGraph, HeteroGraphTensors
            if isinstance(graph, HeteroGraph):
                return HeteroGraphTensors.from_hetero(graph)
        adj = _norm.build_adjacency(graph.edge_index, graph.num_nodes,
                                    edge_weight=graph.edge_weight,
                                    make_undirected=not graph.directed)
        return cls._from_adjacency(adj, graph.features, graph.edge_index, graph.edge_weight)

    @classmethod
    def from_batch(cls, batch: GraphBatch) -> "GraphTensors":
        adj = _norm.build_adjacency(batch.edge_index, batch.num_nodes,
                                    edge_weight=batch.edge_weight,
                                    make_undirected=not batch.directed)
        tensors = cls._from_adjacency(adj, batch.features, batch.edge_index, batch.edge_weight)
        tensors.graph_id = batch.graph_id
        tensors.num_graphs = batch.num_graphs
        return tensors

    @classmethod
    def from_subgraph(cls, batch, features) -> "GraphTensors":
        """View of one sampled :class:`~repro.graph.batching.SubgraphBatch`.

        ``features`` is the **full graph's** feature matrix (ndarray or
        ``Tensor``); the batch's sampled rows are sliced out.  The sampler
        stores both directions of every undirected edge, so no further
        symmetrisation is applied.  Unlike :meth:`from_graph` the normalised
        operators are built *without* the process-wide cache: every sampled
        batch is structurally unique, so content-hashing and LRU insertion
        would be pure overhead (and would evict genuinely shared entries).
        """
        if isinstance(features, Tensor):
            features = features.data
        adj = _norm.build_adjacency(batch.edge_index, batch.num_nodes,
                                    edge_weight=batch.edge_weight,
                                    make_undirected=False)
        tensors = cls._from_adjacency(adj, features[batch.nodes],
                                      batch.edge_index, batch.edge_weight,
                                      use_cache=False)
        tensors.cache_derived = False
        return tensors

    @classmethod
    def _from_adjacency(cls, adj: sp.csr_matrix, features: np.ndarray,
                        edge_index: np.ndarray, edge_weight: np.ndarray,
                        use_cache: bool = True) -> "GraphTensors":
        dtype = compute_dtype()
        if use_cache:
            cache = compute_cache()
            adj_fp = csr_fingerprint(adj)
            # The cache stores one normalised operator per (kind, dtype) so
            # float32 and float64 views of the same graph never collide — and a
            # float32 run aliases read-only float32 CSRs straight into
            # ``SparseTensor`` instead of re-casting per view.
            sym = cache.normalized_adjacency(adj, normalization="sym", self_loops=True,
                                             fingerprint=adj_fp, dtype=dtype)
            rw = cache.normalized_adjacency(adj, normalization="rw", self_loops=True,
                                            fingerprint=adj_fp, dtype=dtype)
            raw = cache.normalized_adjacency(adj, normalization="none", self_loops=False,
                                             fingerprint=adj_fp, dtype=dtype)
        else:
            # All three operators are built eagerly even though a given
            # model reads only one; after the vectorised add_self_loops
            # they are a small slice of per-batch cost (~50ms total on a
            # 50k-node batch vs ~500ms forward/backward), so lazy fields
            # are not worth the property indirection on this dataclass.
            sym = _norm.normalized_adjacency(adj, normalization="sym",
                                             self_loops=True).astype(dtype)
            rw = _norm.normalized_adjacency(adj, normalization="rw",
                                            self_loops=True).astype(dtype)
            raw = adj.astype(dtype)
            # Freeze the batch-local operators so SparseTensor aliases them
            # zero-copy (it only aliases read-only CSRs) — nothing else
            # holds a reference to these matrices.
            for operator in (sym, rw, raw):
                operator.data.setflags(write=False)
        # Attention layers operate on the symmetrised edge list with self loops.
        sym_structure = _norm.add_self_loops(adj).tocoo()
        undirected_edges = np.vstack([sym_structure.row, sym_structure.col])
        undirected_weights = sym_structure.data
        return cls(
            features=Tensor(np.asarray(features, dtype=dtype)),
            adj_sym=SparseTensor(sym),
            adj_rw=SparseTensor(rw),
            adj_raw=SparseTensor(raw),
            edge_index=undirected_edges.astype(np.int64),
            edge_weight=np.asarray(undirected_weights, dtype=dtype),
            num_nodes=int(features.shape[0]),
            num_features=int(features.shape[1]),
        )

    # ------------------------------------------------------------------
    # Cached derived operators
    # ------------------------------------------------------------------
    def propagation(self, kind: str) -> SparseTensor:
        """Return the requested propagation operator ("sym", "rw" or "raw")."""
        if kind == "sym":
            return self.adj_sym
        if kind == "rw":
            return self.adj_rw
        if kind == "raw":
            return self.adj_raw
        raise ValueError(f"unknown propagation operator {kind!r}")

    # ------------------------------------------------------------------
    # Relation-blocked interface (single implicit relation).
    # ``HeteroGraphTensors`` overrides all three with per-relation blocks;
    # relational layers are written against this interface only, so they
    # run on homogeneous graphs as the one-relation degenerate case.
    # ------------------------------------------------------------------
    @property
    def num_relations(self) -> int:
        """Number of canonical relations (always 1 for homogeneous views)."""
        return 1

    def relation_operator(self, relation_id: int, kind: str) -> SparseTensor:
        """Propagation operator of one relation — here the union operator."""
        if relation_id != 0:
            raise IndexError(
                f"homogeneous view has a single relation, got id {relation_id}")
        return self.propagation(kind)

    def relation_block(self, relation_id: int) -> RelationBlock:
        """Edge-parallel view of one relation — here the full edge list.

        Built from the same self-looped symmetrised ``edge_index`` /
        ``edge_weight`` the attention layers consume, so gspmm/gsddmm over
        this block are bit-compatible with the scatter-based homogeneous
        path.  Memoised per view.
        """
        if relation_id != 0:
            raise IndexError(
                f"homogeneous view has a single relation, got id {relation_id}")
        key = "relation_block:0"
        if key not in self.extras:
            self.extras[key] = RelationBlock(
                self.edge_index[0], self.edge_index[1], self.num_nodes,
                edge_weight=self.edge_weight)
        return self.extras[key]  # type: ignore[return-value]

    def features_fingerprint(self) -> str:
        """Content hash of the feature matrix, memoised per view."""
        key = "fingerprint:features"
        if key not in self.extras:
            self.extras[key] = ndarray_fingerprint(self.features.data)
        return self.extras[key]  # type: ignore[return-value]

    def powered_features(self, kind: str, power: int) -> Tensor:
        """Return ``A^power X`` with caching (used by SGC/SIGN-style models).

        The product is memoised both on this view (``extras``) and in the
        process-wide :class:`~repro.parallel.cache.ComputeCache`, so replicas
        and bagging splits trained concurrently on the same graph share one
        propagation instead of each recomputing ``power`` sparse matmuls.
        """
        key = f"powered:{kind}:{power}"
        if key not in self.extras:
            operator = self.propagation(kind)

            def compute() -> np.ndarray:
                current = self.features.data
                for _ in range(power):
                    current = operator.matrix @ current
                return current

            if self.cache_derived:
                data = compute_cache().powered_features(
                    operator.fingerprint, self.features_fingerprint(), power, compute)
            else:
                # Sub-graph batch views: memoise on this view only — the
                # batch is never seen again, so hashing it into the global
                # cache would cost fingerprints and evict shared entries.
                data = compute()
            self.extras[key] = Tensor(data)
        return self.extras[key]  # type: ignore[return-value]

    def edge_scatter(self, which: str) -> sp.csr_matrix:
        """CSR operator summing per-edge values into their ``src``/``dst`` node.

        ``S[node, edge] = 1`` for every edge whose chosen endpoint is
        ``node``; ``S @ edge_values`` then performs the scatter-sum that the
        attention layers otherwise pay ``np.add.at`` for (an order of
        magnitude slower — ``np.ufunc.at`` is unbuffered and unvectorised).
        Within a node the CSR product accumulates contributions in edge-id
        order, exactly like ``np.add.at``, so results are bit-identical.
        Built once per view and memoised in ``extras``.
        """
        if which not in {"src", "dst"}:
            raise ValueError("which must be 'src' or 'dst'")
        key = f"edge_scatter:{which}"
        if key not in self.extras:
            index = self.edge_index[0 if which == "src" else 1]
            num_edges = index.shape[0]
            matrix = sp.csr_matrix(
                (np.ones(num_edges, dtype=self.features.data.dtype),
                 (index, np.arange(num_edges))),
                shape=(self.num_nodes, num_edges))
            self.extras[key] = matrix
        return self.extras[key]  # type: ignore[return-value]

    def with_features(self, features: Tensor) -> "GraphTensors":
        """A copy of this view with substituted node features (same structure)."""
        return GraphTensors(
            features=features,
            adj_sym=self.adj_sym,
            adj_rw=self.adj_rw,
            adj_raw=self.adj_raw,
            edge_index=self.edge_index,
            edge_weight=self.edge_weight,
            num_nodes=self.num_nodes,
            num_features=int(features.shape[1]),
            graph_id=self.graph_id,
            num_graphs=self.num_graphs,
            cache_derived=self.cache_derived,
        )
