"""Pre-processed graph views consumed by the neural network layers.

Building the normalised adjacency matrices is the most expensive part of a
forward pass to repeat, so :class:`GraphTensors` computes the commonly used
propagation operators once per graph (symmetric-normalised, random-walk
normalised, and the raw weighted adjacency) together with the edge list in
destination-sorted order for the scatter-based attention layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import SparseTensor
from repro.autograd.tensor import Tensor
from repro.graph.batching import GraphBatch
from repro.graph.graph import Graph
from repro.graph import normalize as _norm


@dataclass
class GraphTensors:
    """Autograd-ready tensors for one graph (or one block-diagonal batch)."""

    features: Tensor
    adj_sym: SparseTensor
    adj_rw: SparseTensor
    adj_raw: SparseTensor
    edge_index: np.ndarray
    edge_weight: np.ndarray
    num_nodes: int
    num_features: int
    graph_id: Optional[np.ndarray] = None
    num_graphs: int = 1
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphTensors":
        adj = _norm.build_adjacency(graph.edge_index, graph.num_nodes,
                                    edge_weight=graph.edge_weight,
                                    make_undirected=not graph.directed)
        return cls._from_adjacency(adj, graph.features, graph.edge_index, graph.edge_weight)

    @classmethod
    def from_batch(cls, batch: GraphBatch) -> "GraphTensors":
        adj = _norm.build_adjacency(batch.edge_index, batch.num_nodes,
                                    edge_weight=batch.edge_weight,
                                    make_undirected=not batch.directed)
        tensors = cls._from_adjacency(adj, batch.features, batch.edge_index, batch.edge_weight)
        tensors.graph_id = batch.graph_id
        tensors.num_graphs = batch.num_graphs
        return tensors

    @classmethod
    def _from_adjacency(cls, adj: sp.csr_matrix, features: np.ndarray,
                        edge_index: np.ndarray, edge_weight: np.ndarray) -> "GraphTensors":
        sym = _norm.normalized_adjacency(adj, normalization="sym", self_loops=True)
        rw = _norm.normalized_adjacency(adj, normalization="rw", self_loops=True)
        raw = _norm.normalized_adjacency(adj, normalization="none", self_loops=False)
        # Attention layers operate on the symmetrised edge list with self loops.
        sym_structure = _norm.add_self_loops(adj).tocoo()
        undirected_edges = np.vstack([sym_structure.row, sym_structure.col])
        undirected_weights = sym_structure.data
        return cls(
            features=Tensor(np.asarray(features, dtype=np.float64)),
            adj_sym=SparseTensor(sym),
            adj_rw=SparseTensor(rw),
            adj_raw=SparseTensor(raw),
            edge_index=undirected_edges.astype(np.int64),
            edge_weight=np.asarray(undirected_weights, dtype=np.float64),
            num_nodes=int(features.shape[0]),
            num_features=int(features.shape[1]),
        )

    # ------------------------------------------------------------------
    # Cached derived operators
    # ------------------------------------------------------------------
    def propagation(self, kind: str) -> SparseTensor:
        """Return the requested propagation operator ("sym", "rw" or "raw")."""
        if kind == "sym":
            return self.adj_sym
        if kind == "rw":
            return self.adj_rw
        if kind == "raw":
            return self.adj_raw
        raise ValueError(f"unknown propagation operator {kind!r}")

    def powered_features(self, kind: str, power: int) -> Tensor:
        """Return ``A^power X`` with caching (used by SGC/SIGN-style models)."""
        key = f"powered:{kind}:{power}"
        if key not in self.extras:
            operator = self.propagation(kind)
            current = self.features.data
            for _ in range(power):
                current = operator.matrix @ current
            self.extras[key] = Tensor(current)
        return self.extras[key]  # type: ignore[return-value]

    def with_features(self, features: Tensor) -> "GraphTensors":
        """A copy of this view with substituted node features (same structure)."""
        return GraphTensors(
            features=features,
            adj_sym=self.adj_sym,
            adj_rw=self.adj_rw,
            adj_raw=self.adj_raw,
            edge_index=self.edge_index,
            edge_weight=self.edge_weight,
            num_nodes=self.num_nodes,
            num_features=int(features.shape[1]),
            graph_id=self.graph_id,
            num_graphs=self.num_graphs,
        )
