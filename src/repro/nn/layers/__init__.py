"""Message-passing layers grouped by aggregator family."""

from repro.nn.layers.convolutional import ARMAConv, ChebConv, GCNConv, SGConv, TAGConv
from repro.nn.layers.spatial import GatedGraphConv, GINConv, GraphConv, SAGEConv
from repro.nn.layers.attention import AGNNConv, GATConv
from repro.nn.layers.relational import RGATConv, RGCNConv
from repro.nn.layers.deep import (
    APPNPPropagation,
    DAGNNPropagation,
    GCNIIConv,
    JumpingKnowledge,
    MixHopConv,
)

__all__ = [
    "GCNConv",
    "SGConv",
    "TAGConv",
    "ChebConv",
    "ARMAConv",
    "SAGEConv",
    "GINConv",
    "GraphConv",
    "GatedGraphConv",
    "GATConv",
    "AGNNConv",
    "RGCNConv",
    "RGATConv",
    "GCNIIConv",
    "APPNPPropagation",
    "DAGNNPropagation",
    "JumpingKnowledge",
    "MixHopConv",
]
