"""Attention-based aggregators.

* :class:`GATConv` — multi-head graph attention (Velickovic et al.) using the
  scatter/segment-softmax primitives of the autograd engine, so attention
  coefficients are computed per edge without materialising dense ``n x n``
  score matrices.
* :class:`AGNNConv` — the attention-based propagation of Thekumparampil et
  al. with a single learnable temperature over cosine similarities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.module import Module, Parameter
from repro.autograd.modules import Linear
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors


class GATConv(Module):
    """Multi-head graph attention with LeakyReLU-scored additive attention."""

    def __init__(self, in_features: int, out_features: int, heads: int = 4,
                 concat_heads: bool = True, negative_slope: float = 0.2,
                 attention_dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if concat_heads and out_features % heads != 0:
            raise ValueError("out_features must be divisible by the number of heads when concatenating")
        self.heads = heads
        self.concat_heads = concat_heads
        self.head_dim = out_features // heads if concat_heads else out_features
        self.negative_slope = negative_slope
        self.attention_dropout = attention_dropout
        self._rng = rng if rng is not None else np.random.default_rng()
        self.linear = Linear(in_features, self.heads * self.head_dim, bias=False, rng=rng)
        self.att_src = Parameter(init.glorot_uniform((self.heads, self.head_dim), rng=rng))
        self.att_dst = Parameter(init.glorot_uniform((self.heads, self.head_dim), rng=rng))
        self.bias = Parameter(init.zeros((out_features if concat_heads else self.head_dim,)))

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        src, dst = data.edge_index
        num_nodes = data.num_nodes
        # Cached CSR scatter operators: every per-edge reduction below runs
        # as one sparse matmul instead of an unbuffered ``np.add.at``.
        src_scatter = data.edge_scatter("src")
        dst_scatter = data.edge_scatter("dst")

        transformed = self.linear(x).reshape(num_nodes, self.heads, self.head_dim)
        score_src = (transformed * self.att_src).sum(axis=-1)  # (n, heads)
        score_dst = (transformed * self.att_dst).sum(axis=-1)  # (n, heads)

        edge_scores = F.index_select(score_src, src, scatter=src_scatter) \
            + F.index_select(score_dst, dst, scatter=dst_scatter)
        edge_scores = F.leaky_relu(edge_scores, self.negative_slope)
        attention = F.segment_softmax(edge_scores, dst, num_nodes,
                                      aggregate=dst_scatter)  # (E, heads)
        if self.attention_dropout > 0:
            attention = F.dropout(attention, self.attention_dropout, training=self.training,
                                  rng=self._rng)

        messages = F.index_select(transformed, src, scatter=src_scatter)  # (E, heads, dim)
        weighted = messages * attention.reshape(attention.shape[0], self.heads, 1)
        aggregated = F.scatter_add(weighted, dst, num_nodes,
                                   aggregate=dst_scatter)  # (n, heads, dim)

        if self.concat_heads:
            out = aggregated.reshape(num_nodes, self.heads * self.head_dim)
        else:
            out = aggregated.mean(axis=1)
        return out + self.bias

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        src, dst = data.edge_index
        num_nodes = data.num_nodes
        dst_scatter = data.edge_scatter("dst")

        transformed = self.linear.infer(x).reshape(num_nodes, self.heads, self.head_dim)
        score_src = (transformed * self.att_src.data).sum(axis=-1)
        score_dst = (transformed * self.att_dst.data).sum(axis=-1)

        edge_scores = score_src[src] + score_dst[dst]
        edge_scores = F._leaky_relu_array(edge_scores, self.negative_slope)
        attention = F.segment_softmax_array(edge_scores, dst, num_nodes,
                                            aggregate=dst_scatter)
        if self.attention_dropout > 0 and self.training:
            attention = F.dropout(Tensor(attention), self.attention_dropout,
                                  training=True, rng=self._rng).data

        weighted = transformed[src] * attention.reshape(attention.shape[0], self.heads, 1)
        aggregated = F.scatter_add_array(weighted, dst, num_nodes, aggregate=dst_scatter)

        if self.concat_heads:
            out = aggregated.reshape(num_nodes, self.heads * self.head_dim)
        else:
            # Match Tensor.mean (sum * 1/count) bit-for-bit.
            out = aggregated.sum(axis=1) * (1.0 / self.heads)
        return out + self.bias.data


class AGNNConv(Module):
    """Attention over cosine similarity with a learnable temperature ``beta``."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.beta = Parameter(np.ones(1))

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        src, dst = data.edge_index
        src_scatter = data.edge_scatter("src")
        dst_scatter = data.edge_scatter("dst")
        norms = ((x * x).sum(axis=-1, keepdims=True) + 1e-12) ** 0.5
        normalised = x * (norms ** -1.0)
        cos = (F.index_select(normalised, src, scatter=src_scatter)
               * F.index_select(normalised, dst, scatter=dst_scatter)).sum(axis=-1)
        scores = cos * self.beta
        attention = F.segment_softmax(scores, dst, data.num_nodes, aggregate=dst_scatter)
        messages = F.index_select(x, src, scatter=src_scatter) * attention.reshape(-1, 1)
        return F.scatter_add(messages, dst, data.num_nodes, aggregate=dst_scatter)

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        src, dst = data.edge_index
        dst_scatter = data.edge_scatter("dst")
        norms = ((x * x).sum(axis=-1, keepdims=True) + 1e-12) ** 0.5
        normalised = x * (norms ** -1.0)
        cos = (normalised[src] * normalised[dst]).sum(axis=-1)
        scores = cos * self.beta.data
        attention = F.segment_softmax_array(scores, dst, data.num_nodes,
                                            aggregate=dst_scatter)
        messages = x[src] * attention.reshape(-1, 1)
        return F.scatter_add_array(messages, dst, data.num_nodes, aggregate=dst_scatter)
