"""Spectral-flavoured convolutional aggregators.

* :class:`GCNConv` — Kipf & Welling graph convolution (symmetric-normalised
  propagation followed by a linear transform).
* :class:`SGConv` — Simplified Graph Convolution (Wu et al.): a K-th power of
  the propagation operator with a single linear layer.
* :class:`TAGConv` — Topology-Adaptive GCN (Du et al.): a learnable
  combination of the first K powers of the propagation operator.
* :class:`ChebConv` — Chebyshev spectral filters (Defferrard et al.).
* :class:`ARMAConv` — a single-stack ARMA filter (Bianchi et al.),
  implemented as the standard recursive approximation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import kernels
from repro.autograd.module import Module, ModuleList
from repro.autograd.modules import Linear
from repro.autograd.sparse import spmm
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors


class GCNConv(Module):
    """``H' = act(Â H W + b)`` with the symmetrically normalised adjacency ``Â``.

    The product runs through the fused :func:`~repro.autograd.kernels.
    spmm_bias_act` kernel, which picks ``Â (H W)`` or ``(Â H) W`` from the
    operand shapes and adds the bias after propagation (the standard GCNConv
    formulation).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 propagation: str = "sym", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)
        self.propagation = propagation

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        return self.forward_fused(x, data, activation=None)

    def forward_fused(self, x: Tensor, data: GraphTensors,
                      activation: Optional[str]) -> Tensor:
        """Fused conv + activation; ``StackedConvModel`` calls this hook when
        the model's activation is one the kernel can apply in place."""
        return kernels.spmm_bias_act(data.propagation(self.propagation), x,
                                     self.linear.weight, self.linear.bias,
                                     activation)

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        return self.infer_fused(x, data, activation=None)

    def infer_fused(self, x: np.ndarray, data: GraphTensors,
                    activation: Optional[str]) -> np.ndarray:
        operator = data.propagation(self.propagation)
        weight = self.linear.weight.data
        bias = None if self.linear.bias is None else self.linear.bias.data
        prop_first = kernels.propagate_first(operator, x.shape[-1], weight.shape[-1])
        out, _ = kernels.spmm_bias_act_forward(operator.matrix, x, weight, bias,
                                               activation, prop_first)
        return out


class SGConv(Module):
    """Simplified GCN: ``H' = Â^K X W`` (all nonlinearities removed)."""

    def __init__(self, in_features: int, out_features: int, hops: int = 2,
                 propagation: str = "sym", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.hops = hops
        self.propagation = propagation
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        operator = data.propagation(self.propagation)
        hidden = x
        for _ in range(self.hops):
            hidden = spmm(operator, hidden)
        return self.linear(hidden)

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        matrix = data.propagation(self.propagation).matrix
        for _ in range(self.hops):
            x = matrix @ x
        return self.linear.infer(x)


class TAGConv(Module):
    """Topology adaptive GCN: ``H' = sum_{k=0..K} Â^k X W_k``."""

    def __init__(self, in_features: int, out_features: int, hops: int = 3,
                 propagation: str = "sym", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.hops = hops
        self.propagation = propagation
        self.linears = ModuleList([
            Linear(in_features, out_features, rng=rng) for _ in range(hops + 1)
        ])

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        operator = data.propagation(self.propagation)
        hidden = x
        out = self.linears[0](hidden)
        for k in range(1, self.hops + 1):
            hidden = spmm(operator, hidden)
            out = out + self.linears[k](hidden)
        return out

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        matrix = data.propagation(self.propagation).matrix
        hidden = x
        out = self.linears[0].infer(hidden)
        for k in range(1, self.hops + 1):
            hidden = matrix @ hidden
            out += self.linears[k].infer(hidden)
        return out


class ChebConv(Module):
    """Chebyshev polynomial filters ``sum_k T_k(L~) X W_k`` of order ``K``."""

    def __init__(self, in_features: int, out_features: int, order: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if order < 1:
            raise ValueError("Chebyshev order must be >= 1")
        self.order = order
        self.linears = ModuleList([
            Linear(in_features, out_features, rng=rng) for _ in range(order)
        ])

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        # T_0 = X, T_1 = L~ X, T_k = 2 L~ T_{k-1} - T_{k-2}; the scaled
        # Laplacian is approximated by -Â (self-loops folded into the
        # normalisation), which is the standard simplification.
        operator = data.propagation("sym")
        t_prev_prev = x
        out = self.linears[0](t_prev_prev)
        if self.order == 1:
            return out
        t_prev = spmm(operator, x) * -1.0
        out = out + self.linears[1](t_prev)
        for k in range(2, self.order):
            t_curr = spmm(operator, t_prev) * -2.0 - t_prev_prev
            out = out + self.linears[k](t_curr)
            t_prev_prev, t_prev = t_prev, t_curr
        return out

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        matrix = data.propagation("sym").matrix
        t_prev_prev = x
        out = self.linears[0].infer(t_prev_prev)
        if self.order == 1:
            return out
        t_prev = (matrix @ x) * -1.0
        out += self.linears[1].infer(t_prev)
        for k in range(2, self.order):
            t_curr = (matrix @ t_prev) * -2.0 - t_prev_prev
            out += self.linears[k].infer(t_curr)
            t_prev_prev, t_prev = t_prev, t_curr
        return out


class ARMAConv(Module):
    """One ARMA_1 stack: ``H^{t+1} = act(Â H^t W + X V)`` iterated ``num_iterations`` times."""

    def __init__(self, in_features: int, out_features: int, num_iterations: int = 2,
                 propagation: str = "sym", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_iterations = num_iterations
        self.propagation = propagation
        self.input_linear = Linear(in_features, out_features, rng=rng)
        self.recurrent_linear = Linear(out_features, out_features, rng=rng)
        self.skip_linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        operator = data.propagation(self.propagation)
        hidden = F.relu(self.input_linear(x))
        skip = self.skip_linear(x)
        for _ in range(self.num_iterations):
            hidden = F.relu(self.recurrent_linear(spmm(operator, hidden)) + skip)
        return hidden

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        matrix = data.propagation(self.propagation).matrix
        hidden = F._relu_array(self.input_linear.infer(x))
        skip = self.skip_linear.infer(x)
        for _ in range(self.num_iterations):
            hidden = F._relu_array(self.recurrent_linear.infer(matrix @ hidden) + skip)
        return hidden
