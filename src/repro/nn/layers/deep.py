"""Layers for deep / decoupled propagation models.

* :class:`GCNIIConv` — GCNII convolution with initial residual and identity
  mapping (Chen et al.), enabling very deep models that capture long-range
  dependencies.
* :class:`APPNPPropagation` — personalised-PageRank propagation used by
  APPNP (Klicpera et al.) and by GRAND-style random propagation.
* :class:`DAGNNPropagation` — the adaptive-depth gated combination of
  propagated predictions from DAGNN (Liu et al.).
* :class:`JumpingKnowledge` — layer aggregation by concatenation or max
  (Xu et al.), the basis of JKNet.
* :class:`MixHopConv` — concatenated powers of the adjacency (Abu-El-Haija et
  al.) to mix neighbourhood information of several radii in a single layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.module import Module, ModuleList, Parameter
from repro.autograd.modules import Linear
from repro.autograd.sparse import spmm
from repro.autograd.tensor import Tensor
from repro.autograd import init
from repro.nn.data import GraphTensors


class GCNIIConv(Module):
    """``H' = act(((1-a) Â H + a H0)((1-b) I + b W))`` with layer-dependent ``b``."""

    def __init__(self, features: int, alpha: float = 0.1, beta: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.alpha = alpha
        self.beta = beta
        self.linear = Linear(features, features, bias=False, rng=rng)

    def forward(self, x: Tensor, initial: Tensor, data: GraphTensors) -> Tensor:
        propagated = spmm(data.adj_sym, x)
        support = propagated * (1.0 - self.alpha) + initial * self.alpha
        return support * (1.0 - self.beta) + self.linear(support) * self.beta

    def infer(self, x: np.ndarray, initial: np.ndarray, data: GraphTensors) -> np.ndarray:
        propagated = data.adj_sym.matrix @ x
        support = propagated * (1.0 - self.alpha) + initial * self.alpha
        return support * (1.0 - self.beta) + self.linear.infer(support) * self.beta


class APPNPPropagation(Module):
    """Personalised-PageRank propagation: ``Z^{t+1} = (1-a) Â Z^t + a Z^0``."""

    def __init__(self, num_iterations: int = 10, teleport: float = 0.1) -> None:
        super().__init__()
        self.num_iterations = num_iterations
        self.teleport = teleport

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        initial = x
        hidden = x
        for _ in range(self.num_iterations):
            hidden = spmm(data.adj_sym, hidden) * (1.0 - self.teleport) + initial * self.teleport
        return hidden

    def propagate_steps(self, x: Tensor, data: GraphTensors) -> List[Tensor]:
        """Return the intermediate propagation states (used for GSE layer aggregation)."""
        states = []
        initial = x
        hidden = x
        for _ in range(self.num_iterations):
            hidden = spmm(data.adj_sym, hidden) * (1.0 - self.teleport) + initial * self.teleport
            states.append(hidden)
        return states

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        return self.propagate_steps_array(x, data)[-1]

    def propagate_steps_array(self, x: np.ndarray, data: GraphTensors) -> List[np.ndarray]:
        """Raw-ndarray twin of :meth:`propagate_steps` (inference fast path)."""
        matrix = data.adj_sym.matrix
        states = []
        initial = x
        hidden = x
        for _ in range(self.num_iterations):
            hidden = (matrix @ hidden) * (1.0 - self.teleport) + initial * self.teleport
            states.append(hidden)
        return states


class DAGNNPropagation(Module):
    """Propagate predictions K hops and combine them with a learned gate."""

    def __init__(self, features: int, hops: int = 5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.hops = hops
        self.gate = Linear(features, 1, rng=rng)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        states = [x]
        hidden = x
        for _ in range(self.hops):
            hidden = spmm(data.adj_sym, hidden)
            states.append(hidden)
        stacked = F.stack(states, axis=1)  # (n, hops+1, features)
        gates = F.sigmoid(self.gate(stacked))  # (n, hops+1, 1)
        return (stacked * gates).sum(axis=1)


class JumpingKnowledge(Module):
    """Aggregate per-layer representations by concatenation or elementwise max."""

    def __init__(self, mode: str = "cat") -> None:
        super().__init__()
        if mode not in {"cat", "max", "mean"}:
            raise ValueError("mode must be one of 'cat', 'max', 'mean'")
        self.mode = mode

    def forward(self, layer_outputs: Sequence[Tensor]) -> Tensor:
        layer_outputs = list(layer_outputs)
        if self.mode == "cat":
            return F.concat(layer_outputs, axis=-1)
        stacked = F.stack(layer_outputs, axis=0)
        if self.mode == "max":
            return stacked.max(axis=0)
        return stacked.mean(axis=0)


class MixHopConv(Module):
    """Concatenate ``Â^p X W_p`` for powers ``p`` in ``powers``."""

    def __init__(self, in_features: int, out_features: int, powers: Sequence[int] = (0, 1, 2),
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.powers = tuple(powers)
        per_power = out_features // len(self.powers)
        remainder = out_features - per_power * len(self.powers)
        self.output_sizes = [per_power + (1 if i < remainder else 0) for i in range(len(self.powers))]
        self.linears = ModuleList([
            Linear(in_features, size, rng=rng) for size in self.output_sizes
        ])

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        outputs = []
        operator = data.adj_sym
        current = x
        max_power = max(self.powers)
        powered = {0: x}
        for power in range(1, max_power + 1):
            current = spmm(operator, current)
            powered[power] = current
        for linear, power in zip(self.linears, self.powers):
            outputs.append(linear(powered[power]))
        return F.concat(outputs, axis=-1)

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        matrix = data.adj_sym.matrix
        current = x
        powered = {0: x}
        for power in range(1, max(self.powers) + 1):
            current = matrix @ current
            powered[power] = current
        outputs = [linear.infer(powered[power])
                   for linear, power in zip(self.linears, self.powers)]
        return np.concatenate(outputs, axis=-1)
