"""Relation-typed aggregators for heterogeneous graphs.

* :class:`RGCNConv` — relational GCN (Schlichtkrull et al.): one propagation
  per canonical relation with per-relation weights, optionally shared through
  a basis decomposition.
* :class:`RGATConv` — relational GAT: independent multi-head attention per
  relation block, summed across relations.

Both layers are written against the relation-blocked interface of
:class:`~repro.nn.data.GraphTensors` (``num_relations`` /
``relation_operator`` / ``relation_block``), so a homogeneous view is simply
the one-relation degenerate case — and in that case both layers reproduce
:class:`~repro.nn.layers.convolutional.GCNConv` /
:class:`~repro.nn.layers.attention.GATConv` bit-for-bit: the same rng draws
in the same order at construction, the same cached propagation operator, and
per-edge kernels (:func:`~repro.autograd.kernels.gspmm` /
:func:`~repro.autograd.kernels.gsddmm`) whose forward and backward reduce
with the exact CSR scatter recipe of the homogeneous scatter primitives.

``num_relations`` is a *capacity*: parameter shapes depend only on it, never
on the data, so state dicts round-trip through ``FittedEnsemble.save/load``
regardless of which graph the model was fitted on.  A graph may use fewer
relations than the layer's capacity (unused weights simply get zero
gradient); more relations than capacity fail fast with context.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd import kernels
from repro.autograd.module import Module, ModuleList, Parameter
from repro.autograd.modules import Linear
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors


def _check_capacity(layer: Module, data: GraphTensors) -> int:
    """Validate the data's relation count against the layer's capacity."""
    num_relations = data.num_relations
    if num_relations > layer.num_relations:
        raise ValueError(
            f"{type(layer).__name__} was built with capacity for "
            f"{layer.num_relations} relation(s) but the graph declares "
            f"{num_relations}; rebuild the model with "
            f"num_relations >= {num_relations} (e.g. via the zoo override "
            f"build_model(..., num_relations={num_relations}))")
    return num_relations


class RGCNConv(Module):
    """Relational GCN: ``H' = act(sum_r Â_r H W_r + b)``.

    Each relation propagates through its own normalised adjacency block with
    its own weight matrix.  With ``num_bases=B`` the per-relation weights are
    shared through a basis decomposition ``W_r = sum_b c_{rb} V_b``
    (Schlichtkrull et al.), cutting parameters from ``R·in·out`` to
    ``B·in·out + R·B``.

    A single-relation graph runs the identical fused
    :func:`~repro.autograd.kernels.spmm_bias_act` call of
    :class:`~repro.nn.layers.convolutional.GCNConv` — same operator, same
    weight draw — so results are bit-for-bit equal.
    """

    def __init__(self, in_features: int, out_features: int, num_relations: int = 1,
                 num_bases: Optional[int] = None, bias: bool = True,
                 propagation: str = "sym", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        if num_bases is not None and not 1 <= num_bases <= num_relations:
            raise ValueError(
                f"num_bases must lie in [1, num_relations={num_relations}], "
                f"got {num_bases}")
        self.in_features = in_features
        self.out_features = out_features
        self.num_relations = num_relations
        self.num_bases = num_bases
        self.propagation = propagation
        if num_bases is None:
            # One glorot draw per relation, in relation order — for R=1 the
            # rng stream is exactly GCNConv's single Linear draw.
            self.linears = ModuleList([
                Linear(in_features, out_features, bias=False, rng=rng)
                for _ in range(num_relations)
            ])
        else:
            self.bases = Parameter(init.glorot_uniform(
                (num_bases, in_features * out_features), rng=rng))
            self.coefficients = Parameter(init.glorot_uniform(
                (num_relations, num_bases), rng=rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def relation_weight(self, relation_id: int) -> Tensor:
        """The effective ``(in, out)`` weight of one relation (Tensor path)."""
        if self.num_bases is None:
            return self.linears[relation_id].weight
        coefficient = F.index_select(self.coefficients,
                                     np.array([relation_id], dtype=np.int64))
        return (coefficient @ self.bases).reshape(self.in_features, self.out_features)

    def relation_weight_array(self, relation_id: int) -> np.ndarray:
        """Raw-ndarray twin of :meth:`relation_weight` (inference path)."""
        if self.num_bases is None:
            return self.linears[relation_id].weight.data
        return (self.coefficients.data[relation_id] @ self.bases.data) \
            .reshape(self.in_features, self.out_features)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        """Relation-wise graph convolution (no activation)."""
        return self.forward_fused(x, data, activation=None)

    def forward_fused(self, x: Tensor, data: GraphTensors,
                      activation: Optional[str]) -> Tensor:
        """Fused conv + activation (the ``StackedConvModel`` hook).

        The single-relation case takes GCNConv's exact fused kernel call;
        multi-relation graphs accumulate per-relation fused products (bias
        and activation deferred until after the sum).
        """
        num_relations = _check_capacity(self, data)
        if num_relations == 1:
            return kernels.spmm_bias_act(data.relation_operator(0, self.propagation),
                                         x, self.relation_weight(0), self.bias,
                                         activation)
        out = kernels.spmm_bias_act(data.relation_operator(0, self.propagation),
                                    x, self.relation_weight(0), None, None)
        for relation_id in range(1, num_relations):
            out = out + kernels.spmm_bias_act(
                data.relation_operator(relation_id, self.propagation),
                x, self.relation_weight(relation_id), None, None)
        if self.bias is not None:
            out = out + self.bias
        if activation not in (None, "identity", "none"):
            out = F.activation(activation)(out)
        return out

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        """Raw-ndarray twin of :meth:`forward` (inference path)."""
        return self.infer_fused(x, data, activation=None)

    def infer_fused(self, x: np.ndarray, data: GraphTensors,
                    activation: Optional[str]) -> np.ndarray:
        """Raw-ndarray twin of :meth:`forward_fused`."""
        num_relations = _check_capacity(self, data)
        bias = None if self.bias is None else self.bias.data
        if num_relations == 1:
            operator = data.relation_operator(0, self.propagation)
            weight = self.relation_weight_array(0)
            prop_first = kernels.propagate_first(operator, x.shape[-1], weight.shape[-1])
            out, _ = kernels.spmm_bias_act_forward(operator.matrix, x, weight, bias,
                                                   activation, prop_first)
            return out
        out = None
        for relation_id in range(num_relations):
            operator = data.relation_operator(relation_id, self.propagation)
            weight = self.relation_weight_array(relation_id)
            prop_first = kernels.propagate_first(operator, x.shape[-1], weight.shape[-1])
            term, _ = kernels.spmm_bias_act_forward(operator.matrix, x, weight, None,
                                                    None, prop_first)
            out = term if out is None else out + term
        if bias is not None:
            out = out + bias
        if activation not in (None, "identity", "none"):
            out = F.activation_array(activation)(out)
        return out


class _RelationAttention(Module):
    """Per-relation attention parameters of :class:`RGATConv`.

    Parameter creation order (linear weight, att_src, att_dst) mirrors
    :class:`~repro.nn.layers.attention.GATConv` so the single-relation rng
    stream is identical.
    """

    def __init__(self, in_features: int, heads: int, head_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, heads * head_dim, bias=False, rng=rng)
        self.att_src = Parameter(init.glorot_uniform((heads, head_dim), rng=rng))
        self.att_dst = Parameter(init.glorot_uniform((heads, head_dim), rng=rng))


class RGATConv(Module):
    """Relational multi-head graph attention.

    Attention runs independently within each relation block — scores, the
    per-destination segment softmax and the weighted aggregation never mix
    relations — and the per-relation head outputs are summed before the
    shared bias.  Per-edge compute uses the generalized kernels:
    :func:`~repro.autograd.kernels.gsddmm` for the additive score gather and
    :func:`~repro.autograd.kernels.gspmm` (``mul``/``sum``) for the
    attention-weighted aggregation.
    """

    def __init__(self, in_features: int, out_features: int, num_relations: int = 1,
                 heads: int = 4, concat_heads: bool = True, negative_slope: float = 0.2,
                 attention_dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        if concat_heads and out_features % heads != 0:
            raise ValueError("out_features must be divisible by the number of heads when concatenating")
        self.num_relations = num_relations
        self.heads = heads
        self.concat_heads = concat_heads
        self.head_dim = out_features // heads if concat_heads else out_features
        self.negative_slope = negative_slope
        self.attention_dropout = attention_dropout
        self._rng = rng if rng is not None else np.random.default_rng()
        self.relation_attention = ModuleList([
            _RelationAttention(in_features, self.heads, self.head_dim, rng=rng)
            for _ in range(num_relations)
        ])
        self.bias = Parameter(init.zeros(
            (out_features if concat_heads else self.head_dim,)))

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        """Relation-wise attention: gsddmm scores → softmax → gspmm aggregate.

        Each relation runs GATConv's exact compute sequence on its own
        block; relation outputs are summed before the shared bias.
        """
        num_relations = _check_capacity(self, data)
        num_nodes = data.num_nodes
        dtype = x.data.dtype
        out = None
        for relation_id in range(num_relations):
            block = data.relation_block(relation_id)
            relation = self.relation_attention[relation_id]
            transformed = relation.linear(x).reshape(num_nodes, self.heads,
                                                     self.head_dim)
            score_src = (transformed * relation.att_src).sum(axis=-1)  # (n, heads)
            score_dst = (transformed * relation.att_dst).sum(axis=-1)  # (n, heads)

            edge_scores = kernels.gsddmm(block, "add", score_src, score_dst)
            edge_scores = F.leaky_relu(edge_scores, self.negative_slope)
            attention = F.segment_softmax(edge_scores, block.v, num_nodes,
                                          aggregate=block.scatter("v", dtype))
            if self.attention_dropout > 0:
                attention = F.dropout(attention, self.attention_dropout,
                                      training=self.training, rng=self._rng)

            aggregated = kernels.gspmm(block, "mul", "sum", transformed, attention)
            if self.concat_heads:
                relation_out = aggregated.reshape(num_nodes, self.heads * self.head_dim)
            else:
                relation_out = aggregated.mean(axis=1)
            out = relation_out if out is None else out + relation_out
        return out + self.bias

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        """Raw-ndarray twin of :meth:`forward` (inference path)."""
        num_relations = _check_capacity(self, data)
        num_nodes = data.num_nodes
        out = None
        for relation_id in range(num_relations):
            block = data.relation_block(relation_id)
            relation = self.relation_attention[relation_id]
            transformed = relation.linear.infer(x).reshape(num_nodes, self.heads,
                                                           self.head_dim)
            score_src = (transformed * relation.att_src.data).sum(axis=-1)
            score_dst = (transformed * relation.att_dst.data).sum(axis=-1)

            edge_scores = kernels.gsddmm_forward(block, "add", score_src, score_dst)
            edge_scores = F._leaky_relu_array(edge_scores, self.negative_slope)
            attention = F.segment_softmax_array(edge_scores, block.v, num_nodes,
                                                aggregate=block.scatter("v", x.dtype))
            if self.attention_dropout > 0 and self.training:
                attention = F.dropout(Tensor(attention), self.attention_dropout,
                                      training=True, rng=self._rng).data

            aggregated = kernels.gspmm_forward(block, "mul", "sum", transformed,
                                               attention)
            if self.concat_heads:
                relation_out = aggregated.reshape(num_nodes, self.heads * self.head_dim)
            else:
                # Match Tensor.mean (sum * 1/count) bit-for-bit.
                relation_out = aggregated.sum(axis=1) * (1.0 / self.heads)
            out = relation_out if out is None else out + relation_out
        return out + self.bias.data
