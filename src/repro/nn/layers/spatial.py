"""Spatial / sampling-style aggregators.

* :class:`SAGEConv` — GraphSAGE with mean or (max-)pool aggregation
  (Hamilton et al.); the two variants appear as separate zoo entries, as the
  paper grid-searches over them.
* :class:`GINConv` — Graph Isomorphism Network aggregation with a learnable
  epsilon and an MLP update (Xu et al.).
* :class:`GraphConv` — the higher-order WL convolution of Morris et al.,
  which separates the self transform from the neighbour transform and can use
  edge weights directly.
* :class:`GatedGraphConv` — gated updates in the spirit of Li et al.'s GGNN,
  with a GRU-style cell applied after neighbourhood aggregation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.module import Module, Parameter
from repro.autograd.modules import Linear, MLP
from repro.autograd.sparse import spmm
from repro.autograd.tensor import Tensor
from repro.autograd import init
from repro.nn.data import GraphTensors


class SAGEConv(Module):
    """GraphSAGE convolution with ``mean`` or ``pool`` neighbour aggregation."""

    def __init__(self, in_features: int, out_features: int, aggregator: str = "mean",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if aggregator not in {"mean", "pool"}:
            raise ValueError("aggregator must be 'mean' or 'pool'")
        self.aggregator = aggregator
        self.self_linear = Linear(in_features, out_features, rng=rng)
        self.neighbor_linear = Linear(in_features, out_features, rng=rng)
        if aggregator == "pool":
            self.pool_linear = Linear(in_features, in_features, rng=rng)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        if self.aggregator == "mean":
            aggregated = spmm(data.adj_rw, x)
        else:
            src, dst = data.edge_index
            transformed = F.relu(self.pool_linear(x))
            messages = F.index_select(transformed, src)
            aggregated = F.scatter_max(messages, dst, data.num_nodes)
        return self.self_linear(x) + self.neighbor_linear(aggregated)

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        if self.aggregator == "mean":
            aggregated = data.adj_rw.matrix @ x
        else:
            src, dst = data.edge_index
            transformed = F._relu_array(self.pool_linear.infer(x))
            aggregated = F.scatter_max_array(transformed[src], dst, data.num_nodes)
        return self.self_linear.infer(x) + self.neighbor_linear.infer(aggregated)


class GINConv(Module):
    """GIN aggregation ``MLP((1 + eps) x + sum_{j in N(i)} x_j``."""

    def __init__(self, in_features: int, out_features: int, hidden: Optional[int] = None,
                 train_eps: bool = True, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        hidden = hidden or out_features
        self.mlp = MLP(in_features, hidden, out_features, num_layers=2, rng=rng)
        self.eps = Parameter(np.zeros(1)) if train_eps else None

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        aggregated = spmm(data.adj_raw, x)
        if self.eps is not None:
            combined = x * (self.eps + 1.0) + aggregated
        else:
            combined = x + aggregated
        return self.mlp(combined)

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        aggregated = data.adj_raw.matrix @ x
        if self.eps is not None:
            combined = x * (self.eps.data + 1.0) + aggregated
        else:
            combined = x + aggregated
        return self.mlp.infer(combined)


class GraphConv(Module):
    """Weisfeiler-Leman convolution ``x W_1 + A x W_2`` (edge-weight aware)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.self_linear = Linear(in_features, out_features, rng=rng)
        self.neighbor_linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        return self.self_linear(x) + self.neighbor_linear(spmm(data.adj_raw, x))

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        return self.self_linear.infer(x) + self.neighbor_linear.infer(data.adj_raw.matrix @ x)


class GatedGraphConv(Module):
    """Gated update: a GRU-like cell combines the node state with aggregated messages."""

    def __init__(self, in_features: int, out_features: int, num_steps: int = 2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_steps = num_steps
        self.input_linear = Linear(in_features, out_features, rng=rng)
        self.message_linear = Linear(out_features, out_features, rng=rng)
        self.update_gate = Linear(2 * out_features, out_features, rng=rng)
        self.reset_gate = Linear(2 * out_features, out_features, rng=rng)
        self.candidate = Linear(2 * out_features, out_features, rng=rng)

    def forward(self, x: Tensor, data: GraphTensors) -> Tensor:
        hidden = self.input_linear(x)
        for _ in range(self.num_steps):
            message = spmm(data.adj_rw, self.message_linear(hidden))
            joint = F.concat([hidden, message], axis=-1)
            update = F.sigmoid(self.update_gate(joint))
            reset = F.sigmoid(self.reset_gate(joint))
            candidate = F.tanh(self.candidate(F.concat([hidden * reset, message], axis=-1)))
            hidden = hidden * (1.0 - update) + candidate * update
        return hidden

    def infer(self, x: np.ndarray, data: GraphTensors) -> np.ndarray:
        matrix = data.adj_rw.matrix
        hidden = self.input_linear.infer(x)
        for _ in range(self.num_steps):
            message = matrix @ self.message_linear.infer(hidden)
            joint = np.concatenate([hidden, message], axis=-1)
            update = F._sigmoid_array(self.update_gate.infer(joint))
            reset = F._sigmoid_array(self.reset_gate.infer(joint))
            candidate = np.tanh(
                self.candidate.infer(np.concatenate([hidden * reset, message], axis=-1)))
            hidden = hidden * (1.0 - update) + candidate * update
        return hidden
