"""The candidate model zoo ranked by proxy evaluation.

Section IV-B1 of the paper evaluates "more than 20 types of GNN models with
diverse designs of aggregators including convolutional (spectral and
spatial), attention, skip connection, gate updater and dynamic updater".
This registry reproduces that pool: every entry is a :class:`ModelSpec` that
knows how to build its model for a given dataset, which aggregator *family*
it belongs to and which hyper-parameters the AutoML layer may grid-search.

Proxy models (Section III-B) are built through the same specs with a reduced
``hidden_fraction`` so the hidden size shrinks uniformly across candidates.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.nn.models.base import GNNModel
from repro.nn.models.decoupled import APPNP, DAGNN, SGC, SIGN, MixHop
from repro.nn.models.deep import DNA, GCNII, JKNet
from repro.nn.models.regularized import GRAND, GraphMix, MLPNode
from repro.nn.models.relational import RGAT, RGCN
from repro.nn.models.standard import (
    ARMA,
    GAT,
    GCN,
    GIN,
    ChebNet,
    GatedGNN,
    GraphConvNet,
    GraphSAGE,
    TAGCN,
)

ModelFactory = Callable[..., GNNModel]


@dataclass
class ModelSpec:
    """A named, buildable candidate architecture."""

    name: str
    factory: ModelFactory
    family: str
    default_hidden: int = 64
    default_layers: int = 2
    default_dropout: float = 0.5
    extra_kwargs: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    def build(self, in_features: int, num_classes: int, hidden: Optional[int] = None,
              num_layers: Optional[int] = None, dropout: Optional[float] = None,
              seed: int = 0, hidden_fraction: float = 1.0, **overrides) -> GNNModel:
        """Instantiate the model for a dataset.

        ``hidden_fraction`` implements the *proxy model* of Section III-B: a
        value of 0.5 builds the same architecture at half the hidden width.
        """
        hidden = hidden if hidden is not None else self.default_hidden
        hidden = max(8, int(round(hidden * hidden_fraction)))
        # Keep the width divisible by common head counts so GAT variants work.
        hidden -= hidden % 4
        hidden = max(hidden, 8)
        kwargs = dict(self.extra_kwargs)
        kwargs.update(overrides)
        model = self.factory(
            in_features=in_features,
            num_classes=num_classes,
            hidden=hidden,
            num_layers=num_layers if num_layers is not None else self.default_layers,
            dropout=dropout if dropout is not None else self.default_dropout,
            seed=seed,
            **kwargs,
        )
        model.model_name = self.name
        return model


MODEL_ZOO: Dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec, overwrite: bool = False) -> None:
    """Add a candidate to the zoo (e.g. a novel NAS-discovered architecture)."""
    key = spec.name.lower()
    if key in MODEL_ZOO and not overwrite:
        raise KeyError(f"model {spec.name!r} is already registered")
    MODEL_ZOO[key] = spec


def suggest_model_name(name: str) -> Optional[str]:
    """The registered candidate closest to ``name``, or ``None`` if none is close.

    Shared by :func:`get_model_spec` and ``AutoHEnsGNNConfig.validate`` so a
    typo in a candidate list fails with a did-you-mean hint instead of a bare
    lookup error mid-pipeline.
    """
    close = difflib.get_close_matches(name.lower(), MODEL_ZOO, n=1)
    return close[0] if close else None


def get_model_spec(name: str) -> ModelSpec:
    key = name.lower()
    if key not in MODEL_ZOO:
        suggestion = suggest_model_name(name)
        hint = f" — did you mean {suggestion!r}?" if suggestion else ""
        raise KeyError(f"unknown model {name!r}{hint}; known: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[key]


def available_models(family: Optional[str] = None) -> List[str]:
    """Names of all registered candidates, optionally filtered by aggregator family."""
    names = []
    for key, spec in MODEL_ZOO.items():
        if family is None or spec.family == family:
            names.append(spec.name)
    return sorted(names)


def build_model(name: str, in_features: int, num_classes: int, **kwargs) -> GNNModel:
    """Convenience wrapper: ``get_model_spec(name).build(...)``."""
    return get_model_spec(name).build(in_features, num_classes, **kwargs)


def _register_builtin() -> None:
    specs = [
        # Convolutional aggregators (spectral-based).
        ModelSpec("gcn", GCN, "convolutional-spectral",
                  description="2-layer GCN (Kipf & Welling)"),
        ModelSpec("gcn-3", GCN, "convolutional-spectral", default_layers=3,
                  description="3-layer GCN"),
        ModelSpec("chebnet", ChebNet, "convolutional-spectral",
                  description="Chebyshev spectral filters of order 3"),
        ModelSpec("sgc", SGC, "convolutional-spectral", default_dropout=0.3,
                  description="Simplified graph convolution, 2 hops"),
        ModelSpec("sgc-3", SGC, "convolutional-spectral", default_layers=3, default_dropout=0.3,
                  description="Simplified graph convolution, 3 hops"),
        ModelSpec("tagcn", TAGCN, "convolutional-spectral",
                  description="Topology-adaptive GCN, 3-hop filters"),
        ModelSpec("arma", ARMA, "convolutional-spectral",
                  description="ARMA rational spectral filters"),
        ModelSpec("sign", SIGN, "convolutional-spectral", default_layers=3,
                  description="SIGN: precomputed propagation, inception-style"),
        # Convolutional aggregators (spatial-based).
        ModelSpec("graphsage-mean", GraphSAGE, "convolutional-spatial",
                  extra_kwargs={"aggregator": "mean"},
                  description="GraphSAGE with mean aggregation"),
        ModelSpec("graphsage-pool", GraphSAGE, "convolutional-spatial",
                  extra_kwargs={"aggregator": "pool"},
                  description="GraphSAGE with max-pool aggregation"),
        ModelSpec("gin", GIN, "convolutional-spatial",
                  description="Graph isomorphism network"),
        ModelSpec("graphconv", GraphConvNet, "convolutional-spatial",
                  description="Weisfeiler-Leman GraphConv (edge-weight aware)"),
        ModelSpec("mixhop", MixHop, "convolutional-spatial",
                  description="MixHop: mixed adjacency powers per layer"),
        # Attention aggregators.
        ModelSpec("gat", GAT, "attention", extra_kwargs={"heads": 4},
                  description="Graph attention network, 4 heads"),
        ModelSpec("gat-2h", GAT, "attention", extra_kwargs={"heads": 2},
                  description="Graph attention network, 2 heads"),
        # Relational aggregators (heterogeneous graphs; capacity of 8
        # relations — graphs with fewer relations use a prefix of the
        # per-relation weights, keeping state-dict shapes data-independent).
        ModelSpec("rgcn", RGCN, "relational", extra_kwargs={"num_relations": 8},
                  description="Relational GCN, capacity 8 relations"),
        ModelSpec("rgcn-basis", RGCN, "relational",
                  extra_kwargs={"num_relations": 8, "num_bases": 4},
                  description="Relational GCN with 4-basis weight sharing"),
        ModelSpec("rgat", RGAT, "relational",
                  extra_kwargs={"num_relations": 8, "heads": 4},
                  description="Relational GAT, capacity 8 relations, 4 heads"),
        # Skip connections / deep models.
        ModelSpec("gcnii", GCNII, "skip-connection", default_layers=4,
                  description="GCNII with initial residual + identity mapping"),
        ModelSpec("jknet-max", JKNet, "skip-connection", default_layers=3,
                  extra_kwargs={"mode": "max"},
                  description="Jumping knowledge network (max aggregation)"),
        ModelSpec("jknet-mean", JKNet, "skip-connection", default_layers=3,
                  extra_kwargs={"mode": "mean"},
                  description="Jumping knowledge network (mean aggregation)"),
        ModelSpec("dna", DNA, "dynamic", default_layers=3,
                  description="Dynamic neighbourhood aggregation (attention over depth)"),
        # Decoupled propagation.
        ModelSpec("appnp", APPNP, "decoupled",
                  description="Predict-then-propagate with personalised PageRank"),
        ModelSpec("dagnn", DAGNN, "decoupled",
                  description="Deep adaptive GNN with gated depth selection"),
        # Gate updater.
        ModelSpec("gatedgnn", GatedGNN, "gate",
                  description="Gated graph network with GRU-style updates"),
        # Regularisation-centric models.
        ModelSpec("grand", GRAND, "regularized", default_layers=3,
                  description="GRAND: random propagation + MLP"),
        ModelSpec("graphmix", GraphMix, "regularized",
                  description="GraphMix-style joint GCN + MLP"),
        # Graph-agnostic baseline.
        ModelSpec("mlp", MLPNode, "baseline",
                  description="Feature-only MLP baseline"),
    ]
    for spec in specs:
        register_model(spec, overwrite=True)


_register_builtin()
