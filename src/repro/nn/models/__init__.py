"""Full node-classification models built on the message-passing layers."""

from repro.nn.models.base import GNNModel, StackedConvModel
from repro.nn.models.standard import (
    ARMA,
    GAT,
    GCN,
    GIN,
    ChebNet,
    GatedGNN,
    GraphConvNet,
    GraphSAGE,
    TAGCN,
)
from repro.nn.models.decoupled import APPNP, DAGNN, SGC, SIGN, MixHop
from repro.nn.models.deep import DNA, GCNII, JKNet
from repro.nn.models.regularized import GRAND, MLPNode, GraphMix
from repro.nn.models.relational import RGAT, RGCN

__all__ = [
    "GNNModel",
    "StackedConvModel",
    "GCN",
    "GAT",
    "GraphSAGE",
    "GIN",
    "TAGCN",
    "ChebNet",
    "ARMA",
    "GraphConvNet",
    "GatedGNN",
    "SGC",
    "APPNP",
    "DAGNN",
    "SIGN",
    "MixHop",
    "GCNII",
    "JKNet",
    "DNA",
    "GRAND",
    "GraphMix",
    "MLPNode",
    "RGCN",
    "RGAT",
]
