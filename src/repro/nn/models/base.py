"""Base classes shared by every candidate model.

The key contract is the one graph self-ensemble (GSE) relies on (Eqn 1–3 of
the paper): a model produces a list of per-layer hidden states
``[H(1), ..., H(L)]`` (all of shape ``(num_nodes, hidden)``), and the
prediction is ``softmax((sum_l alpha_l H(l)) W)`` where ``alpha`` is either

* ``None`` — the model's native combination (usually the last layer),
* a fixed array — e.g. a one-hot vector selecting a specific depth, as used
  by the grid search of ``AutoHEnsGNN_Adaptive``,
* a trainable :class:`~repro.autograd.Tensor` of logits — relaxed through a
  softmax as in ``AutoHEnsGNN_Gradient`` (Eqn 7).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import functional as F
from repro.autograd import kernels
from repro.autograd.module import Module, ModuleList
from repro.autograd.modules import Dropout, Linear
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors

LayerWeights = Union[None, np.ndarray, Sequence[float], Tensor]


class GNNModel(Module):
    """Base class for node-classification GNNs.

    Subclasses implement :meth:`encode`, returning one hidden state per layer;
    the base class owns the shared classification head and the layer-weight
    combination logic.
    """

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, activation: str = "relu",
                 seed: int = 0, name: Optional[str] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.num_classes = num_classes
        self.hidden = hidden
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self.activation_name = activation
        self.seed = seed
        self.model_name = name or type(self).__name__
        self.rng = np.random.default_rng(seed)
        self.activation = F.activation(activation)
        self.activation_array = F.activation_array(activation)
        self.dropout = Dropout(dropout, rng=self.rng)
        self.head = Linear(hidden, num_classes, rng=self.rng)
        # How many hops of the graph one forward pass actually touches.
        # ``num_layers`` counts GSE aggregation states, which understates the
        # propagation depth for multi-hop convolutions (TAGCN, ChebNet) and
        # decoupled models (APPNP, DAGNN); subclasses with deeper
        # propagation overwrite this.  The minibatch trainer sizes its
        # default sampling fanouts from it.
        self.receptive_field = num_layers

    # ------------------------------------------------------------------
    # Contract for subclasses
    # ------------------------------------------------------------------
    def encode(self, data: GraphTensors) -> List[Tensor]:  # pragma: no cover - abstract
        """Return the per-layer hidden states ``[H(1), ..., H(L)]``."""
        raise NotImplementedError

    def default_combine(self, states: List[Tensor]) -> Tensor:
        """How the model combines its layer states when no ``alpha`` is given."""
        return states[-1]

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def combine_states(self, states: List[Tensor], layer_weights: LayerWeights) -> Tensor:
        if layer_weights is None:
            return self.default_combine(states)
        if isinstance(layer_weights, Tensor):
            weights = F.softmax(layer_weights, axis=-1)
            return F.weighted_sum(states, weights)
        weights = np.asarray(layer_weights, dtype=np.float64)
        if weights.shape[0] != len(states):
            raise ValueError(
                f"expected {len(states)} layer weights, received {weights.shape[0]}"
            )
        return F.weighted_sum(states, Tensor(weights))

    def forward(self, data: GraphTensors, layer_weights: LayerWeights = None) -> Tensor:
        """Return class logits of shape ``(num_nodes, num_classes)``."""
        states = self.encode(data)
        combined = self.combine_states(states, layer_weights)
        return self.head(combined)

    def predict_log_proba(self, data: GraphTensors, layer_weights: LayerWeights = None) -> Tensor:
        return F.log_softmax(self.forward(data, layer_weights), axis=-1)

    def predict_proba(self, data: GraphTensors, layer_weights: LayerWeights = None) -> np.ndarray:
        """Class probabilities as a plain array (no gradient tracking)."""
        return F.softmax_array(self.forward_inference(data, layer_weights), axis=-1)

    # ------------------------------------------------------------------
    # Raw-ndarray inference fast path
    # ------------------------------------------------------------------
    def forward_inference(self, data: GraphTensors,
                          layer_weights: LayerWeights = None) -> np.ndarray:
        """Class logits as a plain ndarray, bypassing Tensor wrapping.

        Runs in eval mode (dropout off, like :meth:`predict_proba`) and
        produces bit-for-bit the logits of the Tensor :meth:`forward` under
        ``no_grad`` — evaluation, proxy scoring and ensemble weight search
        call this in their inner loops, where graph construction overhead
        multiplied across thousands of epochs.
        """
        from repro.autograd.tensor import no_grad

        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                states = self.encode_inference(data)
                combined = self.combine_states_inference(states, layer_weights)
                return self.head.infer(combined)
        finally:
            if was_training:
                self.train()

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        """Raw-ndarray twin of :meth:`encode`.

        The base implementation runs the Tensor encoder under ``no_grad``
        and unwraps, so every subclass is automatically correct; hot models
        override it with pure-NumPy bodies.
        """
        from repro.autograd.tensor import no_grad

        with no_grad():
            return [state.data for state in self.encode(data)]

    def combine_states_inference(self, states: List[np.ndarray],
                                 layer_weights: LayerWeights) -> np.ndarray:
        if layer_weights is None:
            # Mirror a subclass's custom default_combine exactly by running
            # it on constant tensors (cheap: states are already computed).
            if type(self).default_combine is GNNModel.default_combine:
                return states[-1]
            from repro.autograd.tensor import no_grad

            with no_grad():
                return self.default_combine([Tensor(state) for state in states]).data
        if isinstance(layer_weights, Tensor):
            weights = F.softmax_array(layer_weights.data, axis=-1)
        else:
            weights = np.asarray(layer_weights, dtype=states[0].dtype)
            if weights.shape[0] != len(states):
                raise ValueError(
                    f"expected {len(states)} layer weights, received {weights.shape[0]}"
                )
        stacked = np.stack(states, axis=0)
        shaped = weights.reshape((len(states),) + (1,) * (stacked.ndim - 1))
        return (stacked * shaped).sum(axis=0)

    # ------------------------------------------------------------------
    # Introspection used by the proxy evaluator / model zoo
    # ------------------------------------------------------------------
    def architecture_summary(self) -> dict:
        return {
            "name": self.model_name,
            "hidden": self.hidden,
            "num_layers": self.num_layers,
            "dropout": self.dropout_rate,
            "activation": self.activation_name,
            "parameters": self.num_parameters(),
        }


class StackedConvModel(GNNModel):
    """Generic "stack of convolutions" model.

    Most members of the candidate pool (GCN, GraphSAGE, GAT, GIN, TAGCN,
    ChebNet, ARMA, GraphConv, GatedGNN) only differ in the convolution they
    stack; this class implements the shared plumbing — an input projection,
    ``num_layers`` convolutions of width ``hidden``, activations, dropout and
    the per-layer state collection required by GSE.
    """

    def __init__(self, conv_factory: Callable[[int, int, np.random.Generator], Module],
                 in_features: int, num_classes: int, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, activation: str = "relu", seed: int = 0,
                 name: Optional[str] = None, input_projection: bool = False) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         activation, seed, name)
        self.input_projection = (
            Linear(in_features, hidden, rng=self.rng) if input_projection else None
        )
        first_in = hidden if input_projection else in_features
        self.convs = ModuleList()
        for layer_index in range(num_layers):
            conv_in = first_in if layer_index == 0 else hidden
            self.convs.append(conv_factory(conv_in, hidden, self.rng))
        # Fusion decision, resolved once: convs exposing the ``forward_fused``
        # / ``infer_fused`` hooks (currently ``GCNConv``) absorb an in-place-
        # applicable activation into the kernel.  The fused result is
        # bit-identical to the unfused conv + activation sequence
        # (``np.maximum`` on the same pre-activation either way); it just
        # skips one graph node and one full-size temporary per layer.
        fusable = self.activation_name in kernels.FUSED_ACTIVATIONS
        self._fused_activations = [
            self.activation_name if fusable and hasattr(conv, "forward_fused") else None
            for conv in self.convs
        ]
        self.receptive_field = sum(self._conv_hops(conv) for conv in self.convs)

    @staticmethod
    def _conv_hops(conv: Module) -> int:
        """Graph hops one application of ``conv`` spans (1 for plain convs)."""
        if hasattr(conv, "hops"):           # SGConv, TAGConv
            return int(conv.hops)
        if hasattr(conv, "order"):          # ChebConv: T_{K-1} reaches K-1 hops
            return max(int(conv.order) - 1, 1)
        if hasattr(conv, "num_iterations"):  # ARMAConv
            return int(conv.num_iterations)
        return 1

    def encode(self, data: GraphTensors) -> List[Tensor]:
        x = data.features
        if self.input_projection is not None:
            x = self.activation(self.input_projection(x))
        states: List[Tensor] = []
        for conv, fused in zip(self.convs, self._fused_activations):
            x = self.dropout(x)
            if fused is not None:
                x = conv.forward_fused(x, data, fused)
            else:
                x = conv(x, data)
                x = self.activation(x)
            states.append(x)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        # Eval-mode twin of :meth:`encode`: dropout is a no-op and each
        # convolution runs through its raw-ndarray ``infer`` path.
        x = data.features.data
        if self.input_projection is not None:
            x = self.activation_array(self.input_projection.infer(x))
        states: List[np.ndarray] = []
        for conv, fused in zip(self.convs, self._fused_activations):
            if fused is not None:
                x = conv.infer_fused(x, data, fused)
            else:
                x = self.activation_array(conv.infer(x, data))
            states.append(x)
        return states
