"""Models that decouple feature transformation from propagation.

These architectures first transform node features with an MLP (or a single
linear map) and then propagate predictions/representations over the graph —
SGC, SIGN, APPNP, DAGNN and MixHop.  Their "layers" for the purpose of graph
self-ensemble are the successive propagation depths, which is exactly the
local-vs-global trade-off the paper's layer aggregation (Eqn 2) exploits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.modules import Linear, MLP
from repro.autograd.sparse import spmm
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors
from repro.nn.layers.deep import APPNPPropagation, DAGNNPropagation, MixHopConv
from repro.nn.models.base import GNNModel


class SGC(GNNModel):
    """Simplified Graph Convolution (Wu et al., 2019).

    Layer ``l`` of the encoding is ``Â^l X W`` so the GSE layer aggregation
    interpolates between propagation depths.
    """

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.3, seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "identity", seed, name="SGC", **kwargs)
        self.linear = Linear(in_features, hidden, rng=self.rng)

    def encode(self, data: GraphTensors) -> List[Tensor]:
        states = []
        hidden = self.linear(self.dropout(data.features))
        for _ in range(self.num_layers):
            hidden = spmm(data.adj_sym, hidden)
            states.append(hidden)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        states = []
        hidden = self.linear.infer(data.features.data)
        matrix = data.adj_sym.matrix
        for _ in range(self.num_layers):
            hidden = matrix @ hidden
            states.append(hidden)
        return states


class SIGN(GNNModel):
    """SIGN (Frasca et al., 2020): precomputed powers, per-power linear maps."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 3, dropout: float = 0.3, seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="SIGN", **kwargs)
        from repro.autograd.module import ModuleList

        self.branches = ModuleList([
            Linear(in_features, hidden, rng=self.rng) for _ in range(num_layers)
        ])

    def encode(self, data: GraphTensors) -> List[Tensor]:
        states = []
        accumulated = None
        for power, branch in enumerate(self.branches, start=1):
            powered = data.powered_features("sym", power)
            transformed = self.activation(branch(self.dropout(powered)))
            accumulated = transformed if accumulated is None else accumulated + transformed
            states.append(accumulated * (1.0 / power))
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        states = []
        accumulated = None
        for power, branch in enumerate(self.branches, start=1):
            powered = data.powered_features("sym", power).data
            transformed = self.activation_array(branch.infer(powered))
            accumulated = transformed if accumulated is None else accumulated + transformed
            states.append(accumulated * (1.0 / power))
        return states


class APPNP(GNNModel):
    """Predict-then-propagate with personalised PageRank (Klicpera et al., 2019)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, num_iterations: int = 10,
                 teleport: float = 0.1, seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="APPNP", **kwargs)
        self.mlp = MLP(in_features, hidden, hidden, num_layers=max(num_layers, 1),
                       dropout=dropout, rng=self.rng)
        self.propagation = APPNPPropagation(num_iterations=num_iterations, teleport=teleport)
        # GSE aggregates over propagation milestones rather than MLP layers.
        self.num_layers = max(2, min(4, num_iterations // 3))
        self._milestones = np.linspace(1, num_iterations, self.num_layers).astype(int)
        self.receptive_field = num_iterations

    def encode(self, data: GraphTensors) -> List[Tensor]:
        hidden = self.mlp(self.dropout(data.features))
        steps = self.propagation.propagate_steps(hidden, data)
        return [steps[m - 1] for m in self._milestones]

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        hidden = self.mlp.infer(data.features.data)
        steps = self.propagation.propagate_steps_array(hidden, data)
        return [steps[m - 1] for m in self._milestones]


class DAGNN(GNNModel):
    """Deep Adaptive GNN (Liu et al., 2020) with gated depth combination."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, hops: int = 5,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="DAGNN", **kwargs)
        self.mlp = MLP(in_features, hidden, hidden, num_layers=2, dropout=dropout, rng=self.rng)
        self.hops = hops
        self.gate = Linear(hidden, 1, rng=self.rng)
        self.num_layers = max(2, min(hops, 4))
        self._milestones = np.linspace(1, hops, self.num_layers).astype(int)
        self.receptive_field = hops

    def encode(self, data: GraphTensors) -> List[Tensor]:
        hidden = self.mlp(self.dropout(data.features))
        propagated = [hidden]
        current = hidden
        for _ in range(self.hops):
            current = spmm(data.adj_sym, current)
            propagated.append(current)
        states = []
        for milestone in self._milestones:
            stacked = F.stack(propagated[: milestone + 1], axis=1)
            gates = F.sigmoid(self.gate(stacked))
            states.append((stacked * gates).sum(axis=1))
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        hidden = self.mlp.infer(data.features.data)
        matrix = data.adj_sym.matrix
        propagated = [hidden]
        current = hidden
        for _ in range(self.hops):
            current = matrix @ current
            propagated.append(current)
        states = []
        for milestone in self._milestones:
            stacked = np.stack(propagated[: milestone + 1], axis=1)
            gates = F._sigmoid_array(self.gate.infer(stacked))
            states.append((stacked * gates).sum(axis=1))
        return states


class MixHop(GNNModel):
    """MixHop (Abu-El-Haija et al., 2019): mixed powers of the adjacency per layer."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, powers=(0, 1, 2),
                 seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="MixHop", **kwargs)
        from repro.autograd.module import ModuleList

        self.convs = ModuleList()
        for layer_index in range(num_layers):
            conv_in = in_features if layer_index == 0 else hidden
            self.convs.append(MixHopConv(conv_in, hidden, powers=powers, rng=self.rng))
        self.receptive_field = num_layers * max(powers)

    def encode(self, data: GraphTensors) -> List[Tensor]:
        states = []
        x = data.features
        for conv in self.convs:
            x = self.dropout(x)
            x = self.activation(conv(x, data))
            states.append(x)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        states = []
        x = data.features.data
        for conv in self.convs:
            x = self.activation_array(conv.infer(x, data))
            states.append(x)
        return states
