"""Deep / skip-connection models: GCNII, JKNet and DNA.

These are the candidates the paper singles out as being able to capture
long-distance dependencies (GCNII "with deeper layers, can capture
long-distance dependency in the graph") and to aggregate information from
multiple neighbourhood radii (JKNet, DNA).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.module import ModuleList, Parameter
from repro.autograd.modules import Linear
from repro.autograd.sparse import spmm
from repro.autograd.tensor import Tensor
from repro.autograd import init
from repro.nn.data import GraphTensors
from repro.nn.layers.deep import GCNIIConv, JumpingKnowledge
from repro.nn.models.base import GNNModel


class GCNII(GNNModel):
    """GCNII (Chen et al., 2020) with initial residual and identity mapping."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 4, dropout: float = 0.5, alpha: float = 0.1,
                 lam: float = 0.5, seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="GCNII", **kwargs)
        self.input_linear = Linear(in_features, hidden, rng=self.rng)
        self.convs = ModuleList()
        for layer_index in range(num_layers):
            beta = lam / (layer_index + 1)
            self.convs.append(GCNIIConv(hidden, alpha=alpha, beta=beta, rng=self.rng))

    def encode(self, data: GraphTensors) -> List[Tensor]:
        initial = self.activation(self.input_linear(self.dropout(data.features)))
        states: List[Tensor] = []
        hidden = initial
        for conv in self.convs:
            hidden = self.dropout(hidden)
            hidden = self.activation(conv(hidden, initial, data))
            states.append(hidden)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        initial = self.activation_array(self.input_linear.infer(data.features.data))
        states: List[np.ndarray] = []
        hidden = initial
        for conv in self.convs:
            hidden = self.activation_array(conv.infer(hidden, initial, data))
            states.append(hidden)
        return states


class JKNet(GNNModel):
    """Jumping Knowledge network (Xu et al., 2018) over a GCN backbone."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 3, dropout: float = 0.5, mode: str = "max",
                 seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name=f"JKNet-{mode}", **kwargs)
        from repro.nn.layers.convolutional import GCNConv

        self.mode = mode
        self.convs = ModuleList()
        for layer_index in range(num_layers):
            conv_in = in_features if layer_index == 0 else hidden
            self.convs.append(GCNConv(conv_in, hidden, rng=self.rng))
        self.jump = JumpingKnowledge(mode="max" if mode == "max" else "mean")

    def encode(self, data: GraphTensors) -> List[Tensor]:
        states: List[Tensor] = []
        x = data.features
        for conv in self.convs:
            x = self.dropout(x)
            x = self.activation(conv(x, data))
            states.append(x)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        states: List[np.ndarray] = []
        x = data.features.data
        for conv in self.convs:
            x = self.activation_array(conv.infer(x, data))
            states.append(x)
        return states

    def default_combine(self, states: List[Tensor]) -> Tensor:
        # Without an explicit alpha the model falls back to its JK aggregation.
        return self.jump(states)


class DNA(GNNModel):
    """Dynamic neighbourhood aggregation (Fey, 2019), simplified.

    Each layer attends over the representations produced by all previous
    layers of the same node (a per-node transformer over depth), which lets
    every node pick its own receptive-field size.
    """

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 3, dropout: float = 0.5, seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="DNA", **kwargs)
        self.input_linear = Linear(in_features, hidden, rng=self.rng)
        self.query = ModuleList([Linear(hidden, hidden, rng=self.rng) for _ in range(num_layers)])
        self.key = ModuleList([Linear(hidden, hidden, rng=self.rng) for _ in range(num_layers)])
        self.value = ModuleList([Linear(hidden, hidden, rng=self.rng) for _ in range(num_layers)])

    def encode(self, data: GraphTensors) -> List[Tensor]:
        hidden = self.activation(self.input_linear(self.dropout(data.features)))
        history: List[Tensor] = [hidden]
        states: List[Tensor] = []
        scale = 1.0 / np.sqrt(self.hidden)
        for layer_index in range(self.num_layers):
            propagated = spmm(data.adj_sym, history[-1])
            query = self.query[layer_index](propagated)  # (n, hidden)
            stacked_history = F.stack(history, axis=1)  # (n, depth, hidden)
            keys = self.key[layer_index](stacked_history)
            values = self.value[layer_index](stacked_history)
            scores = (keys * query.reshape(data.num_nodes, 1, self.hidden)).sum(axis=-1) * scale
            attention = F.softmax(scores, axis=-1)  # (n, depth)
            attended = (values * attention.reshape(data.num_nodes, len(history), 1)).sum(axis=1)
            new_state = self.activation(attended)
            new_state = self.dropout(new_state)
            history.append(new_state)
            states.append(new_state)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        hidden = self.activation_array(self.input_linear.infer(data.features.data))
        history: List[np.ndarray] = [hidden]
        states: List[np.ndarray] = []
        # The Tensor path wraps the scale into a constant tensor, casting it
        # to the compute dtype; mirror that cast so float32 stays float32.
        scale = hidden.dtype.type(1.0 / np.sqrt(self.hidden))
        matrix = data.adj_sym.matrix
        for layer_index in range(self.num_layers):
            propagated = matrix @ history[-1]
            query = self.query[layer_index].infer(propagated)
            stacked_history = np.stack(history, axis=1)
            keys = self.key[layer_index].infer(stacked_history)
            values = self.value[layer_index].infer(stacked_history)
            scores = (keys * query.reshape(data.num_nodes, 1, self.hidden)).sum(axis=-1) * scale
            attention = F.softmax_array(scores, axis=-1)
            attended = (values * attention.reshape(data.num_nodes, len(history), 1)).sum(axis=1)
            new_state = self.activation_array(attended)
            history.append(new_state)
            states.append(new_state)
        return states
