"""Regularisation-centric candidates: GRAND, GraphMix and the MLP baseline.

GRAND (Feng et al., 2020) and GraphMix (Verma et al., 2019) obtain strong
semi-supervised results mainly through data augmentation (random propagation
/ DropNode) and auxiliary regularised heads.  The versions implemented here
keep the architectural essence that matters for the ensemble experiments —
random propagation over multiple depths for GRAND, and a jointly trained
MLP + GCN pair for GraphMix — while leaving the elaborate consistency
training schedules to the trainer's standard loop.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.modules import Linear, MLP
from repro.autograd.sparse import spmm
from repro.autograd.tensor import Tensor
from repro.nn.data import GraphTensors
from repro.nn.models.base import GNNModel


class GRAND(GNNModel):
    """Graph Random Neural Network: DropNode + multi-step random propagation + MLP."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 3, dropout: float = 0.5, dropnode: float = 0.3,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="GRAND", **kwargs)
        self.dropnode = dropnode
        self.mlp = MLP(in_features, hidden, hidden, num_layers=2, dropout=dropout, rng=self.rng)

    def _random_propagate(self, data: GraphTensors, depth: int) -> Tensor:
        # DropNode through the dedicated functional op (bit-identical to the
        # historical ``features * Tensor(mask)`` formulation) so captured
        # epochs re-draw the row mask from the model RNG on every replay.
        features = F.drop_node(data.features, self.dropnode,
                               training=self.training, rng=self.rng)
        # Mean over propagation depths 0..depth (the GRAND propagation rule).
        accumulated = features
        current = features
        for _ in range(depth):
            current = spmm(data.adj_sym, current)
            accumulated = accumulated + current
        return accumulated * (1.0 / (depth + 1))

    def encode(self, data: GraphTensors) -> List[Tensor]:
        states = []
        for depth in range(1, self.num_layers + 1):
            propagated = self._random_propagate(data, depth)
            states.append(self.mlp(self.dropout(propagated)))
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        # Eval mode: DropNode and dropout are off, so random propagation
        # degenerates to the deterministic mean over depths.
        matrix = data.adj_sym.matrix
        features = data.features.data
        states = []
        for depth in range(1, self.num_layers + 1):
            accumulated = features
            current = features
            for _ in range(depth):
                current = matrix @ current
                accumulated = accumulated + current
            propagated = accumulated * (1.0 / (depth + 1))
            states.append(self.mlp.infer(propagated))
        return states


class GraphMix(GNNModel):
    """GraphMix-style joint GCN + MLP model (the MLP acts as a regulariser)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, mix_weight: float = 0.5,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="GraphMix", **kwargs)
        from repro.nn.layers.convolutional import GCNConv
        from repro.autograd.module import ModuleList

        self.mix_weight = mix_weight
        self.mlp = MLP(in_features, hidden, hidden, num_layers=2, dropout=dropout, rng=self.rng)
        self.convs = ModuleList()
        for layer_index in range(num_layers):
            conv_in = in_features if layer_index == 0 else hidden
            self.convs.append(GCNConv(conv_in, hidden, rng=self.rng))

    def encode(self, data: GraphTensors) -> List[Tensor]:
        mlp_state = self.mlp(self.dropout(data.features))
        states = []
        x = data.features
        for conv in self.convs:
            x = self.dropout(x)
            x = self.activation(conv(x, data))
            states.append(x * (1.0 - self.mix_weight) + mlp_state * self.mix_weight)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        features = data.features.data
        mlp_state = self.mlp.infer(features)
        states = []
        x = features
        for conv in self.convs:
            x = self.activation_array(conv.infer(x, data))
            states.append(x * (1.0 - self.mix_weight) + mlp_state * self.mix_weight)
        return states


class MLPNode(GNNModel):
    """Graph-agnostic MLP baseline (the "MLP" row of Table V)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, seed: int = 0, **kwargs) -> None:
        super().__init__(in_features, num_classes, hidden, num_layers, dropout,
                         "relu", seed, name="MLP", **kwargs)
        from repro.autograd.module import ModuleList

        self.layers = ModuleList()
        for layer_index in range(num_layers):
            layer_in = in_features if layer_index == 0 else hidden
            self.layers.append(Linear(layer_in, hidden, rng=self.rng))

    def encode(self, data: GraphTensors) -> List[Tensor]:
        states = []
        x = data.features
        for layer in self.layers:
            x = self.dropout(x)
            x = self.activation(layer(x))
            states.append(x)
        return states

    def encode_inference(self, data: GraphTensors) -> List[np.ndarray]:
        states = []
        x = data.features.data
        for layer in self.layers:
            x = self.activation_array(layer.infer(x))
            states.append(x)
        return states
