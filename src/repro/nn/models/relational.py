"""Relational (heterogeneous) candidate models.

:class:`RGCN` and :class:`RGAT` stack the relation-typed aggregators of
:mod:`repro.nn.layers.relational` through the shared
:class:`~repro.nn.models.base.StackedConvModel` plumbing, so they satisfy
every pipeline contract for free — ``receptive_field``, per-layer states for
GSE, raw-ndarray ``forward_inference`` and state_dict round-trips.

``num_relations`` is a relation *capacity* baked into the parameter shapes
(see :mod:`repro.nn.layers.relational`), so the zoo registers these models
with a fixed default capacity and proxy evaluation / ``FittedEnsemble.load``
rebuild identical shapes without inspecting the data.  At capacity 1 on a
homogeneous (or single-relation heterogeneous) graph they reproduce
:class:`~repro.nn.models.standard.GCN` / :class:`~repro.nn.models.standard.
GAT` bit-for-bit.
"""

from __future__ import annotations

from repro.nn.layers.relational import RGATConv, RGCNConv
from repro.nn.models.base import StackedConvModel


class RGCN(StackedConvModel):
    """Relational GCN (Schlichtkrull et al., 2018).

    ``num_bases`` enables the basis-decomposition weight sharing
    ``W_r = sum_b c_{rb} V_b``; ``None`` keeps independent per-relation
    weights.
    """

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, num_relations: int = 1,
                 num_bases: int = None, seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: RGCNConv(
                i, o, num_relations=num_relations, num_bases=num_bases, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed,
            name=f"RGCN-{num_relations}r", **kwargs,
        )
        self.num_relations = num_relations
        self.num_bases = num_bases


class RGAT(StackedConvModel):
    """Relational GAT: independent multi-head attention per relation."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, num_relations: int = 1,
                 heads: int = 4, seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: RGATConv(
                i, o, num_relations=num_relations, heads=heads,
                attention_dropout=dropout / 2, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, activation="elu", seed=seed,
            name=f"RGAT-{num_relations}r-{heads}h", **kwargs,
        )
        self.num_relations = num_relations
        self.heads = heads
