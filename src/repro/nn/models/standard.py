"""The classic stacked-convolution candidate models.

Each class wires one convolution family into :class:`StackedConvModel`; the
model zoo exposes several depth / aggregator / head-count variants of these
as separate candidates, mirroring how the paper grid-searches model variants
(e.g. GraphSAGE-mean vs GraphSAGE-pool) during proxy evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.attention import GATConv
from repro.nn.layers.convolutional import ARMAConv, ChebConv, GCNConv, TAGConv
from repro.nn.layers.spatial import GatedGraphConv, GINConv, GraphConv, SAGEConv
from repro.nn.models.base import StackedConvModel


class GCN(StackedConvModel):
    """Graph Convolutional Network (Kipf & Welling, 2017)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: GCNConv(i, o, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name="GCN", **kwargs,
        )


class GraphSAGE(StackedConvModel):
    """GraphSAGE (Hamilton et al., 2017) with a mean or pool aggregator."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, aggregator: str = "mean",
                 seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: SAGEConv(i, o, aggregator=aggregator, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed,
            name=f"GraphSAGE-{aggregator}", **kwargs,
        )
        self.aggregator = aggregator


class GAT(StackedConvModel):
    """Graph Attention Network (Velickovic et al., 2018)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, heads: int = 4,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: GATConv(i, o, heads=heads, attention_dropout=dropout / 2,
                                                   rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, activation="elu", seed=seed,
            name=f"GAT-{heads}h", **kwargs,
        )
        self.heads = heads


class GIN(StackedConvModel):
    """Graph Isomorphism Network (Xu et al., 2019)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: GINConv(i, o, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name="GIN", **kwargs,
        )


class TAGCN(StackedConvModel):
    """Topology Adaptive GCN (Du et al., 2017)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, hops: int = 3,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: TAGConv(i, o, hops=hops, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name=f"TAGCN-{hops}hop", **kwargs,
        )
        self.hops = hops


class ChebNet(StackedConvModel):
    """Chebyshev spectral CNN (Defferrard et al., 2016)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, order: int = 3,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: ChebConv(i, o, order=order, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name=f"ChebNet-K{order}", **kwargs,
        )
        self.order = order


class ARMA(StackedConvModel):
    """ARMA spectral filters (Bianchi et al., 2019)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, num_iterations: int = 2,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: ARMAConv(i, o, num_iterations=num_iterations, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name="ARMA", **kwargs,
        )


class GraphConvNet(StackedConvModel):
    """Higher-order WL convolution (Morris et al., 2019) — edge-weight aware."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: GraphConv(i, o, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name="GraphConv", **kwargs,
        )


class GatedGNN(StackedConvModel):
    """Gated graph network with GRU-style state updates (Li et al., 2016)."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout: float = 0.5, num_steps: int = 2,
                 seed: int = 0, **kwargs) -> None:
        super().__init__(
            conv_factory=lambda i, o, rng: GatedGraphConv(i, o, num_steps=num_steps, rng=rng),
            in_features=in_features, num_classes=num_classes, hidden=hidden,
            num_layers=num_layers, dropout=dropout, seed=seed, name="GatedGNN", **kwargs,
        )
