"""Parallel ensemble execution engine and shared sparse-computation cache.

The subsystem has two halves:

* :mod:`repro.parallel.backends` — the :class:`ExecutionBackend` interface
  with serial / thread / process implementations and budget-aware dispatch,
  used by proxy evaluation, graph self-ensembles, bagging, the adaptive
  search and the end-to-end pipeline.
* :mod:`repro.parallel.cache` — :class:`ComputeCache`, a thread-safe LRU
  memoiser for normalised adjacencies and fixed propagation products,
  shared by every concurrent training run in the process.
"""

from repro.parallel.backends import (
    BACKENDS,
    BackendLike,
    ExecutionBackend,
    MapReport,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    scoped_backend,
)
from repro.parallel.cache import (
    CacheStats,
    ComputeCache,
    compute_cache,
    csr_fingerprint,
    ndarray_fingerprint,
    set_compute_cache,
)

__all__ = [
    "BACKENDS",
    "BackendLike",
    "ExecutionBackend",
    "MapReport",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "scoped_backend",
    "ComputeCache",
    "CacheStats",
    "compute_cache",
    "set_compute_cache",
    "csr_fingerprint",
    "ndarray_fingerprint",
]
