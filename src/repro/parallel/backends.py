"""Pluggable execution backends for independent training runs.

AutoHEnsGNN is full of *embarrassingly parallel* work: proxy evaluation
trains every pool candidate independently, a graph self-ensemble trains K
seed-replicas independently, bagging trains one predictor per random split,
and the adaptive search grid-searches depths per architecture independently.
The sequential loops of the seed implementation left all of that on one core.

:class:`ExecutionBackend` is the one interface those call sites use:
``backend.map(fn, items)`` runs ``fn`` over ``items`` and returns the results
in item order, optionally honouring a :class:`~repro.automl.budget.TimeBudget`
by *not dispatching* further items once the budget heuristic says another
round would overrun (completed work is never cancelled, so results are always
a deterministic prefix of the items).

Three implementations ship:

* :class:`SerialBackend` — the reference; identical semantics, zero overhead.
* :class:`ThreadBackend` — threads; NumPy/SciPy release the GIL inside BLAS
  and sparse kernels, so full-batch GNN training overlaps well.
* :class:`ProcessBackend` — processes; requires picklable tasks (every task
  function used by this repository is module-level for exactly this reason).
  Known cost: each submitted task pickles its full argument tuple, so call
  sites that embed a shared ``GraphTensors`` in every task re-serialise the
  graph per task; an executor-initializer path that ships shared state once
  per worker is the natural next optimisation if IPC ever dominates.

Determinism contract: tasks must derive all randomness from explicit seeds in
their arguments.  Under that contract every backend produces bit-for-bit the
same results, which the test suite asserts.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle: automl.budget -> core -> nn -> parallel
    from repro.automl.budget import TimeBudget


@dataclass
class MapReport:
    """Outcome of one :meth:`ExecutionBackend.map` call."""

    results: List[object]
    dispatched: int
    skipped: int
    elapsed: float
    backend: str
    details: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class ExecutionBackend:
    """Interface shared by the serial / thread / process executors."""

    name = "abstract"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        cpus = os.cpu_count() or 1
        self.max_workers = max(1, max_workers if max_workers is not None else cpus)

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[object], object], items: Sequence[object],
            budget: Optional["TimeBudget"] = None, min_results: int = 1) -> MapReport:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for the serial backend)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> dict:
        return {"backend": self.name, "max_workers": self.max_workers}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(max_workers={self.max_workers})"

    # ------------------------------------------------------------------
    # Budget heuristic shared by every implementation
    # ------------------------------------------------------------------
    @staticmethod
    def _may_dispatch(budget: Optional["TimeBudget"], cost_observed: float,
                      completed: int, dispatched: int, min_results: int) -> bool:
        """Decide whether one more task may be submitted.

        ``cost_observed`` must be the *summed per-task latency* of the
        completed tasks (for the serial backend that equals wall-clock
        elapsed).  Feeding wall clock on a parallel backend would divide
        latency by the worker count and systematically over-dispatch tasks
        that cannot finish inside the budget.
        """
        if budget is None or dispatched < max(min_results, 1):
            return True
        if completed == 0:
            # No cost data yet (the initial fill of a parallel backend):
            # require head-room, not merely "not yet exhausted" — a nearly
            # spent budget must not front-load a whole worker wave.
            return not budget.exhausted() and budget.remaining_fraction() > 0.1
        return budget.has_time_for_another(cost_observed, completed)


class SerialBackend(ExecutionBackend):
    """Run tasks in the calling thread, in order."""

    name = "serial"

    def map(self, fn: Callable[[object], object], items: Sequence[object],
            budget: Optional["TimeBudget"] = None, min_results: int = 1) -> MapReport:
        items = list(items)
        start = time.time()
        results: List[object] = []
        for index, item in enumerate(items):
            if not self._may_dispatch(budget, time.time() - start, len(results),
                                      index, min_results):
                break
            results.append(fn(item))
        return MapReport(results=results, dispatched=len(results),
                         skipped=len(items) - len(results),
                         elapsed=time.time() - start, backend=self.name)


class _PoolBackend(ExecutionBackend):
    """Shared submit/refill loop for thread and process pools.

    Items are dispatched in order; when a worker frees up the budget heuristic
    decides whether the next item is submitted.  Dispatched work is always
    awaited, so the result list is a prefix of ``items`` regardless of the
    order in which workers finish.

    The underlying executor is created lazily on the first :meth:`map` call
    and reused by subsequent ones — a pipeline issues one map per stage
    (proxy, adaptive grid, each bagging split), and re-spawning worker
    processes per stage would pay the interpreter/NumPy import cost every
    time.  :meth:`close` (or use as a context manager) releases the workers.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[concurrent.futures.Executor] = None

    def _make_executor(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            self._pool = self._make_executor()
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    def map(self, fn: Callable[[object], object], items: Sequence[object],
            budget: Optional["TimeBudget"] = None, min_results: int = 1) -> MapReport:
        items = list(items)
        start = time.time()
        if not items:
            return MapReport(results=[], dispatched=0, skipped=0, elapsed=0.0,
                             backend=self.name)
        results: List[object] = [None] * len(items)
        completed = 0
        next_index = 0
        total_latency = 0.0
        pool = self._ensure_pool()
        pending = {}
        submit_times = {}
        try:
            # The initial fill consults the budget too, so a nearly-exhausted
            # budget dispatches (close to) the min_results prefix the serial
            # backend would run instead of a full worker wave.
            while next_index < len(items) and next_index < self.max_workers \
                    and self._may_dispatch(budget, total_latency, completed,
                                           next_index, min_results):
                future = pool.submit(fn, items[next_index])
                pending[future] = next_index
                submit_times[future] = time.time()
                next_index += 1
            while pending:
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    results[index] = future.result()
                    # Per-task latency, not wall clock: a new task finishes
                    # roughly one latency from now regardless of how many
                    # workers ran in parallel meanwhile.
                    total_latency += time.time() - submit_times.pop(future)
                    completed += 1
                # Refill up to max_workers, not one-per-completion: a
                # budget-capped initial fill must be able to ramp back up
                # once observed latencies show there is headroom.
                while next_index < len(items) and len(pending) < self.max_workers \
                        and self._may_dispatch(budget, total_latency, completed,
                                               next_index, min_results):
                    submitted = pool.submit(fn, items[next_index])
                    pending[submitted] = next_index
                    submit_times[submitted] = time.time()
                    next_index += 1
        except BaseException as exc:
            for future in pending:
                future.cancel()
            # cancel() cannot stop already-running tasks, and thread tasks
            # mutate live objects (GSE members) — wait them out so the caller
            # never observes background mutation after map() has raised.
            if pending and not isinstance(exc, concurrent.futures.BrokenExecutor):
                concurrent.futures.wait(list(pending))
            if isinstance(exc, concurrent.futures.BrokenExecutor):
                self.close()  # next map() gets a fresh pool
            raise
        return MapReport(results=results[:next_index], dispatched=next_index,
                         skipped=len(items) - next_index,
                         elapsed=time.time() - start, backend=self.name)


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; best default for NumPy-heavy training."""

    name = "thread"

    def _make_executor(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.max_workers)


def _init_process_worker(dtype_name: str) -> None:
    """Process-pool initializer: replicate the parent's compute-dtype policy.

    Fork-started workers inherit it anyway; spawn-started workers (macOS /
    Windows defaults) need the explicit hand-off.
    """
    from repro.autograd.dtype import set_compute_dtype

    set_compute_dtype(dtype_name)


class ProcessBackend(_PoolBackend):
    """Process-pool execution; tasks and results must be picklable."""

    name = "process"

    def _make_executor(self) -> concurrent.futures.Executor:
        from repro.autograd.dtype import compute_dtype_name

        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_process_worker,
            initargs=(compute_dtype_name(),))


BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}

BackendLike = Union[None, str, ExecutionBackend]


def get_backend(backend: BackendLike = None,
                max_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` and ``"serial"`` return the reference serial executor, so callers
    can thread a ``backend`` argument through unconditionally.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = (backend or "serial").lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; choose from {sorted(BACKENDS)}")
    return BACKENDS[name](max_workers=max_workers)


@contextlib.contextmanager
def scoped_backend(backend: BackendLike = None,
                   max_workers: Optional[int] = None):
    """Resolve a backend for one operation, closing it only if created here.

    ``fit``-style methods that accept ``backend`` as a name must not leak the
    throwaway worker pool they create, but must equally not shut down an
    :class:`ExecutionBackend` instance the caller owns and will reuse.
    """
    executor = get_backend(backend, max_workers=max_workers)
    owned = not isinstance(backend, ExecutionBackend)
    try:
        yield executor
    finally:
        if owned:
            executor.close()
