"""Pluggable execution backends for independent training runs.

AutoHEnsGNN is full of *embarrassingly parallel* work: proxy evaluation
trains every pool candidate independently, a graph self-ensemble trains K
seed-replicas independently, bagging trains one predictor per random split,
and the adaptive search grid-searches depths per architecture independently.
The sequential loops of the seed implementation left all of that on one core.

:class:`ExecutionBackend` is the one interface those call sites use:
``backend.map(fn, items)`` runs ``fn`` over ``items`` and returns the results
in item order, optionally honouring a :class:`~repro.automl.budget.TimeBudget`
by *not dispatching* further items once the budget heuristic says another
round would overrun (completed work is never cancelled, so results are always
a deterministic prefix of the items).

Three implementations ship:

* :class:`SerialBackend` — the reference; identical semantics, zero overhead.
* :class:`ThreadBackend` — threads; NumPy/SciPy release the GIL inside BLAS
  and sparse kernels, so full-batch GNN training overlaps well.
* :class:`ProcessBackend` — processes; requires picklable tasks (every task
  function used by this repository is module-level for exactly this reason).
  Known cost: each submitted task pickles its full argument tuple, so call
  sites that embed a shared ``GraphTensors`` in every task re-serialise the
  graph per task; an executor-initializer path that ships shared state once
  per worker is the natural next optimisation if IPC ever dominates.

Supervision (``repro.resilience``): passing a
:class:`~repro.resilience.policy.ResiliencePolicy` turns ``map`` into a
supervised dispatch loop — bounded retries with seeded exponential backoff,
per-task timeouts on the pooled backends, structured
:class:`~repro.resilience.policy.FailureReport` records under
``on_failure="drop"``, and (for the process backend) broken-pool detection
with rebuild and a process → thread → serial degradation chain.  With
``policy=None`` the exact legacy dispatch code runs, so the no-fault path
stays bit-identical to a build without the resilience layer.  The
``"backend.task"`` fault-injection site wraps every dispatched task; it is a
single ``None`` check unless a :class:`~repro.resilience.faults.FaultPlan`
is installed.

Determinism contract: tasks must derive all randomness from explicit seeds in
their arguments.  Under that contract every backend produces bit-for-bit the
same results, which the test suite asserts.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import heapq
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.resilience import faults as _faults
from repro.resilience.policy import (
    FailureReport,
    ResiliencePolicy,
    TaskTimeoutError,
    WorkerCrashError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle: automl.budget -> core -> nn -> parallel
    from repro.automl.budget import TimeBudget


@dataclass
class MapReport:
    """Outcome of one :meth:`ExecutionBackend.map` call."""

    results: List[object]
    dispatched: int
    skipped: int
    elapsed: float
    backend: str
    details: dict = field(default_factory=dict)
    #: Tasks that exhausted their attempts under a ``drop`` policy; their
    #: slot in ``results`` holds ``None``.  Empty for unsupervised maps.
    failures: List[FailureReport] = field(default_factory=list)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def _call_with_faults(fn, plan, backend_name, index, attempt, item):
    """Run one task through the ``"backend.task"`` fault-injection site.

    Module-level (picklable) so the plan ships to process workers with each
    task: a ``crash`` rule then ``os._exit``\\ s the *actual* worker process,
    producing a genuine ``BrokenProcessPool`` in the parent.
    """
    plan.trigger("backend.task", index=index, attempt=attempt,
                 backend=backend_name)
    return fn(item)


def _failure_kind(error: BaseException) -> str:
    if isinstance(error, (WorkerCrashError, concurrent.futures.BrokenExecutor)):
        return "worker_crash"
    if isinstance(error, TaskTimeoutError):
        return "timeout"
    return "exception"


class ExecutionBackend:
    """Interface shared by the serial / thread / process executors."""

    name = "abstract"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        cpus = os.cpu_count() or 1
        self.max_workers = max(1, max_workers if max_workers is not None else cpus)

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[object], object], items: Sequence[object],
            budget: Optional["TimeBudget"] = None, min_results: int = 1,
            policy: Optional[ResiliencePolicy] = None) -> MapReport:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for the serial backend)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> dict:
        return {"backend": self.name, "max_workers": self.max_workers}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(max_workers={self.max_workers})"

    # ------------------------------------------------------------------
    # Budget heuristic shared by every implementation
    # ------------------------------------------------------------------
    @staticmethod
    def _may_dispatch(budget: Optional["TimeBudget"], cost_observed: float,
                      completed: int, dispatched: int, min_results: int) -> bool:
        """Decide whether one more task may be submitted.

        ``cost_observed`` must be the *summed per-task latency* of the
        completed tasks (for the serial backend that equals wall-clock
        elapsed).  Feeding wall clock on a parallel backend would divide
        latency by the worker count and systematically over-dispatch tasks
        that cannot finish inside the budget.
        """
        if budget is None or dispatched < max(min_results, 1):
            return True
        if completed == 0:
            # No cost data yet (the initial fill of a parallel backend):
            # require head-room, not merely "not yet exhausted" — a nearly
            # spent budget must not front-load a whole worker wave.
            return not budget.exhausted() and budget.remaining_fraction() > 0.1
        return budget.has_time_for_another(cost_observed, completed)

    # ------------------------------------------------------------------
    # Supervision helpers shared by the implementations
    # ------------------------------------------------------------------
    def _fallback_backend(self) -> Optional["ExecutionBackend"]:
        """Next backend in the degradation chain (``None`` = end of chain)."""
        return None

    @staticmethod
    def _make_failure(index: int, error: BaseException, attempts: int,
                      backend: str, elapsed: float) -> FailureReport:
        return FailureReport(
            index=index,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            kind=_failure_kind(error),
            backend=backend,
            elapsed=elapsed,
        )


class SerialBackend(ExecutionBackend):
    """Run tasks in the calling thread, in order.

    Supervision caveat: the serial backend cannot pre-empt a running task,
    so ``policy.task_timeout`` is documented as unsupported here (retries,
    backoff and the drop contract all apply normally).
    """

    name = "serial"

    def map(self, fn: Callable[[object], object], items: Sequence[object],
            budget: Optional["TimeBudget"] = None, min_results: int = 1,
            policy: Optional[ResiliencePolicy] = None) -> MapReport:
        if policy is not None:
            return self._supervised_map(fn, list(items), budget, min_results,
                                        policy.check())
        items = list(items)
        start = time.time()
        results: List[object] = []
        plan = _faults.active_plan()
        for index, item in enumerate(items):
            if not self._may_dispatch(budget, time.time() - start, len(results),
                                      index, min_results):
                break
            if plan is not None:
                plan.trigger("backend.task", index=index, attempt=0,
                             backend=self.name)
            results.append(fn(item))
        return MapReport(results=results, dispatched=len(results),
                         skipped=len(items) - len(results),
                         elapsed=time.time() - start, backend=self.name)

    def _supervised_map(self, fn, items, budget, min_results,
                        policy: ResiliencePolicy) -> MapReport:
        start = time.time()
        plan = _faults.active_plan()
        results: List[object] = [None] * len(items)
        failures: List[FailureReport] = []
        completed = 0
        retries = 0
        dispatched = 0
        for index, item in enumerate(items):
            if not self._may_dispatch(budget, time.time() - start, completed,
                                      index, min_results):
                break
            dispatched = index + 1
            attempt = 0
            task_start = time.time()
            while True:
                try:
                    if plan is not None:
                        plan.trigger("backend.task", index=index,
                                     attempt=attempt, backend=self.name)
                    results[index] = fn(item)
                    completed += 1
                    break
                except Exception as error:
                    attempt += 1
                    if attempt >= policy.max_attempts:
                        if policy.on_failure == "raise":
                            raise
                        failures.append(self._make_failure(
                            index, error, attempt, self.name,
                            time.time() - task_start))
                        break
                    retries += 1
                    delay = policy.backoff_for(index, attempt)
                    if delay:
                        time.sleep(delay)
        details = {"retries": retries}
        return MapReport(results=results[:dispatched], dispatched=dispatched,
                         skipped=len(items) - dispatched,
                         elapsed=time.time() - start, backend=self.name,
                         details=details, failures=failures)


class _PoolBackend(ExecutionBackend):
    """Shared submit/refill loop for thread and process pools.

    Items are dispatched in order; when a worker frees up the budget heuristic
    decides whether the next item is submitted.  Dispatched work is always
    awaited, so the result list is a prefix of ``items`` regardless of the
    order in which workers finish.

    The underlying executor is created lazily on the first :meth:`map` call
    and reused by subsequent ones — a pipeline issues one map per stage
    (proxy, adaptive grid, each bagging split), and re-spawning worker
    processes per stage would pay the interpreter/NumPy import cost every
    time.  :meth:`close` (or use as a context manager) releases the workers;
    it is idempotent and never raises, even after a broken pool.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[concurrent.futures.Executor] = None

    def _make_executor(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            self._pool = self._make_executor()
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=True)
        except Exception:
            # Shutting down a broken pool (dead workers, torn queues) can
            # itself raise; close() is a cleanup path and must stay safe to
            # call from finally blocks and __exit__.
            pass

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False)
        except BaseException:
            # Interpreter teardown may have dismantled the executor's
            # machinery already; __del__ must never propagate.
            pass

    def map(self, fn: Callable[[object], object], items: Sequence[object],
            budget: Optional["TimeBudget"] = None, min_results: int = 1,
            policy: Optional[ResiliencePolicy] = None) -> MapReport:
        if policy is not None:
            return self._supervised_map(fn, list(items), budget, min_results,
                                        policy.check())
        items = list(items)
        start = time.time()
        if not items:
            return MapReport(results=[], dispatched=0, skipped=0, elapsed=0.0,
                             backend=self.name)
        results: List[object] = [None] * len(items)
        completed = 0
        next_index = 0
        total_latency = 0.0
        pool = self._ensure_pool()
        pending = {}
        submit_times = {}
        plan = _faults.active_plan()

        def submit(index: int) -> "concurrent.futures.Future":
            if plan is None:
                return pool.submit(fn, items[index])
            return pool.submit(_call_with_faults, fn, plan, self.name,
                               index, 0, items[index])

        try:
            # The initial fill consults the budget too, so a nearly-exhausted
            # budget dispatches (close to) the min_results prefix the serial
            # backend would run instead of a full worker wave.
            while next_index < len(items) and next_index < self.max_workers \
                    and self._may_dispatch(budget, total_latency, completed,
                                           next_index, min_results):
                future = submit(next_index)
                pending[future] = next_index
                submit_times[future] = time.time()
                next_index += 1
            while pending:
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    results[index] = future.result()
                    # Per-task latency, not wall clock: a new task finishes
                    # roughly one latency from now regardless of how many
                    # workers ran in parallel meanwhile.
                    total_latency += time.time() - submit_times.pop(future)
                    completed += 1
                # Refill up to max_workers, not one-per-completion: a
                # budget-capped initial fill must be able to ramp back up
                # once observed latencies show there is headroom.
                while next_index < len(items) and len(pending) < self.max_workers \
                        and self._may_dispatch(budget, total_latency, completed,
                                               next_index, min_results):
                    submitted = submit(next_index)
                    pending[submitted] = next_index
                    submit_times[submitted] = time.time()
                    next_index += 1
        except BaseException as exc:
            for future in pending:
                future.cancel()
            # cancel() cannot stop already-running tasks, and thread tasks
            # mutate live objects (GSE members) — wait them out so the caller
            # never observes background mutation after map() has raised.
            if pending and not isinstance(exc, concurrent.futures.BrokenExecutor):
                concurrent.futures.wait(list(pending))
            if isinstance(exc, concurrent.futures.BrokenExecutor):
                self.close()  # next map() gets a fresh pool
            raise
        return MapReport(results=results[:next_index], dispatched=next_index,
                         skipped=len(items) - next_index,
                         elapsed=time.time() - start, backend=self.name)

    # ------------------------------------------------------------------
    # Supervised dispatch
    # ------------------------------------------------------------------
    def _supervised_map(self, fn, items, budget, min_results,
                        policy: ResiliencePolicy) -> MapReport:
        """Retry/timeout/rebuild-aware dispatch loop (``policy`` is not None).

        Invariants: every admitted item ends *resolved* — a success, a
        recorded :class:`FailureReport` (``on_failure="drop"``) or the cause
        of the re-raised error (``on_failure="raise"``).  A broken pool is
        rebuilt up to ``policy.max_pool_rebuilds`` times, re-dispatching only
        unfinished items; past that the unresolved remainder is delegated to
        the next backend in the degradation chain (process → thread →
        serial) when ``policy.degrade`` allows.
        """
        start = time.time()
        count = len(items)
        if count == 0:
            return MapReport(results=[], dispatched=0, skipped=0, elapsed=0.0,
                             backend=self.name)
        plan = _faults.active_plan()
        results: List[object] = [None] * count
        failures: List[FailureReport] = []
        attempts = [0] * count
        resolved = [False] * count
        first_submit = [0.0] * count
        completed = 0
        retries = 0
        rebuilds = 0
        admitted = 0            # contiguous admission prefix of `items`
        total_latency = 0.0
        pending: Dict["concurrent.futures.Future", int] = {}
        submit_times: Dict["concurrent.futures.Future", float] = {}
        deadlines: Dict["concurrent.futures.Future", float] = {}
        retry_queue: List = []  # heap of (due_time, index)
        details: dict = {}
        pool = self._ensure_pool()

        def submit(index: int) -> None:
            if plan is None:
                future = pool.submit(fn, items[index])
            else:
                future = pool.submit(_call_with_faults, fn, plan, self.name,
                                     index, attempts[index], items[index])
            now = time.time()
            pending[future] = index
            submit_times[future] = now
            if attempts[index] == 0:
                first_submit[index] = now
            if policy.task_timeout is not None:
                deadlines[future] = now + policy.task_timeout

        def resolve_failure(index: int, error: BaseException) -> None:
            nonlocal retries
            attempts[index] += 1
            if attempts[index] >= policy.max_attempts:
                if policy.on_failure == "raise":
                    raise error
                failures.append(self._make_failure(
                    index, error, attempts[index], self.name,
                    time.time() - first_submit[index]))
                resolved[index] = True
            else:
                retries += 1
                due = time.time() + policy.backoff_for(index, attempts[index])
                heapq.heappush(retry_queue, (due, index))

        def refill() -> None:
            nonlocal admitted
            now = time.time()
            while retry_queue and retry_queue[0][0] <= now \
                    and len(pending) < self.max_workers:
                _, index = heapq.heappop(retry_queue)
                submit(index)
            while admitted < count and len(pending) < self.max_workers \
                    and self._may_dispatch(budget, total_latency, completed,
                                           admitted, min_results):
                submit(admitted)
                admitted += 1

        try:
            refill()
            while pending or retry_queue:
                if not pending:
                    # Only backoff timers left: sleep until the earliest one.
                    delay = retry_queue[0][0] - time.time()
                    if delay > 0:
                        time.sleep(min(delay, 0.25))
                    refill()
                    continue
                now = time.time()
                waits = []
                if deadlines:
                    waits.append(max(0.0, min(deadlines.values()) - now))
                if retry_queue:
                    waits.append(max(0.0, retry_queue[0][0] - now))
                timeout = min(waits) + 1e-3 if waits else None
                done, _ = concurrent.futures.wait(
                    pending, timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                broken: Optional[BaseException] = None
                for future in done:
                    index = pending.pop(future)
                    submitted_at = submit_times.pop(future)
                    deadlines.pop(future, None)
                    try:
                        value = future.result()
                    except concurrent.futures.BrokenExecutor as error:
                        broken = error
                        resolve_failure(index, error)
                        continue
                    except Exception as error:
                        resolve_failure(index, error)
                        continue
                    results[index] = value
                    resolved[index] = True
                    total_latency += time.time() - submitted_at
                    completed += 1
                if broken is not None:
                    # The pool is dead: every still-pending future is lost
                    # with it.  Re-queue the in-flight items and rebuild.
                    for future, index in list(pending.items()):
                        submit_times.pop(future, None)
                        deadlines.pop(future, None)
                        resolve_failure(index, broken)
                    pending.clear()
                    rebuilds += 1
                    self.close()
                    if rebuilds > policy.max_pool_rebuilds:
                        return self._degrade_remaining(
                            fn, items, budget, min_results, policy, results,
                            failures, resolved, admitted, retries, rebuilds,
                            start, broken)
                    pool = self._ensure_pool()
                elif policy.task_timeout is not None:
                    now = time.time()
                    for future, deadline in list(deadlines.items()):
                        if deadline > now:
                            continue
                        index = pending.pop(future)
                        submit_times.pop(future, None)
                        deadlines.pop(future)
                        # cancel() only helps if the task never started; a
                        # running future is abandoned — its worker finishes
                        # (or hangs) in the background and the result is
                        # discarded.
                        future.cancel()
                        resolve_failure(index, TaskTimeoutError(
                            f"task {index} exceeded the per-task timeout of "
                            f"{policy.task_timeout}s (attempt "
                            f"{attempts[index]})"))
                refill()
        except BaseException as exc:
            for future in pending:
                future.cancel()
            if pending and not isinstance(exc, concurrent.futures.BrokenExecutor):
                concurrent.futures.wait(list(pending))
            if isinstance(exc, concurrent.futures.BrokenExecutor):
                self.close()
            raise
        details["retries"] = retries
        if rebuilds:
            details["pool_rebuilds"] = rebuilds
        return MapReport(results=results[:admitted], dispatched=admitted,
                         skipped=count - admitted,
                         elapsed=time.time() - start, backend=self.name,
                         details=details, failures=failures)

    def _degrade_remaining(self, fn, items, budget, min_results,
                           policy: ResiliencePolicy, results, failures,
                           resolved, admitted, retries, rebuilds, start,
                           cause: BaseException) -> MapReport:
        """Delegate every unresolved item to the next backend in the chain."""
        fallback = self._fallback_backend() if policy.degrade else None
        if fallback is None:
            if policy.on_failure == "raise":
                raise cause
            # No chain left: fail whatever is still unresolved.
            for index in range(len(items)):
                if index < admitted and not resolved[index]:
                    failures.append(self._make_failure(
                        index, cause, policy.max_attempts, self.name, 0.0))
                    resolved[index] = True
            return MapReport(results=results[:admitted], dispatched=admitted,
                             skipped=len(items) - admitted,
                             elapsed=time.time() - start, backend=self.name,
                             details={"retries": retries,
                                      "pool_rebuilds": rebuilds},
                             failures=failures)
        sub_indices = [index for index in range(len(items))
                       if not resolved[index]]
        sub_items = [items[index] for index in sub_indices]
        try:
            # Fresh attempt budget on the fallback: the crashes that broke
            # this pool say nothing about how the tasks behave elsewhere.
            sub_report = fallback.map(fn, sub_items, budget=budget,
                                      min_results=min_results, policy=policy)
        finally:
            fallback.close()
        for position, value in enumerate(sub_report.results):
            original = sub_indices[position]
            results[original] = value
            resolved[original] = True
        for failure in sub_report.failures:
            failures.append(FailureReport(
                index=sub_indices[failure.index],
                error_type=failure.error_type,
                message=failure.message,
                attempts=failure.attempts,
                kind=failure.kind,
                backend=failure.backend,
                elapsed=failure.elapsed,
                context=dict(failure.context),
            ))
        if sub_report.skipped:
            cut = sub_indices[len(sub_report.results)]
        else:
            cut = max(admitted, (sub_indices[-1] + 1) if sub_indices else 0)
        details = {"retries": retries + sub_report.details.get("retries", 0),
                   "pool_rebuilds": rebuilds,
                   "degraded_to": sub_report.details.get("degraded_to",
                                                         fallback.name)}
        return MapReport(results=results[:cut], dispatched=cut,
                         skipped=len(items) - cut,
                         elapsed=time.time() - start, backend=self.name,
                         details=details, failures=failures)


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; best default for NumPy-heavy training."""

    name = "thread"

    def _make_executor(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.max_workers)

    def _fallback_backend(self) -> Optional[ExecutionBackend]:
        return SerialBackend(max_workers=1)


def _init_process_worker(dtype_name: str) -> None:
    """Process-pool initializer: replicate the parent's compute-dtype policy.

    Fork-started workers inherit it anyway; spawn-started workers (macOS /
    Windows defaults) need the explicit hand-off.
    """
    from repro.autograd.dtype import set_compute_dtype

    set_compute_dtype(dtype_name)


class ProcessBackend(_PoolBackend):
    """Process-pool execution; tasks and results must be picklable."""

    name = "process"

    def _make_executor(self) -> concurrent.futures.Executor:
        from repro.autograd.dtype import compute_dtype_name

        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_process_worker,
            initargs=(compute_dtype_name(),))

    def _fallback_backend(self) -> Optional[ExecutionBackend]:
        return ThreadBackend(max_workers=self.max_workers)


BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}

BackendLike = Union[None, str, ExecutionBackend]


def get_backend(backend: BackendLike = None,
                max_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` and ``"serial"`` return the reference serial executor, so callers
    can thread a ``backend`` argument through unconditionally.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = (backend or "serial").lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; choose from {sorted(BACKENDS)}")
    return BACKENDS[name](max_workers=max_workers)


@contextlib.contextmanager
def scoped_backend(backend: BackendLike = None,
                   max_workers: Optional[int] = None):
    """Resolve a backend for one operation, closing it only if created here.

    ``fit``-style methods that accept ``backend`` as a name must not leak the
    throwaway worker pool they create, but must equally not shut down an
    :class:`ExecutionBackend` instance the caller owns and will reuse.
    """
    executor = get_backend(backend, max_workers=max_workers)
    owned = not isinstance(backend, ExecutionBackend)
    try:
        yield executor
    finally:
        if owned:
            executor.close()
